//! Table I: characteristics of the benchmarking datasets and training
//! parameters — printed for the configured scale, alongside the paper's
//! original values.

use crate::common::{Opts, Scale};
use crate::presets;

/// Print the Table I reproduction.
pub fn run(opts: &Opts) {
    let f = presets::femnist_cfg(opts.scale);
    let s = presets::shakespeare_cfg(opts.scale);
    let femnist = feddata::femnist::generate(&f, opts.seed);
    let shakespeare = feddata::shakespeare::generate(&s, opts.seed);

    println!("\n=== Table I: dataset characteristics and training parameters ===");
    println!(
        "(paper values in parentheses; this run uses the {} scale)\n",
        match opts.scale {
            Scale::Paper => "paper",
            Scale::Scaled => "scaled-down",
        }
    );
    let rows: Vec<(&str, String, String)> = vec![
        (
            "Train/Test Split",
            format!("{:.1} (0.8)", f.train_split),
            format!("{:.1} (0.9)", s.train_split),
        ),
        (
            "Labels",
            format!("{} (62)", f.classes),
            format!("{} (80)", s.vocab),
        ),
        (
            "Users",
            format!("{} (3500)", f.users),
            format!("{} (1058)", s.users),
        ),
        (
            "Min Samples/User",
            format!("{} (0)", f.samples_per_user.0),
            format!("{} (64)", s.samples_per_user.0),
        ),
        (
            "Model Type",
            "CNN (CNN)".to_string(),
            "Stacked LSTM (Stacked LSTM)".to_string(),
        ),
        (
            "Learning Rate",
            format!("{} (0.06)", presets::femnist_lr(opts.scale)),
            format!("{} (0.8)", presets::shakespeare_lr(opts.scale)),
        ),
        ("Local Epochs", "1 (1)".to_string(), "1 (1)".to_string()),
        (
            "— measured train samples",
            femnist.total_train_samples().to_string(),
            shakespeare.total_train_samples().to_string(),
        ),
        (
            "— measured test samples",
            femnist.total_test_samples().to_string(),
            shakespeare.total_test_samples().to_string(),
        ),
    ];
    println!(
        "{:<28} {:>24} {:>30}",
        "", "FEMNIST (synthetic)", "Shakespeare (synthetic)"
    );
    for (name, a, b) in rows {
        println!("{name:<28} {a:>24} {b:>30}");
    }
    println!("\n{}", femnist.summary());
    println!("{}", shakespeare.summary());
}
