//! Shared experiment infrastructure: scale selection, run loops, output.

use fedavg::{FedAvg, FedAvgConfig};
use feddata::FederatedDataset;
use learning_tangle::metrics::{MetricPoint, MetricsLog};
use learning_tangle::{SimConfig, Simulation};
use lt_telemetry::{JsonlSink, Telemetry};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use tinynn::Sequential;

/// Whether to run the paper-scale or the laptop-scale configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down defaults (minutes on one CPU core).
    Scaled,
    /// The paper's population / image / round sizes (hours).
    Paper,
}

/// Global CLI options shared by all experiments.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Scale preset.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Output directory for JSON/DOT artifacts.
    pub out: PathBuf,
    /// Optional round-count override.
    pub rounds: Option<u64>,
    /// Structured-event JSONL output path (`--telemetry <path>`).
    pub telemetry: Option<PathBuf>,
    /// Record wall-clock span timings into the telemetry stream
    /// (`--telemetry-timings`; makes the JSONL non-deterministic).
    pub telemetry_timings: bool,
    /// Crash/restart cycles for the churn experiment (`--churn=N`).
    pub churn: u64,
    /// Seed of the fault-injection RNG (`--fault-seed=N`), independent of
    /// the master seed so faults can vary while learning stays fixed.
    pub fault_seed: u64,
    /// Ticks between peer checkpoints (`--checkpoint-every=N`, 0 = off).
    pub checkpoint_every: u64,
    /// Schedules to explore in the conformance harness (`--schedules=N`).
    pub schedules: usize,
    /// Replay a conformance repro artifact instead of exploring
    /// (`--replay=PATH`).
    pub replay: Option<PathBuf>,
    /// Inject a documented bug into the conformance harness to prove it
    /// is caught (`--mutate=stale-cache`).
    pub mutate: Option<String>,
    /// Daemon count for the `net` experiment (`--nodes=N`).
    pub nodes: Option<usize>,
    /// Run the `net` experiment as a chaos soak of this many seconds
    /// (`--soak-secs=N`) instead of lockstep + throughput.
    pub soak_secs: Option<u64>,
    /// Seed of the soak's rolling chaos schedule (`--chaos-seed=N`),
    /// independent of the master seed so the fault pattern can vary
    /// while dataset/model/genesis stay fixed.
    pub chaos_seed: u64,
}

impl Opts {
    /// Parse from the raw CLI args following the subcommand.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Opts {
            scale: Scale::Scaled,
            seed: 42,
            out: PathBuf::from("results"),
            rounds: None,
            telemetry: None,
            telemetry_timings: false,
            churn: 4,
            fault_seed: 7,
            checkpoint_every: 64,
            schedules: 256,
            replay: None,
            mutate: None,
            nodes: None,
            soak_secs: None,
            chaos_seed: 7,
        };
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a == "--paper" {
                opts.scale = Scale::Paper;
            } else if a == "--telemetry-timings" {
                opts.telemetry_timings = true;
            } else if let Some(v) = a.strip_prefix("--seed=") {
                opts.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            } else if let Some(v) = a.strip_prefix("--out=") {
                opts.out = PathBuf::from(v);
            } else if let Some(v) = a.strip_prefix("--rounds=") {
                opts.rounds = Some(v.parse().map_err(|e| format!("bad --rounds: {e}"))?);
            } else if let Some(v) = a.strip_prefix("--churn=") {
                opts.churn = v.parse().map_err(|e| format!("bad --churn: {e}"))?;
            } else if let Some(v) = a.strip_prefix("--fault-seed=") {
                opts.fault_seed = v.parse().map_err(|e| format!("bad --fault-seed: {e}"))?;
            } else if let Some(v) = a.strip_prefix("--checkpoint-every=") {
                opts.checkpoint_every = v
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
            } else if let Some(v) = a.strip_prefix("--schedules=") {
                opts.schedules = v.parse().map_err(|e| format!("bad --schedules: {e}"))?;
            } else if let Some(v) = a.strip_prefix("--replay=") {
                opts.replay = Some(PathBuf::from(v));
            } else if let Some(v) = a.strip_prefix("--mutate=") {
                opts.mutate = Some(v.to_string());
            } else if let Some(v) = a.strip_prefix("--nodes=") {
                opts.nodes = Some(v.parse().map_err(|e| format!("bad --nodes: {e}"))?);
            } else if let Some(v) = a.strip_prefix("--soak-secs=") {
                opts.soak_secs = Some(v.parse().map_err(|e| format!("bad --soak-secs: {e}"))?);
            } else if let Some(v) = a.strip_prefix("--chaos-seed=") {
                opts.chaos_seed = v.parse().map_err(|e| format!("bad --chaos-seed: {e}"))?;
            } else if let Some(v) = a.strip_prefix("--telemetry=") {
                opts.telemetry = Some(PathBuf::from(v));
            } else if a == "--telemetry" {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| "missing path after --telemetry".to_string())?;
                opts.telemetry = Some(PathBuf::from(v));
            } else if matches!(
                a.as_str(),
                "--seed" | "--schedules" | "--replay" | "--mutate"
            ) {
                // Space-separated forms of the value flags above.
                let key = a.clone();
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("missing value after {key}"))?;
                match key.as_str() {
                    "--seed" => opts.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?,
                    "--schedules" => {
                        opts.schedules = v.parse().map_err(|e| format!("bad --schedules: {e}"))?
                    }
                    "--replay" => opts.replay = Some(PathBuf::from(v)),
                    _ => opts.mutate = Some(v.clone()),
                }
            } else {
                return Err(format!("unknown option {a}"));
            }
            i += 1;
        }
        Ok(opts)
    }
}

/// The process-wide telemetry handle. Lives in a static (never dropped) so
/// the JSONL sink stays valid for the whole run; the sink flushes every
/// line, so the file is complete at exit regardless.
static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();

/// Initialize the global telemetry handle from the CLI options. Call once,
/// before any experiment runs; later calls are no-ops.
pub fn init_telemetry(opts: &Opts) {
    let handle = match &opts.telemetry {
        None => Telemetry::disabled(),
        Some(path) => {
            let sink = JsonlSink::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            eprintln!("  telemetry -> {}", path.display());
            Telemetry::with_timings(sink, opts.telemetry_timings)
        }
    };
    let _ = TELEMETRY.set(handle);
}

/// The global telemetry handle (disabled when `--telemetry` was not given
/// or [`init_telemetry`] has not run).
pub fn telemetry() -> Telemetry {
    TELEMETRY.get().cloned().unwrap_or_default()
}

/// Run a learning-tangle simulation for `rounds`, evaluating the consensus
/// model every `eval_every` rounds (and once at the end).
///
/// `attack_target` enables the Fig. 6b misclassification metric.
pub fn run_tangle<'a>(
    mut sim: Simulation<'a>,
    rounds: u64,
    eval_every: u64,
    label: &str,
    attack_target: Option<(u32, u32)>,
    quiet: bool,
) -> (MetricsLog, Simulation<'a>) {
    let mut log = MetricsLog::new(label);
    sim.set_telemetry(telemetry());
    for r in 1..=rounds {
        let stats = sim.round();
        if r % eval_every == 0 || r == rounds {
            let ev = sim.evaluate(r);
            let mis = attack_target.map(|(s, d)| sim.target_misclassification(s, d, r));
            log.push(MetricPoint {
                round: r,
                accuracy: ev.accuracy,
                loss: ev.loss,
                target_misclassification: mis,
                tips: Some(stats.tips),
            });
            if !quiet {
                println!(
                    "  [{label}] round {r:>4}  acc {:.3}  loss {:.3}  tips {:>3}  published {}/{}{}",
                    ev.accuracy,
                    ev.loss,
                    stats.tips,
                    stats.published,
                    stats.sampled,
                    mis.map(|m| format!("  3->8 {:.1}%", m * 100.0)).unwrap_or_default()
                );
            }
        }
    }
    (log, sim)
}

/// Run the FedAvg baseline for `rounds`, evaluating every `eval_every`.
#[allow(clippy::too_many_arguments)]
pub fn run_fedavg(
    data: &FederatedDataset,
    cfg: FedAvgConfig,
    build: impl Fn() -> Sequential + Sync,
    rounds: u64,
    eval_every: u64,
    eval_fraction: f32,
    label: &str,
    quiet: bool,
) -> MetricsLog {
    let mut log = MetricsLog::new(label);
    let mut fa = FedAvg::new(data, cfg, build);
    for r in 1..=rounds {
        fa.round();
        if r % eval_every == 0 || r == rounds {
            let (loss, acc) = fa.evaluate(eval_fraction, r);
            log.push(MetricPoint {
                round: r,
                accuracy: acc,
                loss,
                target_misclassification: None,
                tips: None,
            });
            if !quiet {
                println!("  [{label}] round {r:>4}  acc {acc:.3}  loss {loss:.3}");
            }
        }
    }
    log
}

/// Write a collection of metric series as JSON under `out/<name>.json`.
pub fn write_json(out: &Path, name: &str, logs: &[MetricsLog]) {
    std::fs::create_dir_all(out).expect("create output dir");
    let path = out.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(logs).expect("serializable logs");
    let mut f = std::fs::File::create(&path).expect("create json file");
    f.write_all(json.as_bytes()).expect("write json");
    println!("  wrote {}", path.display());
}

/// Print a paper-style series table: one row per evaluated round, one
/// column per series.
pub fn print_series_table(title: &str, logs: &[MetricsLog]) {
    println!("\n=== {title} ===");
    print!("{:>7}", "round");
    for l in logs {
        print!("  {:>18}", truncate(&l.label, 18));
    }
    println!();
    let rounds: Vec<u64> = logs
        .first()
        .map(|l| l.points.iter().map(|p| p.round).collect())
        .unwrap_or_default();
    for (i, r) in rounds.iter().enumerate() {
        print!("{r:>7}");
        for l in logs {
            match l.points.get(i) {
                Some(p) => print!("  {:>18.3}", p.accuracy),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Build a `SimConfig` shared by the tangle runs.
pub fn sim_config(
    nodes_per_round: usize,
    lr: f32,
    seed: u64,
    hyper: learning_tangle::TangleHyperParams,
) -> SimConfig {
    SimConfig {
        nodes_per_round,
        local_epochs: 1,
        lr,
        batch_size: 16,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.1,
        seed,
        hyper,
        network: None,
    }
}
