//! Fig. 5 and Fig. 6: model-poisoning attacks against a pre-trained
//! tangle.
//!
//! "After 200 rounds of benign training on the FEMNIST dataset, the
//! adversarial nodes generate poisoning transactions ... whenever they are
//! chosen for a training round." The defense configuration follows §V-B:
//! sampling rounds for consensus and parent selection equal to the active
//! nodes per round, with local candidate validation.

use crate::common::{print_series_table, sim_config, write_json, Opts, Scale};
use crate::presets;
use learning_tangle::metrics::{MetricPoint, MetricsLog};
use learning_tangle::{assign_malicious, AttackKind, Simulation, TangleHyperParams};

/// Paper instance of the targeted attack: misclassify 3 as 8.
pub const FLIP_SRC: u32 = 3;
pub const FLIP_DST: u32 = 8;

/// Run one attacked tangle: benign pre-training followed by an attack
/// window, with dense evaluation inside the window.
#[allow(clippy::too_many_arguments)]
fn attacked_run(
    opts: &Opts,
    data: &feddata::FederatedDataset,
    nodes: usize,
    fraction: f64,
    kind: AttackKind,
    pre: u64,
    attack: u64,
    stride: u64,
    track_flip: bool,
) -> MetricsLog {
    let lr = presets::femnist_lr(opts.scale);
    let build = presets::femnist_model(opts.scale, opts.seed ^ 0xA77C);
    // §V-B stresses that robustness "depends on a careful parameterization
    // of the nodes", naming the walk's randomness factor α. The attack
    // experiments use a greedier walk than the convergence experiments
    // (α = 8 vs 0.05): with high α all of a node's candidate samples funnel
    // into the same few frontier tips, which is exactly the regime where
    // heavy poisoning can capture the frontier (the paper's p ≥ 0.25
    // takeover); a small α makes the tangle nearly immune instead.
    let hyper = TangleHyperParams {
        alpha: 8.0,
        ..TangleHyperParams::robust(nodes)
    };
    let mut sim = Simulation::new(data.clone(), sim_config(nodes, lr, opts.seed, hyper), build);
    assign_malicious(
        sim.nodes_mut(),
        fraction,
        pre + 1,
        kind,
        opts.seed ^ 0xBAD,
        learning_tangle::attack::default_flip_source(FLIP_SRC, FLIP_DST),
    );
    let label = match kind {
        AttackKind::RandomNoise => format!("noise-p{fraction}"),
        AttackKind::LabelFlip { .. } => format!("flip-p{fraction}"),
        AttackKind::Backdoor { .. } => format!("backdoor-p{fraction}"),
    };
    let mut log = MetricsLog::new(&label);
    for r in 1..=(pre + attack) {
        let stats = sim.round();
        let in_window = r >= pre;
        let due = if in_window {
            (r - pre).is_multiple_of(stride)
        } else {
            r % 20 == 0
        };
        if due || r == pre + attack {
            let ev = sim.evaluate(r);
            let mis = track_flip.then(|| sim.target_misclassification(FLIP_SRC, FLIP_DST, r));
            log.push(MetricPoint {
                round: r,
                accuracy: ev.accuracy,
                loss: ev.loss,
                target_misclassification: mis,
                tips: Some(stats.tips),
            });
            if in_window {
                println!(
                    "  [{label}] round {r:>4}  acc {:.3}  ref-poisoned {:.0}%{}",
                    ev.accuracy,
                    ev.reference_poisoned_fraction * 100.0,
                    mis.map(|m| format!("  3->8 {:.1}%", m * 100.0))
                        .unwrap_or_default()
                );
            }
        }
    }
    log
}

fn nodes_for(scale: Scale) -> usize {
    match scale {
        Scale::Scaled => 20,
        Scale::Paper => 35,
    }
}

/// Fig. 5: indiscriminate random-noise poisoning, p ∈ {0.1, 0.2, 0.25, 0.3}.
pub fn fig5(opts: &Opts) {
    let (pre, attack, stride) = presets::attack_rounds(opts.scale);
    let pre = opts.rounds.unwrap_or(pre);
    let data = feddata::femnist::generate(&presets::femnist_cfg(opts.scale), opts.seed);
    println!("dataset: {}", data.summary());
    let nodes = nodes_for(opts.scale);
    let mut logs = Vec::new();
    for p in [0.1, 0.2, 0.25, 0.3] {
        println!("\n--- Fig. 5: random poisoning, p = {p} ---");
        logs.push(attacked_run(
            opts,
            &data,
            nodes,
            p,
            AttackKind::RandomNoise,
            pre,
            attack,
            stride,
            false,
        ));
    }
    let window: Vec<MetricsLog> = logs
        .iter()
        .map(|l| MetricsLog {
            label: l.label.clone(),
            points: l
                .points
                .iter()
                .filter(|pt| pt.round >= pre)
                .copied()
                .collect(),
        })
        .collect();
    print_series_table(
        &format!("Fig. 5: accuracy under random poisoning (attack from round {pre})"),
        &window,
    );
    write_json(&opts.out, "fig5", &logs);
}

/// Extension experiment: corner-patch backdoor attack (outlook §VI /
/// reference \[29\]) at p ∈ {0.1, 0.2, 0.3} — clean accuracy plus the
/// attack success rate on triggered inputs.
pub fn backdoor(opts: &Opts) {
    let (pre, attack, stride) = presets::attack_rounds(opts.scale);
    let pre = opts.rounds.unwrap_or(pre);
    let data = feddata::femnist::generate(&presets::femnist_cfg(opts.scale), opts.seed);
    println!("dataset: {}", data.summary());
    let nodes = nodes_for(opts.scale);
    let lr = presets::femnist_lr(opts.scale);
    let target = 0u32;
    let patch = 3usize;
    let mut logs = Vec::new();
    for p in [0.1, 0.2, 0.3] {
        println!("\n--- Backdoor attack, trigger -> class {target}, p = {p} ---");
        let build = presets::femnist_model(opts.scale, opts.seed ^ 0xA77C);
        let hyper = TangleHyperParams {
            alpha: 8.0,
            ..TangleHyperParams::robust(nodes)
        };
        let mut sim = Simulation::new(data.clone(), sim_config(nodes, lr, opts.seed, hyper), build);
        assign_malicious(
            sim.nodes_mut(),
            p,
            pre + 1,
            AttackKind::Backdoor { target, patch },
            opts.seed ^ 0xBAD,
            |_| None,
        );
        let mut log = MetricsLog::new(format!("backdoor-p{p}"));
        for r in 1..=(pre + attack) {
            let stats = sim.round();
            let due = if r >= pre {
                (r - pre).is_multiple_of(stride)
            } else {
                r % 20 == 0
            };
            if due || r == pre + attack {
                let ev = sim.evaluate(r);
                let asr = sim.backdoor_success(target, patch, r);
                log.push(MetricPoint {
                    round: r,
                    accuracy: ev.accuracy,
                    loss: ev.loss,
                    // reuse the targeted-misclassification channel for ASR
                    target_misclassification: Some(asr),
                    tips: Some(stats.tips),
                });
                if r >= pre {
                    println!(
                        "  [backdoor-p{p}] round {r:>4}  clean-acc {:.3}  attack-success {:.1}%",
                        ev.accuracy,
                        asr * 100.0
                    );
                }
            }
        }
        logs.push(log);
    }
    let window: Vec<MetricsLog> = logs
        .iter()
        .map(|l| MetricsLog {
            label: l.label.clone(),
            points: l
                .points
                .iter()
                .filter(|pt| pt.round >= pre)
                .copied()
                .collect(),
        })
        .collect();
    print_series_table(
        &format!("Backdoor extension: clean accuracy (attack from round {pre})"),
        &window,
    );
    write_json(&opts.out, "backdoor", &logs);
}

/// Fig. 6: targeted label-flipping (3 → 8), p ∈ {0.1, 0.2, 0.3}; records
/// both accuracy (6a) and target misclassification (6b).
pub fn fig6(opts: &Opts) {
    let (pre, attack, stride) = presets::attack_rounds(opts.scale);
    let pre = opts.rounds.unwrap_or(pre);
    let data = feddata::femnist::generate(&presets::femnist_cfg(opts.scale), opts.seed);
    println!("dataset: {}", data.summary());
    let nodes = nodes_for(opts.scale);
    let kind = AttackKind::LabelFlip {
        src: FLIP_SRC,
        dst: FLIP_DST,
    };
    let mut logs = Vec::new();
    for p in [0.1, 0.2, 0.3] {
        println!("\n--- Fig. 6: label flipping {FLIP_SRC}->{FLIP_DST}, p = {p} ---");
        logs.push(attacked_run(
            opts, &data, nodes, p, kind, pre, attack, stride, true,
        ));
    }
    let window: Vec<MetricsLog> = logs
        .iter()
        .map(|l| MetricsLog {
            label: l.label.clone(),
            points: l
                .points
                .iter()
                .filter(|pt| pt.round >= pre)
                .copied()
                .collect(),
        })
        .collect();
    print_series_table(
        &format!("Fig. 6a: accuracy under label flipping (attack from round {pre})"),
        &window,
    );
    println!("\n=== Fig. 6b: target misclassification {FLIP_SRC}->{FLIP_DST} (%) ===");
    print!("{:>7}", "round");
    for l in &window {
        print!("  {:>12}", l.label);
    }
    println!();
    if let Some(first) = window.first() {
        for (i, pt) in first.points.iter().enumerate() {
            print!("{:>7}", pt.round);
            for l in &window {
                match l.points.get(i).and_then(|p| p.target_misclassification) {
                    Some(m) => print!("  {:>11.1}%", m * 100.0),
                    None => print!("  {:>12}", "-"),
                }
            }
            println!();
        }
    }
    write_json(&opts.out, "fig6", &logs);
}
