//! Scratch diagnostic: can the char LSTM learn the synthetic Shakespeare
//! task centrally? Used to calibrate fig4 hyperparameters.

use feddata::shakespeare::{generate, ShakespeareConfig};
use tinynn::rng::seeded;
use tinynn::{Sgd, Tensor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let lr: f32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let epochs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);
    let hidden: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(32);
    let cfg = ShakespeareConfig::scaled();
    let ds = generate(&cfg, 1);
    // Pool all users.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut xt = Vec::new();
    let mut yt = Vec::new();
    for c in &ds.clients {
        xs.extend_from_slice(c.train_x.as_slice());
        ys.extend_from_slice(&c.train_y);
        xt.extend_from_slice(c.test_x.as_slice());
        yt.extend_from_slice(&c.test_y);
    }
    let n = ys.len() / cfg.seq_len;
    let nt = yt.len() / cfg.seq_len;
    let x = Tensor::from_vec(vec![n, cfg.seq_len], xs);
    let xtest = Tensor::from_vec(vec![nt, cfg.seq_len], xt);
    println!(
        "pooled: {n} train sequences, {nt} test; vocab {}",
        cfg.vocab
    );

    // Theoretical ceiling: always predict the most likely successor.
    // Estimate from bigram counts of the training data.
    let v = cfg.vocab;
    let mut counts = vec![0u32; v * v];
    for i in 0..n {
        let seq = &x.as_slice()[i * cfg.seq_len..(i + 1) * cfg.seq_len];
        let tgt = &ys[i * cfg.seq_len..(i + 1) * cfg.seq_len];
        for t in 0..cfg.seq_len {
            counts[(seq[t] as usize) * v + tgt[t] as usize] += 1;
        }
    }
    let mut bigram_hits = 0u32;
    let mut total = 0u32;
    for i in 0..nt {
        let seq = &xtest.as_slice()[i * cfg.seq_len..(i + 1) * cfg.seq_len];
        let tgt = &yt[i * cfg.seq_len..(i + 1) * cfg.seq_len];
        for t in 0..cfg.seq_len {
            let row = &counts[(seq[t] as usize) * v..(seq[t] as usize + 1) * v];
            let pred = row
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(j, _)| j as u32)
                .unwrap();
            if pred == tgt[t] {
                bigram_hits += 1;
            }
            total += 1;
        }
    }
    println!(
        "bigram-table ceiling accuracy: {:.3}",
        bigram_hits as f32 / total as f32
    );

    let mut model = tinynn::zoo::char_lstm(cfg.vocab, 8, hidden, 2, &mut seeded(2));
    let mut sgd = Sgd::new(lr);
    for e in 0..epochs {
        // full-batch chunks of 32 sequences
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for start in (0..n).step_by(32) {
            let end = (start + 32).min(n);
            let xb = x.slice_batch(start, end);
            let yb = &ys[start * cfg.seq_len..end * cfg.seq_len];
            let (l, g) = model.loss_and_grads(&xb, yb);
            sgd.step(&mut model, &g);
            loss_sum += l;
            batches += 1;
        }
        if e % 5 == 0 || e == epochs - 1 {
            let (tl, ta) = model.evaluate(&xtest, &yt);
            println!(
                "epoch {e:>3}  train-loss {:.3}  test-loss {tl:.3}  test-acc {ta:.3}",
                loss_sum / batches as f32
            );
        }
    }
}
