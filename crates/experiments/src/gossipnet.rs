//! Extension experiment: the distributed (gossip) implementation under
//! real-world network conditions — the paper's §VI outlook, measured.
//!
//! Peers hold private replicas connected by a lossy random-regular
//! topology. We sweep message loss, track the consensus accuracy as seen
//! by one peer, and record replica divergence (spread of ledger sizes).

use crate::common::{print_series_table, write_json, Opts};
use learning_tangle::metrics::{MetricPoint, MetricsLog};
use learning_tangle::{SimConfig, TangleHyperParams};
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::network::{Latency, NetworkConfig, Topology};

/// Run the gossip-network sweep.
pub fn run(opts: &Opts) {
    let data = feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users: 20,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..feddata::blobs::BlobsConfig::default()
        },
        opts.seed,
    );
    println!("dataset: {}", data.summary());
    let build = || tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(5));
    let activations = opts.rounds.unwrap_or(120);
    let mut logs = Vec::new();
    for loss in [0.0, 0.2, 0.5] {
        let cfg = SimConfig {
            lr: 0.15,
            batch_size: 8,
            train_chunks: 1,
            train_parallel: true,
            eval_fraction: 1.0,
            seed: opts.seed,
            hyper: TangleHyperParams {
                confidence_samples: 8,
                reference_avg: 3,
                ..TangleHyperParams::basic()
            },
            ..SimConfig::default()
        };
        let net = NetworkConfig {
            topology: Topology::RandomRegular { degree: 4 },
            latency: Latency { min: 1, max: 4 },
            loss,
            pow_difficulty: 0,
            seed: opts.seed ^ 0x90551,
            ..NetworkConfig::default()
        };
        let mut gl = GossipLearning::new(data.clone(), cfg, net, build);
        gl.set_telemetry(crate::common::telemetry());
        let label = format!("gossip-loss{:.0}%", loss * 100.0);
        println!("\n--- {label} ---");
        let mut log = MetricsLog::new(&label);
        let chunk = (activations / 6).max(1);
        let mut done = 0;
        while done < activations {
            gl.run(chunk.min(activations - done));
            done += chunk;
            let (l, acc) = gl.evaluate_peer(0);
            let lens: Vec<usize> = gl.network().peers().iter().map(|p| p.len()).collect();
            let (min, max) = (
                *lens.iter().min().expect("peers"),
                *lens.iter().max().expect("peers"),
            );
            log.push(MetricPoint {
                round: done,
                accuracy: acc,
                loss: l,
                target_misclassification: None,
                tips: Some(max - min), // replica divergence in the tips slot
            });
            println!(
                "  [{label}] activations {done:>4}  peer0-acc {acc:.3}  replica sizes {min}..{max}  dropped {}",
                gl.network().stats.dropped
            );
        }
        // drain the wires and let the pull-based repair protocol heal the
        // losses peer-to-peer (no omniscient anti-entropy oracle)
        gl.network_mut().repair_to_quiescence(64);
        let (l, acc) = gl.evaluate_peer(0);
        println!(
            "  [{label}] after repair: acc {acc:.3}, consistent: {}",
            gl.network().replicas_consistent()
        );
        log.push(MetricPoint {
            round: done + 1,
            accuracy: acc,
            loss: l,
            target_misclassification: None,
            tips: Some(0),
        });
        logs.push(log);
    }
    print_series_table(
        "Gossip network: peer-0 consensus accuracy vs message loss",
        &logs,
    );
    write_json(&opts.out, "gossipnet", &logs);
}
