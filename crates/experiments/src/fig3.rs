//! Fig. 3: FEMNIST convergence — FedAvg vs basic tangle vs optimized
//! tangle at 10 / 35 / 50 active nodes per round.

use crate::common::{print_series_table, run_fedavg, run_tangle, sim_config, write_json, Opts};
use crate::presets;
use fedavg::FedAvgConfig;
use learning_tangle::{Simulation, TangleHyperParams};

/// Run one Fig. 3 panel (a fixed node count); `which` filters panels:
/// `None` runs 10, 35 and 50.
pub fn run(opts: &Opts, which: Option<usize>) {
    let (mut rounds, eval_every) = presets::convergence_rounds(opts.scale);
    if let Some(r) = opts.rounds {
        rounds = r;
    }
    let data = feddata::femnist::generate(&presets::femnist_cfg(opts.scale), opts.seed);
    println!("dataset: {}", data.summary());
    let lr = presets::femnist_lr(opts.scale);
    let build = presets::femnist_model(opts.scale, opts.seed ^ 0xB111);
    let panels: Vec<usize> = match which {
        Some(n) => vec![n],
        None => vec![10, 35, 50],
    };
    for nodes in panels {
        println!("\n--- Fig. 3: {nodes} nodes per round ---");
        let fedavg_log = run_fedavg(
            &data,
            FedAvgConfig {
                nodes_per_round: nodes,
                local_epochs: 1,
                lr,
                batch_size: 16,
                seed: opts.seed,
                aggregator: fedavg::Aggregator::Mean,
            },
            build.clone(),
            rounds,
            eval_every,
            0.1,
            &format!("FedAvg-{nodes}"),
            false,
        );
        let basic = TangleHyperParams {
            confidence_samples: nodes,
            ..TangleHyperParams::basic()
        };
        let (tangle_log, _) = run_tangle(
            Simulation::new(
                data.clone(),
                sim_config(nodes, lr, opts.seed, basic),
                build.clone(),
            ),
            rounds,
            eval_every,
            &format!("Tangle-{nodes}"),
            None,
            false,
        );
        let optimized = TangleHyperParams {
            confidence_samples: nodes,
            ..TangleHyperParams::optimized()
        };
        let (opt_log, _) = run_tangle(
            Simulation::new(
                data.clone(),
                sim_config(nodes, lr, opts.seed, optimized),
                build.clone(),
            ),
            rounds,
            eval_every,
            &format!("Tangle-opt-{nodes}"),
            None,
            false,
        );
        let logs = vec![fedavg_log, tangle_log, opt_log];
        print_series_table(
            &format!("Fig. 3: FEMNIST accuracy, {nodes} nodes/round"),
            &logs,
        );
        write_json(&opts.out, &format!("fig3_{nodes}nodes"), &logs);
    }
}
