//! Ablations of the design choices DESIGN.md calls out, on the fast blob
//! task: §III-E defense on/off under attack, walk randomness α, confidence
//! sample count, and the §VI accuracy-biased walk.

use crate::common::{print_series_table, run_tangle, sim_config, write_json, Opts};
use learning_tangle::{assign_malicious, AttackKind, Simulation, TangleHyperParams};
use tinynn::Sequential;

fn dataset(seed: u64) -> feddata::FederatedDataset {
    feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users: 30,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..feddata::blobs::BlobsConfig::default()
        },
        seed,
    )
}

fn build() -> Sequential {
    tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(5))
}

/// Run all ablations.
pub fn run(opts: &Opts) {
    defense(opts);
    alpha(opts);
    confidence(opts);
    confidence_mode(opts);
    accuracy_bias(opts);
    network(opts);
}

/// Confidence estimator: the paper's walk-hit counting vs IOTA's
/// approval-based convention.
fn confidence_mode(opts: &Opts) {
    let data = dataset(opts.seed ^ 5);
    let mut logs = Vec::new();
    for (label, mode) in [
        ("conf-walk-hit", learning_tangle::ConfidenceMode::WalkHit),
        ("conf-approval", learning_tangle::ConfidenceMode::Approval),
    ] {
        let hyper = TangleHyperParams {
            confidence_samples: 10,
            reference_avg: 3,
            confidence_mode: mode,
            ..TangleHyperParams::basic()
        };
        let sim = Simulation::new(data.clone(), sim_config(10, 0.15, opts.seed, hyper), build);
        let (log, _) = run_tangle(sim, 30, 5, label, None, true);
        logs.push(log);
    }
    print_series_table(
        "Ablation: confidence estimator (walk-hit vs approval)",
        &logs,
    );
    write_json(&opts.out, "ablation_confidence_mode", &logs);
}

/// §VI outlook: convergence under lossy, delayed network conditions.
fn network(opts: &Opts) {
    let data = dataset(opts.seed ^ 4);
    let mut logs = Vec::new();
    for (label, net) in [
        ("net-ideal", None),
        (
            "net-delay3-loss20",
            Some(learning_tangle::NetworkModel {
                max_delay_rounds: 3,
                publish_loss: 0.2,
            }),
        ),
        (
            "net-delay6-loss50",
            Some(learning_tangle::NetworkModel {
                max_delay_rounds: 6,
                publish_loss: 0.5,
            }),
        ),
    ] {
        let hyper = TangleHyperParams {
            confidence_samples: 10,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        };
        let mut cfg = sim_config(10, 0.15, opts.seed, hyper);
        cfg.network = net;
        let sim = Simulation::new(data.clone(), cfg, build);
        let (log, sim) = run_tangle(sim, 30, 5, label, None, true);
        println!("  [{label}] lost publications: {}", sim.lost_publications());
        logs.push(log);
    }
    print_series_table(
        "Ablation: real-world network conditions (delay + publish loss)",
        &logs,
    );
    write_json(&opts.out, "ablation_network", &logs);
}

/// §III-E defense on vs off under 25% random-noise poisoning.
fn defense(opts: &Opts) {
    let data = dataset(opts.seed);
    let nodes = 10;
    let pre = 20u64;
    let attack = 20u64;
    let mut logs = Vec::new();
    for (label, validation) in [("defense-on", true), ("defense-off", false)] {
        let hyper = TangleHyperParams {
            num_tips: 2,
            sample_size: if validation { nodes } else { 2 },
            reference_avg: 5,
            confidence_samples: nodes,
            alpha: 0.5,
            confidence_mode: learning_tangle::ConfidenceMode::WalkHit,
            tip_validation: validation,
            window: None,
            accuracy_bias: 0.0,
            parallel_walks: true,
        };
        let mut sim = Simulation::new(
            data.clone(),
            sim_config(nodes, 0.15, opts.seed, hyper),
            build,
        );
        assign_malicious(
            sim.nodes_mut(),
            0.25,
            pre + 1,
            AttackKind::RandomNoise,
            opts.seed,
            |_| None,
        );
        let (log, _) = run_tangle(sim, pre + attack, 4, label, None, true);
        logs.push(log);
    }
    print_series_table(
        "Ablation: §III-E tip validation under 25% noise poisoning (attack from round 21)",
        &logs,
    );
    write_json(&opts.out, "ablation_defense", &logs);
}

/// Walk randomness α sweep.
fn alpha(opts: &Opts) {
    let data = dataset(opts.seed ^ 1);
    let mut logs = Vec::new();
    for a in [0.0, 0.5, 5.0] {
        let hyper = TangleHyperParams {
            alpha: a,
            confidence_samples: 10,
            ..TangleHyperParams::basic()
        };
        let sim = Simulation::new(data.clone(), sim_config(10, 0.15, opts.seed, hyper), build);
        let (log, _) = run_tangle(sim, 30, 5, &format!("alpha-{a}"), None, true);
        logs.push(log);
    }
    print_series_table("Ablation: walk randomness α", &logs);
    write_json(&opts.out, "ablation_alpha", &logs);
}

/// Confidence sample count sweep (stability of Algorithm 1).
fn confidence(opts: &Opts) {
    let data = dataset(opts.seed ^ 2);
    let mut logs = Vec::new();
    for s in [2usize, 8, 32] {
        let hyper = TangleHyperParams {
            confidence_samples: s,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        };
        let sim = Simulation::new(data.clone(), sim_config(10, 0.15, opts.seed, hyper), build);
        let (log, _) = run_tangle(sim, 30, 5, &format!("conf-samples-{s}"), None, true);
        logs.push(log);
    }
    print_series_table("Ablation: confidence sample count", &logs);
    write_json(&opts.out, "ablation_confidence", &logs);
}

/// §VI outlook: accuracy-biased walk vs plain weighted walk.
fn accuracy_bias(opts: &Opts) {
    let data = dataset(opts.seed ^ 3);
    let mut logs = Vec::new();
    for (label, bias) in [("walk-plain", 0.0), ("walk-acc-biased", 10.0)] {
        let hyper = TangleHyperParams {
            accuracy_bias: bias,
            confidence_samples: 10,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        };
        let sim = Simulation::new(data.clone(), sim_config(10, 0.15, opts.seed, hyper), build);
        let (log, _) = run_tangle(sim, 30, 5, label, None, true);
        logs.push(log);
    }
    print_series_table("Ablation: §VI accuracy-biased random walk", &logs);
    write_json(&opts.out, "ablation_accuracy_bias", &logs);
}
