//! Robustness experiment: accuracy and replica consistency vs node churn.
//!
//! Peers learn over a lossy gossip network while a deterministic
//! [`FaultPlan`] crashes and restarts them on schedule (recovering from
//! periodic checkpoints), on top of constant link-level duplication,
//! corruption, and reordering. After the run, replicas must reconcile
//! through the pull-based repair protocol alone; the experiment prints a
//! degradation table of final accuracy and consistency per churn level.

use crate::common::{write_json, Opts};
use learning_tangle::metrics::{MetricPoint, MetricsLog};
use learning_tangle::{SimConfig, TangleHyperParams};
use tangle_gossip::fault::FaultPlan;
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::network::{Latency, NetworkConfig, Topology};

struct Row {
    label: String,
    cycles: u64,
    accuracy: f32,
    consistent: bool,
    crashes: usize,
    discarded: u64,
    rerequests: u64,
}

/// Run the churn sweep: 0, half, and full `--churn` crash/restart cycles.
pub fn run(opts: &Opts) {
    let users = 12usize;
    let data = feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..feddata::blobs::BlobsConfig::default()
        },
        opts.seed,
    );
    println!("dataset: {}", data.summary());
    println!(
        "fault seed {}, checkpointing every {} ticks",
        opts.fault_seed, opts.checkpoint_every
    );
    let build = || tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(5));
    let activations = opts.rounds.unwrap_or(120);
    let mut levels = vec![0, opts.churn / 2, opts.churn];
    levels.dedup();
    let mut logs = Vec::new();
    let mut rows = Vec::new();
    for cycles in levels {
        let cfg = SimConfig {
            lr: 0.15,
            batch_size: 8,
            train_chunks: 1,
            train_parallel: true,
            eval_fraction: 1.0,
            seed: opts.seed,
            hyper: TangleHyperParams {
                confidence_samples: 8,
                reference_avg: 3,
                ..TangleHyperParams::basic()
            },
            ..SimConfig::default()
        };
        let net_cfg = NetworkConfig {
            topology: Topology::RandomRegular { degree: 4 },
            latency: Latency { min: 1, max: 4 },
            loss: 0.05,
            seed: opts.seed ^ 0xC806,
            ..NetworkConfig::default()
        };
        let mut gl = GossipLearning::new(data.clone(), cfg, net_cfg, build);
        gl.set_telemetry(crate::common::telemetry());
        // Constant link perturbations across all levels; only the
        // crash/restart cycle count varies.
        let mut plan = FaultPlan::churn(
            users,
            cycles as usize,
            activations,
            (activations / 8).max(8),
            opts.fault_seed,
        );
        plan.duplicate = 0.03;
        plan.corrupt = 0.03;
        plan.reorder_jitter = 2;
        let crashes = plan.crashes.len();
        {
            let net = gl.network_mut();
            net.set_checkpointing(opts.checkpoint_every, None);
            net.install_faults(plan);
        }
        let label = format!("churn-{cycles}");
        println!("\n--- {label} ({crashes} crash/restart cycles) ---");
        let mut log = MetricsLog::new(&label);
        let chunk = (activations / 6).max(1);
        let mut done = 0;
        while done < activations {
            gl.run(chunk.min(activations - done));
            done += chunk;
            let (l, acc) = gl.evaluate_peer(0);
            let lens: Vec<usize> = gl.network().peers().iter().map(|p| p.len()).collect();
            let (min, max) = (
                *lens.iter().min().expect("peers"),
                *lens.iter().max().expect("peers"),
            );
            log.push(MetricPoint {
                round: done,
                accuracy: acc,
                loss: l,
                target_misclassification: None,
                tips: Some(max - min), // replica divergence in the tips slot
            });
            println!(
                "  [{label}] activations {done:>4}  peer0-acc {acc:.3}  replica sizes {min}..{max}  discarded {}",
                gl.network().stats.discarded
            );
        }
        // Reconcile via the pull-based repair protocol alone.
        let quiesced = gl.network_mut().repair_to_quiescence(64);
        let consistent = quiesced && gl.network().replicas_consistent();
        let (l, acc) = gl.evaluate_peer(0);
        let stats = gl.network().stats;
        println!(
            "  [{label}] consistent after repair: {consistent}  acc {acc:.3}  rerequests {}  discarded {}",
            stats.rerequests, stats.discarded
        );
        log.push(MetricPoint {
            round: done + 1,
            accuracy: acc,
            loss: l,
            target_misclassification: None,
            tips: Some(0),
        });
        logs.push(log);
        rows.push(Row {
            label,
            cycles,
            accuracy: acc,
            consistent,
            crashes,
            discarded: stats.discarded,
            rerequests: stats.rerequests,
        });
    }
    println!("\n=== Accuracy and consistency vs churn ===");
    println!(
        "{:>10}  {:>6}  {:>8}  {:>9}  {:>10}  {:>10}  {:>10}",
        "level", "cycles", "crashes", "final-acc", "consistent", "discarded", "rerequests"
    );
    for r in &rows {
        println!(
            "{:>10}  {:>6}  {:>8}  {:>9.3}  {:>10}  {:>10}  {:>10}",
            r.label, r.cycles, r.crashes, r.accuracy, r.consistent, r.discarded, r.rerequests
        );
    }
    write_json(&opts.out, "churn", &logs);
}
