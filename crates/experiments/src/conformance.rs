//! `conformance` — model-based conformance harness over the three
//! protocol executors (round sim, async sim, gossip network).
//!
//! Explore mode (default): generate `--schedules=N` seeded schedules,
//! check differential agreement + standalone invariants on each, shrink
//! any failure to a near-minimal repro and save it as a JSON artifact
//! under `--out`. Exit code 1 if a genuine violation was found.
//!
//! Replay mode (`--replay=PATH`): re-run a saved artifact's schedule and
//! report whether its recorded violation still reproduces. With
//! `--mutate=stale-cache` the documented stale-cache bug is injected
//! first; a checked-in regression artifact is then *expected* to
//! reproduce, and the exit code is 1 when it does not.

use crate::common::Opts;
use lt_conformance::{explore, shrink, Artifact, Mutation};

/// Candidate re-executions granted to the shrinker per failure.
const SHRINK_BUDGET: usize = 200;

fn parse_mutation(opts: &Opts) -> Mutation {
    match opts.mutate.as_deref() {
        None | Some("none") => Mutation::None,
        Some("stale-cache") => Mutation::StaleCache,
        Some(other) => {
            eprintln!("unknown --mutate value: {other} (expected stale-cache)");
            std::process::exit(2);
        }
    }
}

pub fn run(opts: &Opts) {
    let mutation = parse_mutation(opts);
    match &opts.replay {
        Some(path) => replay(path, mutation),
        None => explore_mode(opts, mutation),
    }
}

fn replay(path: &std::path::Path, mutation: Mutation) {
    let artifact = Artifact::load(path)
        .unwrap_or_else(|e| panic!("cannot load artifact {}: {e}", path.display()));
    println!(
        "replaying {} ({} ops, recorded invariant `{}`{})",
        path.display(),
        artifact.schedule.ops.len(),
        artifact.invariant,
        match mutation {
            Mutation::None => String::new(),
            Mutation::StaleCache => ", mutation stale-cache injected".to_string(),
        }
    );
    match artifact.replay(mutation) {
        Err(v) if v.invariant == artifact.invariant => {
            println!("  reproduced: [{}] {}", v.invariant, v.detail);
            if mutation == Mutation::None {
                // A clean build violating a recorded invariant is a live bug.
                std::process::exit(1);
            }
        }
        Err(v) => {
            println!(
                "  DIVERGED: expected `{}`, got [{}] {}",
                artifact.invariant, v.invariant, v.detail
            );
            std::process::exit(1);
        }
        Ok(()) => {
            println!("  clean: the recorded violation does not reproduce");
            if mutation != Mutation::None {
                // The injected bug was supposed to fire on this schedule.
                std::process::exit(1);
            }
        }
    }
}

fn explore_mode(opts: &Opts, mutation: Mutation) {
    println!(
        "exploring {} schedules (seed {}{})",
        opts.schedules,
        opts.seed,
        match mutation {
            Mutation::None => String::new(),
            Mutation::StaleCache => ", mutation stale-cache injected".to_string(),
        }
    );
    let failures = explore(opts.schedules, opts.seed, mutation);
    if failures.is_empty() {
        println!("  {} schedules checked, zero violations", opts.schedules);
        if mutation != Mutation::None {
            eprintln!("  ERROR: the injected bug was not caught");
            std::process::exit(1);
        }
        return;
    }
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    for (i, (schedule, violation)) in failures.iter().enumerate() {
        println!(
            "  violation [{}] on schedule seed {}: {}",
            violation.invariant, schedule.seed, violation.detail
        );
        let (minimal, spent) = shrink(schedule, violation, mutation, SHRINK_BUDGET);
        let path = opts
            .out
            .join(format!("conformance-{}-{i}.json", violation.invariant));
        Artifact::new(minimal.clone(), violation)
            .save(&path)
            .expect("write artifact");
        println!(
            "    shrunk {} -> {} ops in {spent} executions, saved {}",
            schedule.ops.len(),
            minimal.ops.len(),
            path.display()
        );
    }
    println!(
        "  {} violations across {} schedules",
        failures.len(),
        opts.schedules
    );
    // Finding violations is the *expected* outcome under an injected
    // mutation; without one it means a real conformance bug.
    if mutation == Mutation::None {
        std::process::exit(1);
    }
}
