//! Scale-dependent dataset and model presets used by all experiments.

use crate::common::Scale;
use feddata::femnist::FemnistConfig;
use feddata::shakespeare::ShakespeareConfig;
use tinynn::zoo::{char_lstm, femnist_cnn, CnnConfig};
use tinynn::Sequential;

/// FEMNIST generator configuration for the chosen scale.
pub fn femnist_cfg(scale: Scale) -> FemnistConfig {
    match scale {
        Scale::Scaled => FemnistConfig::scaled(),
        Scale::Paper => FemnistConfig::paper(),
    }
}

/// CNN widths for the chosen scale.
pub fn cnn_cfg(scale: Scale) -> CnnConfig {
    match scale {
        Scale::Scaled => CnnConfig::scaled(),
        Scale::Paper => CnnConfig::paper(),
    }
}

/// A FEMNIST CNN builder with a fixed initialization seed — every
/// invocation yields identical parameters, so the genesis model, FedAvg's
/// initial global model, and all scratch models agree.
pub fn femnist_model(scale: Scale, seed: u64) -> impl Fn() -> Sequential + Sync + Clone {
    let f = femnist_cfg(scale);
    let c = cnn_cfg(scale);
    move || femnist_cnn(f.img, f.classes, c, &mut tinynn::rng::seeded(seed))
}

/// Shakespeare generator configuration for the chosen scale.
pub fn shakespeare_cfg(scale: Scale) -> ShakespeareConfig {
    match scale {
        Scale::Scaled => ShakespeareConfig::scaled(),
        Scale::Paper => ShakespeareConfig::paper(),
    }
}

/// Stacked-LSTM builder for the Shakespeare task at the chosen scale.
pub fn shakespeare_model(scale: Scale, seed: u64) -> impl Fn() -> Sequential + Sync + Clone {
    let s = shakespeare_cfg(scale);
    let (embed, hidden, layers) = match scale {
        Scale::Scaled => (8, 32, 2),
        Scale::Paper => (8, 256, 2),
    };
    move || {
        char_lstm(
            s.vocab,
            embed,
            hidden,
            layers,
            &mut tinynn::rng::seeded(seed),
        )
    }
}

/// FEMNIST learning rate (paper Table I: 0.06).
pub fn femnist_lr(_scale: Scale) -> f32 {
    0.06
}

/// Shakespeare learning rate. The paper's Table I lists 0.8, but tinynn
/// normalizes the cross-entropy over *all* `B·T` predicted positions, so
/// an equivalent step size is larger; 3.0 reaches the task's bigram
/// ceiling in centralized calibration runs (see the `debug_lstm` binary).
pub fn shakespeare_lr(_scale: Scale) -> f32 {
    3.0
}

/// Convergence-experiment round budget (Fig. 3/4: the paper trains 200
/// rounds, evaluating every 20).
pub fn convergence_rounds(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Scaled => (100, 10),
        Scale::Paper => (200, 20),
    }
}

/// Attack-experiment schedule: (benign pre-training rounds, attack rounds,
/// evaluation stride). Paper: 200 benign + 50 attack, per-round evaluation.
pub fn attack_rounds(scale: Scale) -> (u64, u64, u64) {
    match scale {
        Scale::Scaled => (60, 40, 2),
        Scale::Paper => (200, 50, 2),
    }
}
