//! Multi-process networking experiment: spawn N local `lt-node` daemons,
//! verify that a scripted lockstep schedule byte-agrees with the
//! in-process gossip executor, then drive sustained publish traffic and
//! report throughput, socket-level frame/byte totals, and peer RTT.
//!
//! With `--soak-secs=N` the experiment instead runs a long-haul chaos
//! soak: rolling link faults (partitions, latency, corruption, resets)
//! plus supervised SIGKILL + checkpoint-restore cycles, asserting that
//! the cluster reconverges through the real repair protocol and that
//! every final archive passes the full conformance invariant suite.
//!
//! This is the wire-protocol counterpart of the `gossipnet` extension:
//! the same protocol, but over real TCP sockets, one process per peer.

use crate::common::Opts;
use lt_conformance::check_ledger_invariants;
use lt_net::{default_node_bin, run_soak, Cluster, Preset, SoakConfig, ORPHAN_CAP};
use std::io::Write;
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::network::{Latency, NetworkConfig, Topology};
use tangle_gossip::{Peer, ReceiveOutcome};
use tinynn::rng::{derive, seeded};

/// Run the networking experiment.
pub fn run(opts: &Opts) {
    if let Some(secs) = opts.soak_secs {
        soak(opts, secs);
        return;
    }
    let nodes = opts.nodes.unwrap_or(3);
    let per_node = opts.rounds.unwrap_or(20) as usize;
    let seed = opts.seed;
    let bin = default_node_bin();
    println!("lt-node binary: {}", bin.display());
    println!("preset: nodes={nodes} seed={seed}");

    // --- phase 1: lockstep agreement with the in-process executor
    let schedule: Vec<usize> = {
        use rand::RngExt;
        let mut rng = seeded(derive(seed, 0x5C4E_D01E));
        (0..3 * nodes).map(|_| rng.random_range(0..nodes)).collect()
    };
    let preset = Preset { nodes, seed };
    let mut gl = GossipLearning::new(
        preset.dataset(),
        preset.sim_cfg(),
        NetworkConfig {
            topology: Topology::FullMesh,
            latency: Latency { min: 1, max: 2 },
            loss: 0.0,
            pow_difficulty: 0,
            seed: derive(seed, 0x6055),
            orphan_cap: ORPHAN_CAP,
        },
        Preset::build,
    );
    for &p in &schedule {
        gl.activate(p);
        gl.network_mut().run_to_quiescence();
    }
    let oracle: Vec<Vec<u8>> = gl
        .network()
        .peer(0)
        .export_messages()
        .iter()
        .map(|m| m.encode().to_vec())
        .collect();

    let mut cluster = Cluster::spawn(&bin, nodes, seed, 0).expect("spawn cluster");
    let lockstep = cluster.lockstep(&schedule).expect("lockstep run");
    let archives = cluster.archives().expect("fetch archives");
    let agree = archives.iter().all(|a| {
        a.iter()
            .map(|m| m.encode().to_vec())
            .collect::<Vec<_>>()
            .eq(&oracle)
    });
    cluster.shutdown().expect("shutdown lockstep cluster");
    println!(
        "\n=== lockstep ({} activations over {} daemons) ===",
        lockstep.activations, nodes
    );
    println!("  published       {:>8}", lockstep.published);
    println!("  final ledger    {:>8}", lockstep.final_len);
    println!(
        "  oracle agreement {:>7}",
        if agree { "BYTE-EQ" } else { "DIVERGED" }
    );
    assert!(agree, "daemon archives diverged from the in-process oracle");

    // --- phase 2: sustained concurrent publish traffic, pings on
    let mut cluster = Cluster::spawn(&bin, nodes, seed, 25).expect("spawn cluster");
    let report = cluster.throughput(per_node).expect("throughput run");
    cluster.shutdown().expect("shutdown throughput cluster");
    println!(
        "\n=== throughput ({} activations/daemon, {} daemons) ===",
        per_node, nodes
    );
    println!("  wall            {:>10.2?}", report.wall);
    println!("  drain           {:>10.2?}", report.drain);
    println!("  activations/s   {:>10.1}", report.activations_per_sec());
    println!(
        "  published       {:>10} ({} discarded)",
        report.published,
        report.activations as u64 - report.published
    );
    println!(
        "  frames sent/recv{:>10} / {}",
        report.frames_sent, report.frames_recv
    );
    println!(
        "  bytes sent/recv {:>10} / {}",
        report.bytes_sent, report.bytes_recv
    );
    println!(
        "  dropped/rejected{:>10} / {}",
        report.dropped, report.rejected
    );
    match report.mean_rtt_us() {
        Some(rtt) => println!(
            "  mean RTT        {:>10.0} us ({} pings)",
            rtt, report.rtt.0
        ),
        None => println!("  mean RTT        {:>10}", "-"),
    }

    // artifact for the paper repo's results directory
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let path = opts.out.join("net.json");
    let json = format!(
        concat!(
            "{{\n",
            "  \"nodes\": {},\n",
            "  \"seed\": {},\n",
            "  \"lockstep\": {{ \"activations\": {}, \"published\": {}, ",
            "\"final_len\": {}, \"oracle_agreement\": {} }},\n",
            "  \"throughput\": {{ \"activations\": {}, \"published\": {}, ",
            "\"wall_us\": {}, \"drain_us\": {}, \"activations_per_sec\": {:.2}, ",
            "\"frames_sent\": {}, \"frames_recv\": {}, ",
            "\"bytes_sent\": {}, \"bytes_recv\": {}, ",
            "\"dropped\": {}, \"rejected\": {}, ",
            "\"rtt_count\": {}, \"rtt_sum_us\": {} }}\n",
            "}}\n"
        ),
        nodes,
        seed,
        lockstep.activations,
        lockstep.published,
        lockstep.final_len,
        agree,
        report.activations,
        report.published,
        report.wall.as_micros(),
        report.drain.as_micros(),
        report.activations_per_sec(),
        report.frames_sent,
        report.frames_recv,
        report.bytes_sent,
        report.bytes_recv,
        report.dropped,
        report.rejected,
        report.rtt.0,
        report.rtt.1,
    );
    let mut f = std::fs::File::create(&path).expect("create net.json");
    f.write_all(json.as_bytes()).expect("write net.json");
    println!("  wrote {}", path.display());
}

/// The chaos soak: N daemons, `secs` seconds of publish traffic under a
/// rolling fault schedule, then heal, reconverge, and audit.
fn soak(opts: &Opts, secs: u64) {
    let nodes = opts.nodes.unwrap_or(4);
    let seed = opts.seed;
    let bin = default_node_bin();
    let ckpt_dir = opts.out.join("soak-ckpt");
    let cfg = SoakConfig::new(nodes, seed, secs * 1000, opts.chaos_seed, &ckpt_dir);
    println!("lt-node binary: {}", bin.display());
    println!(
        "soak: nodes={nodes} seed={seed} duration={secs}s chaos-seed={} \
         ({} link faults, {} kill/restore cycles)",
        opts.chaos_seed,
        cfg.chaos.links.len(),
        cfg.chaos.kills.len(),
    );

    let (report, archives) = run_soak(&bin, &cfg).expect("soak run");

    // Rebuild a replica from every daemon's archive and run the full
    // conformance invariant suite over each — the soak is only a pass if
    // the ledgers that survived the chaos are *structurally* sound, not
    // merely equal to each other.
    let p = Preset { nodes, seed };
    let genesis = p.genesis();
    let mut invariants_ok = true;
    for (i, archive) in archives.iter().enumerate() {
        let mut rebuilt = Peer::new(0, &genesis, 0).with_orphan_cap(ORPHAN_CAP);
        for msg in archive {
            if rebuilt.receive(msg) != ReceiveOutcome::Accepted {
                println!("  daemon {i}: archive replay rejected a message");
                invariants_ok = false;
            }
        }
        if let Err(v) = check_ledger_invariants(rebuilt.replica(), &p.sim_cfg(), seed) {
            println!("  daemon {i}: invariant violation: {v:?}");
            invariants_ok = false;
        }
    }

    let yn = |b: bool| if b { "yes" } else { "NO" };
    println!("\n=== soak ({nodes} daemons, {secs}s under rolling chaos) ===");
    println!("  activations     {:>8}", report.activations);
    println!("  published       {:>8}", report.published);
    println!("  skipped (down)  {:>8}", report.skipped_down);
    println!(
        "  kills/respawns  {:>8} / {}",
        report.kills, report.respawns
    );
    println!(
        "  converged       {:>8} ({} ms after heal)",
        yn(report.converged),
        report.converge_ms
    );
    println!("  final ledger    {:>8}", report.final_len);
    println!(
        "  repair quiesced {:>8} ({} rerequests total)",
        yn(report.repair_quiescent),
        report.rerequests
    );
    println!("  archives agree  {:>8}", yn(report.archives_agree));
    println!("  invariants      {:>8}", yn(invariants_ok));

    // results/soak.json: the full report plus the audit verdict, with the
    // embedded ChaosPlan making the run reproducible from its seeds
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let path = opts.out.join("soak.json");
    let json = report.to_json().replacen(
        "{\n",
        &format!("{{\n  \"invariants_ok\": {invariants_ok},\n"),
        1,
    );
    let mut f = std::fs::File::create(&path).expect("create soak.json");
    f.write_all(json.as_bytes()).expect("write soak.json");
    println!("  wrote {}", path.display());

    assert!(report.converged, "soak did not reconverge after the heal");
    assert!(report.archives_agree, "soak archives diverged");
    assert!(invariants_ok, "soak archives violate ledger invariants");
}
