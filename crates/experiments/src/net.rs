//! Multi-process networking experiment: spawn N local `lt-node` daemons,
//! verify that a scripted lockstep schedule byte-agrees with the
//! in-process gossip executor, then drive sustained publish traffic and
//! report throughput, socket-level frame/byte totals, and peer RTT.
//!
//! This is the wire-protocol counterpart of the `gossipnet` extension:
//! the same protocol, but over real TCP sockets, one process per peer.

use crate::common::Opts;
use lt_net::{default_node_bin, Cluster, Preset, ORPHAN_CAP};
use std::io::Write;
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::network::{Latency, NetworkConfig, Topology};
use tinynn::rng::{derive, seeded};

/// Run the networking experiment.
pub fn run(opts: &Opts) {
    let nodes = opts.nodes.unwrap_or(3);
    let per_node = opts.rounds.unwrap_or(20) as usize;
    let seed = opts.seed;
    let bin = default_node_bin();
    println!("lt-node binary: {}", bin.display());
    println!("preset: nodes={nodes} seed={seed}");

    // --- phase 1: lockstep agreement with the in-process executor
    let schedule: Vec<usize> = {
        use rand::RngExt;
        let mut rng = seeded(derive(seed, 0x5C4E_D01E));
        (0..3 * nodes).map(|_| rng.random_range(0..nodes)).collect()
    };
    let preset = Preset { nodes, seed };
    let mut gl = GossipLearning::new(
        preset.dataset(),
        preset.sim_cfg(),
        NetworkConfig {
            topology: Topology::FullMesh,
            latency: Latency { min: 1, max: 2 },
            loss: 0.0,
            pow_difficulty: 0,
            seed: derive(seed, 0x6055),
            orphan_cap: ORPHAN_CAP,
        },
        Preset::build,
    );
    for &p in &schedule {
        gl.activate(p);
        gl.network_mut().run_to_quiescence();
    }
    let oracle: Vec<Vec<u8>> = gl
        .network()
        .peer(0)
        .export_messages()
        .iter()
        .map(|m| m.encode().to_vec())
        .collect();

    let mut cluster = Cluster::spawn(&bin, nodes, seed, 0).expect("spawn cluster");
    let lockstep = cluster.lockstep(&schedule).expect("lockstep run");
    let archives = cluster.archives().expect("fetch archives");
    let agree = archives.iter().all(|a| {
        a.iter()
            .map(|m| m.encode().to_vec())
            .collect::<Vec<_>>()
            .eq(&oracle)
    });
    cluster.shutdown().expect("shutdown lockstep cluster");
    println!(
        "\n=== lockstep ({} activations over {} daemons) ===",
        lockstep.activations, nodes
    );
    println!("  published       {:>8}", lockstep.published);
    println!("  final ledger    {:>8}", lockstep.final_len);
    println!(
        "  oracle agreement {:>7}",
        if agree { "BYTE-EQ" } else { "DIVERGED" }
    );
    assert!(agree, "daemon archives diverged from the in-process oracle");

    // --- phase 2: sustained concurrent publish traffic, pings on
    let mut cluster = Cluster::spawn(&bin, nodes, seed, 25).expect("spawn cluster");
    let report = cluster.throughput(per_node).expect("throughput run");
    cluster.shutdown().expect("shutdown throughput cluster");
    println!(
        "\n=== throughput ({} activations/daemon, {} daemons) ===",
        per_node, nodes
    );
    println!("  wall            {:>10.2?}", report.wall);
    println!("  drain           {:>10.2?}", report.drain);
    println!("  activations/s   {:>10.1}", report.activations_per_sec());
    println!(
        "  published       {:>10} ({} discarded)",
        report.published,
        report.activations as u64 - report.published
    );
    println!(
        "  frames sent/recv{:>10} / {}",
        report.frames_sent, report.frames_recv
    );
    println!(
        "  bytes sent/recv {:>10} / {}",
        report.bytes_sent, report.bytes_recv
    );
    println!(
        "  dropped/rejected{:>10} / {}",
        report.dropped, report.rejected
    );
    match report.mean_rtt_us() {
        Some(rtt) => println!(
            "  mean RTT        {:>10.0} us ({} pings)",
            rtt, report.rtt.0
        ),
        None => println!("  mean RTT        {:>10}", "-"),
    }

    // artifact for the paper repo's results directory
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let path = opts.out.join("net.json");
    let json = format!(
        concat!(
            "{{\n",
            "  \"nodes\": {},\n",
            "  \"seed\": {},\n",
            "  \"lockstep\": {{ \"activations\": {}, \"published\": {}, ",
            "\"final_len\": {}, \"oracle_agreement\": {} }},\n",
            "  \"throughput\": {{ \"activations\": {}, \"published\": {}, ",
            "\"wall_us\": {}, \"drain_us\": {}, \"activations_per_sec\": {:.2}, ",
            "\"frames_sent\": {}, \"frames_recv\": {}, ",
            "\"bytes_sent\": {}, \"bytes_recv\": {}, ",
            "\"dropped\": {}, \"rejected\": {}, ",
            "\"rtt_count\": {}, \"rtt_sum_us\": {} }}\n",
            "}}\n"
        ),
        nodes,
        seed,
        lockstep.activations,
        lockstep.published,
        lockstep.final_len,
        agree,
        report.activations,
        report.published,
        report.wall.as_micros(),
        report.drain.as_micros(),
        report.activations_per_sec(),
        report.frames_sent,
        report.frames_recv,
        report.bytes_sent,
        report.bytes_recv,
        report.dropped,
        report.rejected,
        report.rtt.0,
        report.rtt.1,
    );
    let mut f = std::fs::File::create(&path).expect("create net.json");
    f.write_all(json.as_bytes()).expect("write net.json");
    println!("  wrote {}", path.display());
}
