//! `lt-experiments` — regenerate every table and figure of *Tangle Ledger
//! for Decentralized Learning*.
//!
//! ```text
//! lt-experiments <experiment> [--paper] [--seed=N] [--rounds=N] [--out=DIR]
//!                [--telemetry <path.jsonl>] [--telemetry-timings]
//!                [--churn=N] [--fault-seed=N] [--checkpoint-every=N]
//!                [--schedules=N] [--replay=PATH] [--mutate=stale-cache]
//!
//! experiments:
//!   table1   dataset characteristics and training parameters
//!   fig2     tangle structure classification + DOT export
//!   fig3     FEMNIST convergence, FedAvg vs tangle vs optimized tangle
//!   fig3a/b/c  single panel (10 / 35 / 50 nodes per round)
//!   fig4     Shakespeare convergence, FedAvg vs tangle
//!   table2   hyperparameter sweep: rounds to 70% of reference accuracy
//!   fig5     random-noise poisoning, p in {0.1, 0.2, 0.25, 0.3}
//!   fig6     label-flipping 3->8, p in {0.1, 0.2, 0.3} (accuracy + 6b)
//!   backdoor corner-trigger backdoor attack (extension), p in {0.1, 0.2, 0.3}
//!   gossipnet distributed gossip implementation vs message loss (extension)
//!   net      multi-process networking: N lt-node daemons over localhost
//!            TCP; lockstep byte-agreement with the in-process executor,
//!            then sustained-publish throughput/latency (--nodes=N).
//!            With --soak-secs=N: a long-haul chaos soak instead —
//!            rolling partitions/latency/corruption/resets plus SIGKILL
//!            + checkpoint-restore cycles, asserting reconvergence and
//!            invariant-clean archives (--chaos-seed=N)
//!   churn    fault injection: accuracy/consistency vs crash-restart churn
//!   linkability update-linkability attack vs DP noise (extension, §III-D)
//!   ablate   design-choice ablations (defense, alpha, confidence, bias)
//!   conformance model-based schedule exploration across the three
//!            executors; shrinks failures to JSON repro artifacts and
//!            replays them (--schedules / --replay / --mutate)
//!   all      everything above, in order
//! ```
//!
//! The default (scaled-down) configuration finishes on a single CPU core;
//! `--paper` restores the paper-scale populations and round counts.

mod ablate;
mod attacks;
mod churn;
mod common;
mod conformance;
mod fig2;
mod fig3;
mod fig4;
mod gossipnet;
mod linkability;
mod net;
mod presets;
mod table1;
mod table2;

use common::Opts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: lt-experiments <table1|fig2|fig3|fig3a|fig3b|fig3c|fig4|table2|fig5|fig6|backdoor|gossipnet|net|churn|linkability|ablate|conformance|all> [--nodes=N] [--soak-secs=N] [--chaos-seed=N] [--paper] [--seed=N] [--rounds=N] [--out=DIR] [--telemetry <path.jsonl>] [--telemetry-timings] [--churn=N] [--fault-seed=N] [--checkpoint-every=N] [--schedules=N] [--replay=PATH] [--mutate=stale-cache]");
        std::process::exit(2);
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    common::init_telemetry(&opts);
    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "table1" => table1::run(&opts),
        "fig2" => fig2::run(&opts),
        "fig3" => fig3::run(&opts, None),
        "fig3a" => fig3::run(&opts, Some(10)),
        "fig3b" => fig3::run(&opts, Some(35)),
        "fig3c" => fig3::run(&opts, Some(50)),
        "fig4" => fig4::run(&opts),
        "table2" => table2::run(&opts),
        "fig5" => attacks::fig5(&opts),
        "fig6" => attacks::fig6(&opts),
        "backdoor" => attacks::backdoor(&opts),
        "gossipnet" => gossipnet::run(&opts),
        "net" => net::run(&opts),
        "churn" => churn::run(&opts),
        "linkability" => linkability::run(&opts),
        "ablate" => ablate::run(&opts),
        "conformance" => conformance::run(&opts),
        "all" => {
            table1::run(&opts);
            fig2::run(&opts);
            fig3::run(&opts, None);
            fig4::run(&opts);
            table2::run(&opts);
            attacks::fig5(&opts);
            attacks::fig6(&opts);
            attacks::backdoor(&opts);
            gossipnet::run(&opts);
            churn::run(&opts);
            linkability::run(&opts);
            ablate::run(&opts);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
    println!("\ndone in {:.1?}", t0.elapsed());
}
