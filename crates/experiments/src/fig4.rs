//! Fig. 4: Shakespeare (stacked LSTM) convergence — FedAvg vs basic
//! tangle, 10 active nodes per round.

use crate::common::{print_series_table, run_fedavg, run_tangle, sim_config, write_json, Opts};
use crate::presets;
use fedavg::FedAvgConfig;
use learning_tangle::{Simulation, TangleHyperParams};

/// Run the Fig. 4 experiment.
pub fn run(opts: &Opts) {
    let (mut rounds, eval_every) = presets::convergence_rounds(opts.scale);
    if let Some(r) = opts.rounds {
        rounds = r;
    }
    let data = feddata::shakespeare::generate(&presets::shakespeare_cfg(opts.scale), opts.seed);
    println!("dataset: {}", data.summary());
    let lr = presets::shakespeare_lr(opts.scale);
    let build = presets::shakespeare_model(opts.scale, opts.seed ^ 0x54A6);
    let nodes = 10;
    let fedavg_log = run_fedavg(
        &data,
        FedAvgConfig {
            nodes_per_round: nodes,
            local_epochs: 1,
            lr,
            batch_size: 8,
            seed: opts.seed,
            aggregator: fedavg::Aggregator::Mean,
        },
        build.clone(),
        rounds,
        eval_every,
        0.1,
        "FedAvg",
        false,
    );
    let basic = TangleHyperParams {
        confidence_samples: nodes,
        ..TangleHyperParams::basic()
    };
    let mut cfg = sim_config(nodes, lr, opts.seed, basic);
    cfg.batch_size = 8;
    let (tangle_log, _) = run_tangle(
        Simulation::new(data.clone(), cfg, build.clone()),
        rounds,
        eval_every,
        "Tangle",
        None,
        false,
    );
    let logs = vec![fedavg_log, tangle_log];
    print_series_table(
        "Fig. 4: Shakespeare next-char accuracy, 10 nodes/round",
        &logs,
    );
    write_json(&opts.out, "fig4", &logs);
}
