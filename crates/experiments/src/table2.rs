//! Table II: effect of tangle hyperparameters on convergence speed —
//! rounds needed to reach 70% of the reference (FedAvg) accuracy, swept
//! over `n_tips × sample_size × reference_avg`.

use crate::common::{run_fedavg, run_tangle, sim_config, write_json, Opts, Scale};
use crate::presets;
use fedavg::FedAvgConfig;
use learning_tangle::metrics::rounds_to_reach;
use learning_tangle::{Simulation, TangleHyperParams};

/// Run the Table II sweep.
pub fn run(opts: &Opts) {
    // Finer evaluation stride than Fig. 3, since the metric is a crossing
    // round.
    let (cap, _) = presets::convergence_rounds(opts.scale);
    let cap = opts.rounds.unwrap_or(cap);
    let eval_every = 4;
    let nodes = match opts.scale {
        Scale::Scaled => 20,
        Scale::Paper => 35,
    };
    let mut fcfg = presets::femnist_cfg(opts.scale);
    if opts.scale == Scale::Scaled {
        fcfg.users = 60; // smaller population keeps the 24-run sweep fast
    }
    let data = feddata::femnist::generate(&fcfg, opts.seed);
    println!("dataset: {}", data.summary());
    let lr = presets::femnist_lr(opts.scale);
    let build = presets::femnist_model(opts.scale, opts.seed ^ 0x7AB2);

    // Reference: FedAvg's accuracy after the same budget.
    let fedavg_log = run_fedavg(
        &data,
        FedAvgConfig {
            nodes_per_round: nodes,
            local_epochs: 1,
            lr,
            batch_size: 16,
            seed: opts.seed,
            aggregator: fedavg::Aggregator::Mean,
        },
        build.clone(),
        cap,
        eval_every,
        0.1,
        "FedAvg-reference",
        true,
    );
    let ref_acc = fedavg_log.final_accuracy().expect("fedavg ran");
    let threshold = 0.7 * ref_acc;
    println!("FedAvg reference accuracy {ref_acc:.3} -> threshold {threshold:.3}");

    let tip_options = [2usize, 3];
    let sample_mults = [1usize, 2, 5];
    let ref_options = [1usize, 2, 10, 50];
    let mut logs = Vec::new();
    let mut table: Vec<Vec<Option<u64>>> = Vec::new();
    for &n in &tip_options {
        for &m in &sample_mults {
            let mut row = Vec::new();
            for &r in &ref_options {
                let hyper = TangleHyperParams {
                    num_tips: n,
                    sample_size: n * m,
                    reference_avg: r,
                    confidence_samples: nodes,
                    alpha: 0.5,
                    confidence_mode: learning_tangle::ConfidenceMode::WalkHit,
                    tip_validation: m > 1,
                    window: None,
                    accuracy_bias: 0.0,
                    parallel_walks: true,
                };
                let label = format!("tips{n}-sample{}-ref{r}", n * m);
                let (log, _) = run_tangle(
                    Simulation::new(
                        data.clone(),
                        sim_config(nodes, lr, opts.seed, hyper),
                        build.clone(),
                    ),
                    cap,
                    eval_every,
                    &label,
                    None,
                    true,
                );
                let rounds = rounds_to_reach(&log, threshold);
                println!(
                    "  {label:<24} -> {}",
                    rounds
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| format!(">{cap}"))
                );
                row.push(rounds);
                logs.push(log);
            }
            table.push(row);
        }
    }

    println!("\n=== Table II: rounds to reach 70% of reference accuracy ===");
    println!(
        "{:<10} {:<12} {:>8} {:>8} {:>8} {:>8}",
        "# tips", "sample", "ref=1", "ref=2", "ref=10", "ref=50"
    );
    let mut i = 0;
    for &n in &tip_options {
        for &m in &sample_mults {
            print!("{:<10} {:<12}", n, format!("{}n = {}", m, n * m));
            for cell in &table[i] {
                match cell {
                    Some(r) => print!(" {r:>8}"),
                    None => print!(" {:>8}", format!(">{cap}")),
                }
            }
            println!();
            i += 1;
        }
    }
    write_json(&opts.out, "table2", &logs);
}
