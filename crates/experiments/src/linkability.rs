//! Extension experiment: update linkability and the differential-privacy
//! mitigation (paper §III-D / reference \[6\]).
//!
//! The paper leaves "the relatedness of transactions published by the same
//! participant" to future work and points to DP noise as the mitigation.
//! We run the measurement: train a tangle, then (a) quantify how much more
//! similar same-issuer updates are than cross-issuer ones and (b) run the
//! linkability attack (nearest-update issuer guessing) — swept over the DP
//! noise level.

use crate::common::{sim_config, Opts};
use learning_tangle::dp::DpConfig;
use learning_tangle::privacy::{linkability_attack_accuracy, linkability_report};
use learning_tangle::{Simulation, TangleHyperParams};

/// Run the linkability sweep.
pub fn run(opts: &Opts) {
    let data = feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users: 16,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            label_skew_alpha: Some(0.3), // strong skew = strong per-node signature
            ..feddata::blobs::BlobsConfig::default()
        },
        opts.seed,
    );
    println!("dataset: {}", data.summary());
    let build = || tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(5));
    let rounds = opts.rounds.unwrap_or(40);
    println!(
        "\n{:<14} {:>12} {:>12} {:>9} {:>14} {:>10}",
        "dp-sigma", "same-issuer", "cross-issuer", "signal", "attack-acc", "accuracy"
    );
    let chance = 1.0 / data.num_clients() as f32;
    for sigma in [0.0f32, 0.001, 0.01, 0.05] {
        let hyper = TangleHyperParams {
            confidence_samples: 8,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        };
        let mut sim = Simulation::new(data.clone(), sim_config(8, 0.15, opts.seed, hyper), build);
        if sigma > 0.0 {
            sim = sim.with_dp(DpConfig {
                clip_norm: 10.0,
                sigma,
            });
        }
        for _ in 0..rounds {
            sim.round();
        }
        let report = linkability_report(sim.tangle());
        let (attack, decisions) = linkability_attack_accuracy(sim.tangle());
        let acc = sim.evaluate(0).accuracy;
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>9.3} {:>8.3} ({:>3}) {:>10.3}",
            format!("{sigma}"),
            report.same_issuer_mean,
            report.cross_issuer_mean,
            report.signal(),
            attack,
            decisions,
            acc
        );
    }
    println!("(attack chance level ≈ {chance:.3}; higher sigma should push attack-acc toward it)");
}
