//! Fig. 2: the structure of a live learning tangle — genesis, consensus
//! (approved by all tips), tips, and pending transactions — exported as a
//! Graphviz DOT file.

use crate::common::{sim_config, Opts};
use feddata::blobs::BlobsConfig;
use learning_tangle::{Simulation, TangleHyperParams};
use std::io::Write as _;
use tangle_ledger::analysis::{ConsensusView, TxClass};

/// Build a small tangle and report its Fig. 2 classification.
pub fn run(opts: &Opts) {
    let data = feddata::blobs::generate(
        &BlobsConfig {
            users: 12,
            samples_per_user: (20, 30),
            ..BlobsConfig::default()
        },
        opts.seed,
    );
    let build = || tinynn::zoo::mlp(8, &[12], 4, &mut tinynn::rng::seeded(5));
    let hyper = TangleHyperParams {
        confidence_samples: 8,
        ..TangleHyperParams::basic()
    };
    let mut sim = Simulation::new(data, sim_config(5, 0.15, opts.seed, hyper), build);
    let rounds = opts.rounds.unwrap_or(12);
    for _ in 0..rounds {
        sim.round();
    }
    let view = ConsensusView::compute(sim.tangle());
    let count = |class: TxClass| view.classes.iter().filter(|c| **c == class).count();
    println!("\n=== Fig. 2: tangle structure after {rounds} rounds ===");
    println!("transactions : {}", sim.tangle().len());
    println!("genesis      : {}", count(TxClass::Genesis));
    println!(
        "confirmed    : {} (approved by all tips — dark gray)",
        count(TxClass::Confirmed)
    );
    println!("tips         : {} (light gray)", count(TxClass::Tip));
    println!("pending      : {} (white)", count(TxClass::Pending));
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let path = opts.out.join("fig2.dot");
    let mut f = std::fs::File::create(&path).expect("create dot file");
    f.write_all(tangle_ledger::dot::to_dot(sim.tangle()).as_bytes())
        .expect("write dot");
    println!("wrote {} (render with `dot -Tpng`)", path.display());
}
