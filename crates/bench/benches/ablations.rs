//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! cost of the §III-E defense, walk randomness extremes, serial vs
//! rayon-parallel gradient accumulation, and reference-averaging width.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use learning_tangle::TangleHyperParams;
use lt_bench::bench_simulation;
use std::hint::black_box;
use tinynn::rng::seeded;
use tinynn::Tensor;

/// Defense cost: a §III-E round validates up to `sample_size` candidate
/// models per node — measure the overhead against the basic algorithm.
fn bench_defense_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_defense_cost");
    g.sample_size(10);
    for (name, validation, sample) in [
        ("round_basic_no_validation", false, 2usize),
        ("round_defended_sample12", true, 12),
    ] {
        let h = TangleHyperParams {
            num_tips: 2,
            sample_size: sample,
            reference_avg: 5,
            confidence_samples: 6,
            alpha: 0.5,
            confidence_mode: learning_tangle::ConfidenceMode::WalkHit,
            tip_validation: validation,
            window: None,
            accuracy_bias: 0.0,
            parallel_walks: true,
        };
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = bench_simulation(12, 6, h);
                    for _ in 0..5 {
                        sim.round();
                    }
                    sim
                },
                |mut sim| black_box(sim.round().published),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Walk randomness: α = 0 explores everything, α → ∞ is greedy. The walk
/// cost itself should be flat; this guards against accidental slow paths.
fn bench_alpha(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_alpha");
    g.sample_size(20);
    use rand::SeedableRng;
    use tangle_ledger::walk::RandomWalk;
    // A wide synthetic tangle with many forks.
    let mut t = tangle_ledger::Tangle::new(0u32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
    use rand::RngExt;
    for i in 0..600u32 {
        let tips = t.tips();
        let a = tips[rng.random_range(0..tips.len())];
        let b = tips[rng.random_range(0..tips.len())];
        t.add(i, vec![a, b]).unwrap();
    }
    let w = tangle_ledger::analysis::cumulative_weights(&t);
    for alpha in [0.0, 0.5, 10.0] {
        g.bench_function(format!("walk_alpha_{alpha}"), |b| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
            let walk = RandomWalk::new(alpha);
            b.iter(|| black_box(walk.select_tip_with_weights(&t, &w, &mut rng)))
        });
    }
    g.finish();
}

/// Serial vs rayon data-parallel gradient accumulation on the scaled CNN.
fn bench_parallel_gradients(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel_gradients");
    g.sample_size(10);
    let mut rng = seeded(1);
    let model = tinynn::zoo::femnist_cnn(16, 10, tinynn::zoo::CnnConfig::scaled(), &mut rng);
    let x = Tensor::from_fn(&[32, 1, 16, 16], |i| ((i * 13 % 89) as f32) / 89.0);
    let y: Vec<u32> = (0..32).map(|i| (i % 10) as u32).collect();
    g.bench_function("serial_b32", |b| {
        b.iter(|| black_box(model.loss_and_grads(&x, &y)))
    });
    for chunks in [2usize, 4, 8] {
        g.bench_function(format!("parallel_{chunks}chunks_b32"), |b| {
            b.iter(|| black_box(model.loss_and_grads_parallel(&x, &y, chunks)))
        });
    }
    g.finish();
}

/// Reference-averaging width (Table II column dimension): consensus
/// extraction cost for top-1 vs top-10 vs top-50.
fn bench_reference_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_reference_width");
    g.sample_size(10);
    for width in [1usize, 10, 50] {
        let h = TangleHyperParams {
            reference_avg: width,
            confidence_samples: 6,
            ..TangleHyperParams::basic()
        };
        g.bench_function(format!("consensus_top{width}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = bench_simulation(12, 6, h);
                    for _ in 0..8 {
                        sim.round();
                    }
                    sim
                },
                |sim| black_box(sim.consensus_params().len()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Windowed vs genesis-rooted tip selection on a deep tangle (§IV): the
/// windowed walk touches O(window) transactions instead of O(depth).
fn bench_windowed_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_windowed_walk");
    use rand::RngExt;
    use rand::SeedableRng;
    use tangle_ledger::walk::{RandomWalk, WindowedWalk};
    // A deep, narrow tangle: 2000 rounds of 2 transactions.
    let mut t = tangle_ledger::Tangle::new(0u32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
    for i in 0..2000u32 {
        let tips = t.tips();
        let a = tips[rng.random_range(0..tips.len())];
        let b = tips[rng.random_range(0..tips.len())];
        t.add(2 * i, vec![a, b]).unwrap();
        let tips = t.tips();
        let a = tips[rng.random_range(0..tips.len())];
        t.add(2 * i + 1, vec![a]).unwrap();
    }
    let w = tangle_ledger::analysis::cumulative_weights(&t);
    let d = tangle_ledger::analysis::depths(&t);
    let walk = RandomWalk::new(0.05);
    g.bench_function("from_genesis_depth4000", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        b.iter(|| black_box(walk.select_tip_with_weights(&t, &w, &mut rng)))
    });
    g.bench_function("windowed_w16", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let ww = WindowedWalk::new(walk, 16);
        b.iter(|| black_box(ww.select_tip_with_weights(&t, &w, &d, &mut rng)))
    });
    g.finish();
}

/// Robust aggregation rules vs the plain mean (server-side BFT cost).
fn bench_aggregators(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_aggregators");
    g.sample_size(10);
    use fedavg::Aggregator;
    use tinynn::ParamVec;
    let updates: Vec<ParamVec> = (0..20)
        .map(|i| ParamVec((0..20_000).map(|j| ((i * j) % 17) as f32 * 0.1).collect()))
        .collect();
    let refs: Vec<&ParamVec> = updates.iter().collect();
    let weights = vec![1.0f32; refs.len()];
    for (name, rule) in [
        ("mean", Aggregator::Mean),
        ("krum_f4", Aggregator::Krum { f: 4 }),
        ("multikrum_f4_m8", Aggregator::MultiKrum { f: 4, m: 8 }),
        ("median", Aggregator::Median),
        ("trimmed_mean_20", Aggregator::TrimmedMean { beta: 0.2 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(rule.aggregate(&refs, &weights)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_defense_cost,
    bench_alpha,
    bench_parallel_gradients,
    bench_reference_width,
    bench_windowed_walk,
    bench_aggregators
);
criterion_main!(benches);
