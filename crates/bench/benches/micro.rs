//! Micro-benchmarks of the hot paths: tangle analysis, tip selection,
//! parameter aggregation, the wire codec, and training steps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use tangle_ledger::analysis::{cumulative_weights, ratings, TangleAnalysis};
use tangle_ledger::walk::RandomWalk;
use tangle_ledger::Tangle;
use tinynn::rng::seeded;
use tinynn::{ParamVec, Tensor};

/// A synthetic tangle shaped like a learning run: `rounds` layers of
/// `width` transactions, each approving two random current tips.
fn synthetic_tangle(rounds: usize, width: usize) -> Tangle<u32> {
    let mut t = Tangle::new(0u32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    use rand::RngExt;
    for r in 0..rounds {
        let tips = t.tips();
        for w in 0..width {
            let a = tips[rng.random_range(0..tips.len())];
            let b = tips[rng.random_range(0..tips.len())];
            t.add((r * width + w) as u32, vec![a, b]).unwrap();
        }
    }
    t
}

fn bench_tangle_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("tangle_analysis");
    for (rounds, width) in [(20, 10), (50, 35)] {
        let t = synthetic_tangle(rounds, width);
        let n = t.len();
        g.bench_function(format!("cumulative_weights_{n}tx"), |b| {
            b.iter(|| black_box(cumulative_weights(&t)))
        });
        g.bench_function(format!("ratings_{n}tx"), |b| {
            b.iter(|| black_box(ratings(&t)))
        });
        let analysis = TangleAnalysis::compute(&t);
        let walk = RandomWalk::default();
        g.bench_function(format!("walk_confidence_35samples_{n}tx"), |b| {
            b.iter(|| black_box(analysis.walk_confidence(&t, &walk, 35, 7)))
        });
        g.bench_function(format!("tip_selection_walk_{n}tx"), |b| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
            b.iter(|| {
                black_box(walk.select_tip_with_weights(&t, &analysis.cumulative_weight, &mut rng))
            })
        });
    }
    g.finish();
}

fn bench_analysis_cache(c: &mut Criterion) {
    use tangle_ledger::{AnalysisCache, RefreshOutcome};
    let mut g = c.benchmark_group("analysis_cache");
    g.sample_size(20);
    for (rounds, width) in [(200, 50), (1000, 50)] {
        let t = synthetic_tangle(rounds, width);
        let n = t.len();
        // Cached-vs-fresh equivalence: the incrementally maintained DP
        // tables must match a from-scratch analysis exactly.
        let cache = AnalysisCache::new(&t);
        let fresh = TangleAnalysis::compute(&t);
        assert_eq!(cache.weights(), fresh.cumulative_weight.as_slice());
        assert_eq!(cache.ratings(), fresh.rating.as_slice());
        assert_eq!(cache.depths().to_vec(), tangle_ledger::analysis::depths(&t));
        // A cache synced one simulator round (10 publishers) ago: refresh
        // must extend incrementally, never rebuild.
        let lag = 10;
        let stale = AnalysisCache::new(&t.prefix(n - lag));
        {
            let mut probe = stale.clone();
            assert!(matches!(
                probe.refresh(&t),
                RefreshOutcome::Extended(k) if k == lag
            ));
        }
        g.bench_function(format!("incremental_refresh_{lag}new_{n}tx"), |b| {
            b.iter_batched(
                || stale.clone(),
                |mut c2| {
                    c2.refresh(&t);
                    black_box(c2.len())
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("full_rebuild_{n}tx"), |b| {
            b.iter(|| black_box(AnalysisCache::new(&t).len()))
        });
        // Pin the speedup at the 50k scale: the incremental refresh (which
        // pays a full cache clone *plus* the catch-up) must still be ≥5×
        // faster than rebuilding the DP tables from scratch. Median of 9
        // trials keeps this robust in `--test` smoke runs.
        if n > 40_000 {
            let median = |f: &mut dyn FnMut()| {
                let mut samples: Vec<_> = (0..9)
                    .map(|_| {
                        let start = std::time::Instant::now();
                        f();
                        start.elapsed()
                    })
                    .collect();
                samples.sort();
                samples[4]
            };
            let rebuild = median(&mut || {
                black_box(AnalysisCache::new(&t).len());
            });
            let refresh = median(&mut || {
                let mut c2 = stale.clone();
                c2.refresh(&t);
                black_box(c2.len());
            });
            assert!(
                refresh * 5 <= rebuild,
                "incremental refresh must be >=5x faster than a full rebuild \
                 at {n} tx: refresh {refresh:?} vs rebuild {rebuild:?}"
            );
        }
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [64usize, 128] {
        let a = Tensor::from_fn(&[n, n], |i| ((i * 37 % 101) as f32) / 101.0);
        let bm = Tensor::from_fn(&[n, n], |i| ((i * 53 % 89) as f32) / 89.0);
        // The blocked/packed kernel behind every variant must agree with
        // the retained naive reference bit-for-bit on the benched shapes.
        for (ta, tb, got) in [
            (false, false, a.matmul(&bm)),
            (false, true, a.matmul_bt(&bm)),
            (true, false, a.matmul_at(&bm)),
        ] {
            let mut want = vec![0.0f32; n * n];
            tinynn::gemm::reference::matmul(
                n,
                n,
                n,
                a.as_slice(),
                ta,
                bm.as_slice(),
                tb,
                &mut want,
            );
            assert_eq!(
                got.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "blocked gemm (ta={ta}, tb={tb}) diverged from naive at {n}x{n}"
            );
        }
        g.bench_function(format!("matmul_{n}x{n}"), |b| {
            b.iter(|| black_box(a.matmul(&bm)))
        });
        g.bench_function(format!("matmul_bt_{n}x{n}"), |b| {
            b.iter(|| black_box(a.matmul_bt(&bm)))
        });
        g.bench_function(format!("matmul_at_{n}x{n}"), |b| {
            b.iter(|| black_box(a.matmul_at(&bm)))
        });
        // Transpose-variant parity probe: packing normalizes the access
        // pattern, so B-transposed must stay within 1.5× of plain (the old
        // naive bt walked B column-wise and was ~4× slower). Median of 9.
        if n == 128 {
            let median = |f: &mut dyn FnMut()| {
                let mut samples: Vec<_> = (0..9)
                    .map(|_| {
                        let start = std::time::Instant::now();
                        for _ in 0..8 {
                            f();
                        }
                        start.elapsed()
                    })
                    .collect();
                samples.sort();
                samples[4]
            };
            let plain = median(&mut || {
                black_box(a.matmul(&bm));
            });
            let bt = median(&mut || {
                black_box(a.matmul_bt(&bm));
            });
            assert!(
                bt <= plain * 3 / 2,
                "matmul_bt must stay within 1.5x of matmul at {n}x{n}: \
                 bt {bt:?} vs plain {plain:?}"
            );
        }
    }
    g.finish();
}

/// Shared setup for the node-step / eval-cache workloads: a 50-node blobs
/// federation learning over the tangle with tip validation on.
fn eval_workload_cfg() -> learning_tangle::SimConfig {
    learning_tangle::SimConfig {
        nodes_per_round: 5,
        lr: 0.15,
        local_epochs: 1,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.2,
        seed: 9,
        hyper: learning_tangle::TangleHyperParams {
            sample_size: 6,
            confidence_samples: 4,
            tip_validation: true,
            accuracy_bias: 0.5,
            ..learning_tangle::TangleHyperParams::basic()
        },
        network: None,
    }
}

fn eval_workload_data() -> feddata::FederatedDataset {
    feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users: 50,
            samples_per_user: (24, 32),
            // Validation-heavy split: local evaluation is the hot path this
            // workload measures, mirroring §III-E where tip validation on
            // held-out data dominates node cost.
            train_split: 0.3,
            noise_std: 0.6,
            ..feddata::blobs::BlobsConfig::default()
        },
        41,
    )
}

fn bench_node_step(c: &mut Criterion) {
    use learning_tangle::node::{node_step, RoundContext};
    let mut g = c.benchmark_group("node_step");
    g.sample_size(10);
    let data = eval_workload_data();
    let cfg = eval_workload_cfg();
    let build = || tinynn::zoo::mlp(8, &[12], 4, &mut seeded(5));
    // Grow a representative tangle, then time single node steps against a
    // fixed round context.
    let mut sim = learning_tangle::Simulation::new(data.clone(), cfg.clone(), build);
    for _ in 0..30 {
        sim.round();
    }
    let nodes: Vec<learning_tangle::Node> = data
        .clients
        .into_iter()
        .enumerate()
        .map(|(i, c)| learning_tangle::Node::honest(i, c))
        .collect();
    let ctx = RoundContext::build(sim.tangle(), &cfg, 31, 0xBEEF);
    g.bench_function("honest_step_tip_validation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = seeded(i);
            black_box(node_step(
                &nodes[(i % 50) as usize],
                &ctx,
                &build,
                &cfg,
                &mut rng,
            ))
        })
    });
    g.finish();
}

fn bench_eval_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_cache");
    g.sample_size(3);
    let data = eval_workload_data();
    let cfg = eval_workload_cfg();
    let build = || tinynn::zoo::mlp(8, &[12], 4, &mut seeded(5));
    const ROUNDS: usize = 100;
    let run = |cached: bool| {
        let tel = lt_telemetry::Telemetry::new(lt_telemetry::NoopSink);
        let mut sim = learning_tangle::Simulation::new(data.clone(), cfg.clone(), build)
            .with_eval_cache(cached)
            .with_telemetry(tel.clone());
        let stats: Vec<learning_tangle::RoundStats> = (0..ROUNDS).map(|_| sim.round()).collect();
        (stats, sim.evaluate(0).accuracy, tel)
    };
    // Equivalence: the memoized run must be byte-identical to the plain
    // one — same RoundStats, same consensus accuracy — while actually
    // serving from the cache.
    let (stats_on, acc_on, tel_on) = run(true);
    let (stats_off, acc_off, tel_off) = run(false);
    assert_eq!(stats_on, stats_off, "RoundStats must match cache on/off");
    assert_eq!(
        acc_on.to_bits(),
        acc_off.to_bits(),
        "accuracy must be bit-identical cache on/off"
    );
    assert!(
        tel_on.counter_value("eval_cache.hits") > 0,
        "the cached run must hit"
    );
    assert_eq!(tel_off.counter_value("eval_cache.hits"), 0);
    g.bench_function(format!("sim_{ROUNDS}r_50n_cached"), |b| {
        b.iter(|| black_box(run(true).1))
    });
    g.bench_function(format!("sim_{ROUNDS}r_50n_uncached"), |b| {
        b.iter(|| black_box(run(false).1))
    });
    // Pin the speedup: median of 3 full runs each way must show the
    // memoized path >=3x faster on this 50-node / 100-round workload.
    let median = |f: &mut dyn FnMut()| {
        let mut samples: Vec<_> = (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                f();
                start.elapsed()
            })
            .collect();
        samples.sort();
        samples[1]
    };
    let cached = median(&mut || {
        black_box(run(true).1);
    });
    let uncached = median(&mut || {
        black_box(run(false).1);
    });
    assert!(
        cached * 3 <= uncached,
        "eval cache must be >=3x faster on the 50-node/{ROUNDS}-round \
         tip-validation workload: cached {cached:?} vs uncached {uncached:?}"
    );
    g.finish();
}

fn bench_param_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("param_aggregation");
    for dim in [10_000usize, 100_000] {
        let vs: Vec<ParamVec> = (0..10)
            .map(|i| ParamVec(vec![i as f32 * 0.1; dim]))
            .collect();
        let refs: Vec<&ParamVec> = vs.iter().collect();
        g.bench_function(format!("average_10x{dim}"), |b| {
            b.iter(|| black_box(ParamVec::average(&refs)))
        });
        let weights = vec![1.0f32; 10];
        g.bench_function(format!("weighted_average_10x{dim}"), |b| {
            b.iter(|| black_box(ParamVec::weighted_average(&refs, &weights)))
        });
    }
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let p = ParamVec((0..50_000).map(|i| i as f32).collect());
    g.bench_function("encode_50k", |b| {
        b.iter(|| black_box(tinynn::wire::encode(&p)))
    });
    let enc = tinynn::wire::encode(&p);
    g.bench_function("decode_50k", |b| {
        b.iter(|| black_box(tinynn::wire::decode(&enc).unwrap()))
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(20);
    // CNN train step at experiment scale
    let mut rng = seeded(1);
    let cnn = tinynn::zoo::femnist_cnn(16, 10, tinynn::zoo::CnnConfig::scaled(), &mut rng);
    let x = Tensor::from_fn(&[16, 1, 16, 16], |i| ((i * 31 % 97) as f32) / 97.0);
    let y: Vec<u32> = (0..16).map(|i| (i % 10) as u32).collect();
    // The pooled chunked path must be bit-identical to serial chunked
    // execution — `parallel` is an execution strategy, not a numerics knob.
    {
        let (lp, gp) = cnn.loss_and_grads_chunked(&x, &y, 4, true);
        let (ls, gs) = cnn.loss_and_grads_chunked(&x, &y, 4, false);
        assert_eq!(lp.to_bits(), ls.to_bits(), "parallel loss diverged");
        let fp = tinynn::gradcheck::flatten_grads(&gp);
        let fs = tinynn::gradcheck::flatten_grads(&gs);
        assert_eq!(fp.len(), fs.len());
        for (i, (a, b)) in fp.iter().zip(&fs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "parallel grad {i} diverged");
        }
    }
    g.bench_function("cnn_loss_and_grads_b16", |b| {
        b.iter(|| black_box(cnn.loss_and_grads(&x, &y)))
    });
    g.bench_function("cnn_loss_and_grads_parallel_b16", |b| {
        b.iter(|| black_box(cnn.loss_and_grads_parallel(&x, &y, 4)))
    });
    // On a machine with real parallelism the pooled run must actually
    // scale: ≥2× over serial chunked execution with ≥4 workers. Guarded so
    // single-core CI boxes still run the equivalence assert above.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        let median = |f: &mut dyn FnMut()| {
            let mut samples: Vec<_> = (0..9)
                .map(|_| {
                    let start = std::time::Instant::now();
                    f();
                    start.elapsed()
                })
                .collect();
            samples.sort();
            samples[4]
        };
        let serial = median(&mut || {
            black_box(cnn.loss_and_grads_chunked(&x, &y, 4, false));
        });
        let parallel = median(&mut || {
            black_box(cnn.loss_and_grads_chunked(&x, &y, 4, true));
        });
        assert!(
            parallel * 2 <= serial,
            "parallel training must be >=2x faster than serial on {cores} \
             cores: parallel {parallel:?} vs serial {serial:?}"
        );
    }
    // LSTM train step
    let lstm = tinynn::zoo::char_lstm(30, 8, 32, 2, &mut rng);
    let xs = Tensor::from_fn(&[8, 16], |i| (i % 30) as f32);
    let ys: Vec<u32> = (0..8 * 16).map(|i| (i % 30) as u32).collect();
    g.bench_function("lstm_loss_and_grads_b8xT16", |b| {
        b.iter(|| black_box(lstm.loss_and_grads(&xs, &ys)))
    });
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    // Hot-path probe: the observed tip-selection walk with a disabled
    // handle must cost the same as the raw walk (one Option check).
    let t = synthetic_tangle(30, 10);
    let analysis = TangleAnalysis::compute(&t);
    let walk = RandomWalk::default();
    let disabled = lt_telemetry::Telemetry::disabled();
    g.bench_function("tip_selection_raw", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        b.iter(|| {
            black_box(walk.select_tip_with_weights(&t, &analysis.cumulative_weight, &mut rng))
        })
    });
    g.bench_function("tip_selection_noop_telemetry", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        b.iter(|| {
            black_box(walk.select_tip_observed(
                &t,
                &analysis.cumulative_weight,
                &mut rng,
                &disabled,
            ))
        })
    });
    // Cache-refresh probe: `refresh_observed` with a disabled handle must
    // cost the same as the raw `refresh` (the counters are never touched).
    let stale = tangle_ledger::AnalysisCache::new(&t.prefix(t.len() - 10));
    g.bench_function("cache_refresh_raw", |b| {
        b.iter_batched(
            || stale.clone(),
            |mut c2| {
                c2.refresh(&t);
                black_box(c2.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cache_refresh_noop_telemetry", |b| {
        b.iter_batched(
            || stale.clone(),
            |mut c2| {
                c2.refresh_observed(&t, &disabled);
                black_box(c2.len())
            },
            BatchSize::SmallInput,
        )
    });
    // Whole-round probe: Simulation::round with the default (disabled)
    // handle vs. an attached no-op sink.
    g.sample_size(10);
    let data = feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users: 8,
            samples_per_user: (24, 32),
            noise_std: 0.6,
            ..feddata::blobs::BlobsConfig::default()
        },
        7,
    );
    let build = || tinynn::zoo::mlp(8, &[12], 4, &mut seeded(5));
    let cfg = learning_tangle::SimConfig {
        nodes_per_round: 4,
        lr: 0.15,
        local_epochs: 1,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed: 3,
        hyper: learning_tangle::TangleHyperParams {
            confidence_samples: 8,
            ..learning_tangle::TangleHyperParams::basic()
        },
        network: None,
    };
    g.bench_function("sim_round_disabled", |b| {
        b.iter_batched(
            || learning_tangle::Simulation::new(data.clone(), cfg.clone(), build),
            |mut sim| {
                for _ in 0..3 {
                    black_box(sim.round());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("sim_round_noop_telemetry", |b| {
        b.iter_batched(
            || {
                learning_tangle::Simulation::new(data.clone(), cfg.clone(), build)
                    .with_telemetry(lt_telemetry::Telemetry::new(lt_telemetry::NoopSink))
            },
            |mut sim| {
                for _ in 0..3 {
                    black_box(sim.round());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fault_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_overhead");
    g.sample_size(20);
    // A faultless FaultPlan must add zero cost to Network::step: the fault
    // RNG is only consulted when a perturbation probability is non-zero,
    // so the benign-plan drain must match the no-plan drain.
    use tangle_gossip::{FaultPlan, Latency, Network, NetworkConfig, Topology, TxMessage};
    let cfg = NetworkConfig {
        topology: Topology::RandomRegular { degree: 4 },
        latency: Latency { min: 1, max: 4 },
        loss: 0.0,
        pow_difficulty: 0,
        seed: 11,
        ..NetworkConfig::default()
    };
    let genesis = TxMessage::create(&ParamVec(vec![0.0]), vec![], u64::MAX, 0, 0);
    let drain = |mut net: Network| {
        for i in 0..40u64 {
            let origin = (i % 16) as usize;
            let tip = net.peer(origin).replica().tips()[0];
            let cid = net.peer(origin).content_id_of(tip);
            net.publish(
                origin,
                TxMessage::create(&ParamVec(vec![i as f32; 64]), vec![cid], i, 0, 0),
            );
            net.run_to_quiescence();
        }
        black_box(net.stats.delivered)
    };
    g.bench_function("network_drain_no_plan", |b| {
        b.iter_batched(
            || Network::new(16, &genesis, cfg),
            drain,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("network_drain_benign_plan", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new(16, &genesis, cfg);
                net.install_faults(FaultPlan::default());
                net
            },
            drain,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pow(c: &mut Criterion) {
    let mut g = c.benchmark_group("proof_of_work");
    g.sample_size(20);
    let payload = tangle_ledger::pow::digest(b"model payload");
    for difficulty in [8u32, 12] {
        g.bench_function(format!("solve_d{difficulty}"), |b| {
            let mut i = 0u64;
            b.iter_batched(
                || {
                    i += 1;
                    payload ^ i
                },
                |p| black_box(tangle_ledger::pow::solve(p, difficulty)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_generation");
    g.sample_size(10);
    let fcfg = feddata::femnist::FemnistConfig::scaled();
    g.bench_function("femnist_scaled_100users", |b| {
        b.iter(|| black_box(feddata::femnist::generate(&fcfg, 1)))
    });
    let scfg = feddata::shakespeare::ShakespeareConfig::scaled();
    g.bench_function("shakespeare_scaled_60users", |b| {
        b.iter(|| black_box(feddata::shakespeare::generate(&scfg, 1)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_tangle_analysis,
    bench_analysis_cache,
    bench_node_step,
    bench_eval_cache,
    bench_param_aggregation,
    bench_wire_codec,
    bench_telemetry_overhead,
    bench_fault_overhead,
    bench_training,
    bench_pow,
    bench_dataset_generation
);
criterion_main!(benches);
