//! One miniature benchmark per paper table/figure: each exercises exactly
//! the code path the corresponding `lt-experiments` subcommand runs at full
//! scale, so `cargo bench` both regression-tests and times the whole
//! reproduction pipeline. (The full-size series are produced by
//! `lt-experiments`, not Criterion — a 200-round sweep is not a benchmark
//! iteration.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use learning_tangle::{assign_malicious, AttackKind, TangleHyperParams};
use lt_bench::{bench_dataset, bench_model, bench_sim_config, bench_simulation};
use std::hint::black_box;
use tangle_ledger::analysis::ConsensusView;

fn hyper(conf: usize) -> TangleHyperParams {
    TangleHyperParams {
        confidence_samples: conf,
        ..TangleHyperParams::basic()
    }
}

/// Table I: dataset characterization (generation + summary statistics).
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let fcfg = feddata::femnist::FemnistConfig {
        users: 20,
        ..feddata::femnist::FemnistConfig::scaled()
    };
    g.bench_function("femnist_generate_and_summarize", |b| {
        b.iter(|| {
            let ds = feddata::femnist::generate(&fcfg, 1);
            black_box((ds.summary(), ds.total_train_samples()))
        })
    });
    g.finish();
}

/// Fig. 2: consensus classification of a grown tangle.
fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    let mut sim = bench_simulation(10, 5, hyper(6));
    for _ in 0..10 {
        sim.round();
    }
    g.bench_function("consensus_view", |b| {
        b.iter(|| black_box(ConsensusView::compute(sim.tangle()).confirmed()))
    });
    g.bench_function("dot_export", |b| {
        b.iter(|| black_box(tangle_ledger::dot::to_dot(sim.tangle())))
    });
    g.finish();
}

/// Fig. 3: one tangle round + evaluation (the unit of the convergence
/// sweep), for both the basic and the optimized hyperparameters.
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for (name, h) in [
        ("tangle_round_basic", hyper(6)),
        (
            "tangle_round_optimized",
            TangleHyperParams {
                confidence_samples: 6,
                ..TangleHyperParams::optimized()
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = bench_simulation(12, 6, h);
                    for _ in 0..4 {
                        sim.round();
                    }
                    sim
                },
                |mut sim| {
                    sim.round();
                    black_box(sim.evaluate(1).accuracy)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("fedavg_round_baseline", |b| {
        b.iter_batched(
            || {
                let data = bench_dataset(12, 3);
                (data, 0)
            },
            |(data, _)| {
                let mut fa = fedavg::FedAvg::new(
                    &data,
                    fedavg::FedAvgConfig {
                        nodes_per_round: 6,
                        lr: 0.15,
                        seed: 1,
                        ..fedavg::FedAvgConfig::default()
                    },
                    bench_model,
                );
                fa.round();
                black_box(fa.evaluate(0.5, 1).1)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Fig. 4: one round of the sequence task (stacked LSTM over the tangle).
fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let data = feddata::shakespeare::generate(
        &feddata::shakespeare::ShakespeareConfig {
            users: 8,
            samples_per_user: (4, 8),
            seq_len: 8,
            vocab: 12,
            ..feddata::shakespeare::ShakespeareConfig::scaled()
        },
        5,
    );
    let build = || tinynn::zoo::char_lstm(12, 4, 8, 2, &mut tinynn::rng::seeded(2));
    g.bench_function("lstm_tangle_round", |b| {
        b.iter_batched(
            || learning_tangle::Simulation::new(data.clone(), bench_sim_config(4, hyper(4)), build),
            |mut sim| {
                sim.round();
                black_box(sim.tangle().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Table II: the metric pipeline — run a short sweep cell and extract the
/// rounds-to-threshold figure.
fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("sweep_cell_tips3_ref10", |b| {
        b.iter_batched(
            || {
                bench_simulation(
                    12,
                    6,
                    TangleHyperParams {
                        num_tips: 3,
                        sample_size: 6,
                        reference_avg: 10,
                        confidence_samples: 6,
                        alpha: 0.5,
                        confidence_mode: learning_tangle::ConfidenceMode::WalkHit,
                        tip_validation: true,
                        window: None,
                        accuracy_bias: 0.0,
                        parallel_walks: true,
                    },
                )
            },
            |mut sim| {
                let mut log = learning_tangle::MetricsLog::new("cell");
                for r in 1..=6u64 {
                    sim.round();
                    if r % 2 == 0 {
                        let ev = sim.evaluate(r);
                        log.push(learning_tangle::metrics::MetricPoint {
                            round: r,
                            accuracy: ev.accuracy,
                            loss: ev.loss,
                            target_misclassification: None,
                            tips: None,
                        });
                    }
                }
                black_box(learning_tangle::rounds_to_reach(&log, 0.5))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Fig. 5: one attacked round (random poisoning, §V-B defense active).
fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("attacked_round_noise_p25", |b| {
        b.iter_batched(
            || {
                let mut sim = bench_simulation(12, 6, TangleHyperParams::robust(6));
                assign_malicious(sim.nodes_mut(), 0.25, 3, AttackKind::RandomNoise, 1, |_| {
                    None
                });
                for _ in 0..4 {
                    sim.round();
                }
                sim
            },
            |mut sim| {
                let stats = sim.round();
                black_box((stats.malicious_published, sim.evaluate(1).accuracy))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Fig. 6: one attacked round (label flip) plus the 6b misclassification
/// metric.
fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("attacked_round_flip_and_6b_metric", |b| {
        b.iter_batched(
            || {
                let mut sim = bench_simulation(12, 6, TangleHyperParams::robust(6));
                let kind = AttackKind::LabelFlip { src: 0, dst: 3 };
                assign_malicious(
                    sim.nodes_mut(),
                    0.2,
                    3,
                    kind,
                    1,
                    learning_tangle::attack::default_flip_source(0, 3),
                );
                for _ in 0..4 {
                    sim.round();
                }
                sim
            },
            |mut sim| {
                sim.round();
                black_box(sim.target_misclassification(0, 3, 1))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_table2,
    bench_fig5,
    bench_fig6
);
criterion_main!(benches);
