//! # lt-bench — benchmark harness helpers
//!
//! The actual benchmarks live in `benches/`:
//! * `micro` — hot-path micro-benchmarks (tangle analysis, walks,
//!   aggregation, codec, train steps, PoW, dataset generation).
//! * `tables_and_figures` — one miniature benchmark per paper table and
//!   figure, exercising exactly the code path the corresponding
//!   `lt-experiments` subcommand runs at full size.
//! * `ablations` — design-choice ablations (defense cost, α extremes,
//!   serial vs parallel gradients, reference-averaging width).
//!
//! This library crate only hosts shared fixtures.

use feddata::blobs::BlobsConfig;
use feddata::FederatedDataset;
use learning_tangle::{SimConfig, Simulation, TangleHyperParams};
use tinynn::Sequential;

/// A small blob dataset shared by the simulation benchmarks.
pub fn bench_dataset(users: usize, seed: u64) -> FederatedDataset {
    feddata::blobs::generate(
        &BlobsConfig {
            users,
            samples_per_user: (16, 24),
            noise_std: 0.7,
            ..BlobsConfig::default()
        },
        seed,
    )
}

/// The MLP used by the simulation benchmarks.
pub fn bench_model() -> Sequential {
    tinynn::zoo::mlp(8, &[12], 4, &mut tinynn::rng::seeded(5))
}

/// A simulation config sized for benchmarking (small confidence sampling).
pub fn bench_sim_config(nodes: usize, hyper: TangleHyperParams) -> SimConfig {
    SimConfig {
        nodes_per_round: nodes,
        lr: 0.15,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed: 9,
        hyper,
        ..SimConfig::default()
    }
}

/// Build a ready-to-run simulation over a fresh dataset.
pub fn bench_simulation(
    users: usize,
    nodes: usize,
    hyper: TangleHyperParams,
) -> Simulation<'static> {
    Simulation::new(
        bench_dataset(users, 3),
        bench_sim_config(nodes, hyper),
        bench_model,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let mut sim = bench_simulation(
            8,
            4,
            TangleHyperParams {
                confidence_samples: 4,
                ..TangleHyperParams::basic()
            },
        );
        let stats = sim.round();
        assert_eq!(stats.sampled, 4);
    }
}
