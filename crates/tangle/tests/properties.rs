//! Property-based tests of the ledger substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use tangle_ledger::analysis::{cumulative_weights, depths, ratings, TangleAnalysis};
use tangle_ledger::walk::{RandomWalk, TipSelector, UniformTips, WindowedWalk};
use tangle_ledger::{Tangle, TxId};

fn tangle_from_script(script: &[(u8, u8)]) -> Tangle<u32> {
    let mut t = Tangle::new(0);
    for (i, &(a, b)) in script.iter().enumerate() {
        let n = t.len() as u32;
        t.add(i as u32 + 1, vec![TxId(a as u32 % n), TxId(b as u32 % n)])
            .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any walk configuration always terminates at a tip.
    #[test]
    fn walks_end_at_tips(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        alpha in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let t = tangle_from_script(&script);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let walk = RandomWalk::new(alpha);
        let tip = walk.select_tip(&t, &mut rng);
        prop_assert!(t.is_tip(tip));
        let tip2 = <UniformTips as TipSelector<u32>>::select_tip(&UniformTips, &t, &mut rng);
        prop_assert!(t.is_tip(tip2));
        let tip3 = WindowedWalk::new(walk, 2).select_tip(&t, &mut rng);
        prop_assert!(t.is_tip(tip3));
    }

    /// Confidence values are probabilities, the genesis has confidence 1,
    /// and flow conservation holds: every walk that visits a transaction
    /// entered through one of its parents, so a child's confidence cannot
    /// exceed the *sum* of its parents' confidences (it can exceed each
    /// individual parent when walk paths merge).
    #[test]
    fn confidence_properties(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30),
        seed in any::<u64>(),
    ) {
        let t = tangle_from_script(&script);
        let analysis = TangleAnalysis::compute(&t);
        let walk = RandomWalk::new(0.2);
        let conf = analysis.walk_confidence(&t, &walk, 48, seed);
        prop_assert!((conf[0] - 1.0).abs() < 1e-6);
        for c in &conf {
            prop_assert!((0.0..=1.0).contains(c));
        }
        for tx in t.transactions().iter().skip(1) {
            let parent_sum: f32 = tx.parents.iter().map(|p| conf[p.index()]).sum();
            prop_assert!(
                conf[tx.id.index()] <= parent_sum + 1e-5,
                "child {} more confident than its parents combined",
                tx.id
            );
        }
    }

    /// Cumulative weight is monotone along approval edges: a parent's
    /// weight strictly exceeds any single child's contribution and is at
    /// least child_weight + ... well, at least as large as any child's.
    #[test]
    fn cumulative_weight_monotone(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40)) {
        let t = tangle_from_script(&script);
        let w = cumulative_weights(&t);
        for tx in t.transactions() {
            for p in &tx.parents {
                prop_assert!(
                    w[p.index()] > w[tx.id.index()] - 1,
                    "parent weight must dominate child"
                );
                prop_assert!(w[p.index()] >= w[tx.id.index()] + 1 - 1); // >= child
            }
        }
        // every weight at least 1 (own weight)
        prop_assert!(w.iter().all(|&x| x >= 1));
    }

    /// Ratings are monotone the other way: children approve strictly more.
    #[test]
    fn rating_monotone(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40)) {
        let t = tangle_from_script(&script);
        let r = ratings(&t);
        for tx in t.transactions() {
            for p in &tx.parents {
                prop_assert!(r[tx.id.index()] > r[p.index()]);
            }
        }
    }

    /// Depth is 0 exactly at tips and parents are strictly deeper.
    #[test]
    fn depth_properties(script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let t = tangle_from_script(&script);
        let d = depths(&t);
        for tx in t.transactions() {
            if t.is_tip(tx.id) {
                prop_assert_eq!(d[tx.id.index()], 0);
            } else {
                prop_assert!(d[tx.id.index()] > 0);
            }
            for p in &tx.parents {
                prop_assert!(d[p.index()] > d[tx.id.index()]);
            }
        }
    }

    /// `prefix(k)` equals the tangle that existed after `k` insertions.
    #[test]
    fn prefix_equals_history(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30), k in 1usize..31) {
        let t = tangle_from_script(&script);
        let k = k.min(t.len());
        let p = t.prefix(k);
        // rebuild directly
        let q = tangle_from_script(&script[..k - 1]);
        prop_assert_eq!(p.len(), q.len());
        prop_assert_eq!(p.tips(), q.tips());
        for i in 0..k {
            let id = TxId(i as u32);
            prop_assert_eq!(&p.get(id).parents, &q.get(id).parents);
            prop_assert_eq!(p.approvers(id), q.approvers(id));
        }
    }

    /// Incremental cumulative weights equal the batch DP on any history.
    #[test]
    fn incremental_weights_equal_batch(script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let mut t = Tangle::new(0u32);
        let mut inc = tangle_ledger::analysis::IncrementalWeights::new(&t);
        for (i, &(a, b)) in script.iter().enumerate() {
            let n = t.len() as u32;
            let id = t
                .add(i as u32 + 1, vec![TxId(a as u32 % n), TxId(b as u32 % n)])
                .unwrap();
            inc.on_add(&t, id);
        }
        let batch = cumulative_weights(&t);
        prop_assert_eq!(inc.weights(), batch.as_slice());
    }

    /// Reference choice returns distinct ids, at most n, ordered by score.
    #[test]
    fn choose_reference_is_sane(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30),
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let t = tangle_from_script(&script);
        let analysis = TangleAnalysis::compute(&t);
        let conf = analysis.walk_confidence(&t, &RandomWalk::new(0.2), 16, seed);
        let top = analysis.choose_reference(&conf, n);
        prop_assert!(top.len() <= n);
        prop_assert!(!top.is_empty());
        let mut dedup = top.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), top.len(), "reference ids must be distinct");
        let score = |id: TxId| conf[id.index()] as f64 * analysis.rating[id.index()] as f64;
        for pair in top.windows(2) {
            prop_assert!(score(pair[0]) >= score(pair[1]) - 1e-9);
        }
    }
}
