//! Property-based tests of the ledger substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use tangle_ledger::analysis::{cumulative_weights, depths, ratings, TangleAnalysis};
use tangle_ledger::walk::{RandomWalk, TipSelector, UniformTips, WindowedWalk};
use tangle_ledger::{Tangle, TxId};

use lt_conformance::gen::tangle_from_script;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any walk configuration always terminates at a tip.
    #[test]
    fn walks_end_at_tips(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        alpha in 0.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let t = tangle_from_script(&script);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let walk = RandomWalk::new(alpha);
        let tip = walk.select_tip(&t, &mut rng);
        prop_assert!(t.is_tip(tip));
        let tip2 = <UniformTips as TipSelector<u32>>::select_tip(&UniformTips, &t, &mut rng);
        prop_assert!(t.is_tip(tip2));
        let tip3 = WindowedWalk::new(walk, 2).select_tip(&t, &mut rng);
        prop_assert!(t.is_tip(tip3));
    }

    /// Confidence values are probabilities, the genesis has confidence 1,
    /// and flow conservation holds: every walk that visits a transaction
    /// entered through one of its parents, so a child's confidence cannot
    /// exceed the *sum* of its parents' confidences (it can exceed each
    /// individual parent when walk paths merge).
    #[test]
    fn confidence_properties(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30),
        seed in any::<u64>(),
    ) {
        let t = tangle_from_script(&script);
        let analysis = TangleAnalysis::compute(&t);
        let walk = RandomWalk::new(0.2);
        let conf = analysis.walk_confidence(&t, &walk, 48, seed);
        prop_assert!((conf[0] - 1.0).abs() < 1e-6);
        for c in &conf {
            prop_assert!((0.0..=1.0).contains(c));
        }
        for tx in t.transactions().iter().skip(1) {
            let parent_sum: f32 = tx.parents.iter().map(|p| conf[p.index()]).sum();
            prop_assert!(
                conf[tx.id.index()] <= parent_sum + 1e-5,
                "child {} more confident than its parents combined",
                tx.id
            );
        }
    }

    /// Cumulative weight is monotone along approval edges: a parent's
    /// weight strictly exceeds any single child's contribution and is at
    /// least child_weight + ... well, at least as large as any child's.
    #[test]
    fn cumulative_weight_monotone(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40)) {
        let t = tangle_from_script(&script);
        let w = cumulative_weights(&t);
        for tx in t.transactions() {
            for p in &tx.parents {
                prop_assert!(
                    w[p.index()] > w[tx.id.index()] - 1,
                    "parent weight must dominate child"
                );
                prop_assert!(w[p.index()] >= w[tx.id.index()] + 1 - 1); // >= child
            }
        }
        // every weight at least 1 (own weight)
        prop_assert!(w.iter().all(|&x| x >= 1));
    }

    /// Ratings are monotone the other way: children approve strictly more.
    #[test]
    fn rating_monotone(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40)) {
        let t = tangle_from_script(&script);
        let r = ratings(&t);
        for tx in t.transactions() {
            for p in &tx.parents {
                prop_assert!(r[tx.id.index()] > r[p.index()]);
            }
        }
    }

    /// Depth is 0 exactly at tips and parents are strictly deeper.
    #[test]
    fn depth_properties(script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let t = tangle_from_script(&script);
        let d = depths(&t);
        for tx in t.transactions() {
            if t.is_tip(tx.id) {
                prop_assert_eq!(d[tx.id.index()], 0);
            } else {
                prop_assert!(d[tx.id.index()] > 0);
            }
            for p in &tx.parents {
                prop_assert!(d[p.index()] > d[tx.id.index()]);
            }
        }
    }

    /// `prefix(k)` equals the tangle that existed after `k` insertions.
    #[test]
    fn prefix_equals_history(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30), k in 1usize..31) {
        let t = tangle_from_script(&script);
        let k = k.min(t.len());
        let p = t.prefix(k);
        // rebuild directly
        let q = tangle_from_script(&script[..k - 1]);
        prop_assert_eq!(p.len(), q.len());
        prop_assert_eq!(p.tips(), q.tips());
        for i in 0..k {
            let id = TxId(i as u32);
            prop_assert_eq!(&p.get(id).parents, &q.get(id).parents);
            prop_assert_eq!(p.approvers(id), q.approvers(id));
        }
    }

    /// Incremental cumulative weights equal the batch DP on any history.
    #[test]
    fn incremental_weights_equal_batch(script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let mut t = Tangle::new(0u32);
        let mut inc = tangle_ledger::analysis::IncrementalWeights::new(&t);
        for (i, &(a, b)) in script.iter().enumerate() {
            let n = t.len() as u32;
            let id = t
                .add(i as u32 + 1, vec![TxId(a as u32 % n), TxId(b as u32 % n)])
                .unwrap();
            inc.on_add(&t, id);
        }
        let batch = cumulative_weights(&t);
        prop_assert_eq!(inc.weights(), batch.as_slice());
    }

    /// Differential test of the tentpole cache: grow a random DAG one tx
    /// at a time and, after *every* insertion, the cache's weights,
    /// ratings, depths, and tips must equal the from-scratch batch DPs.
    #[test]
    fn analysis_cache_equals_batch_after_every_add(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40),
    ) {
        let mut t = Tangle::new(0u32);
        let mut cache = tangle_ledger::AnalysisCache::new(&t);
        for (i, &(a, b)) in script.iter().enumerate() {
            let n = t.len() as u32;
            let id = t
                .add(i as u32 + 1, vec![TxId(a as u32 % n), TxId(b as u32 % n)])
                .unwrap();
            cache.on_add(&t, id).unwrap();
            prop_assert_eq!(cache.weights().to_vec(), cumulative_weights(&t));
            prop_assert_eq!(cache.ratings().to_vec(), ratings(&t));
            prop_assert_eq!(cache.depths().to_vec(), depths(&t));
            prop_assert_eq!(cache.tips(), t.tips());
            prop_assert!(cache.validate(&t).is_ok());
        }
        let fresh = TangleAnalysis::compute(&t);
        let cached = cache.analysis();
        prop_assert_eq!(cached.cumulative_weight, fresh.cumulative_weight);
        prop_assert_eq!(cached.rating, fresh.rating);
    }

    /// Refreshing in random-sized batches (the simulators' usage pattern:
    /// several transactions land between two context builds) is equivalent
    /// to per-add maintenance.
    #[test]
    fn analysis_cache_refresh_equals_batch(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        refresh_every in 1usize..7,
    ) {
        let mut t = Tangle::new(0u32);
        let mut cache = tangle_ledger::AnalysisCache::new(&t);
        for (i, &(a, b)) in script.iter().enumerate() {
            let n = t.len() as u32;
            t.add(i as u32 + 1, vec![TxId(a as u32 % n), TxId(b as u32 % n)])
                .unwrap();
            if i % refresh_every == 0 {
                let appended = t.len() - cache.len();
                let outcome = cache.refresh(&t);
                if appended == 0 {
                    prop_assert_eq!(outcome, tangle_ledger::RefreshOutcome::Fresh);
                } else {
                    prop_assert_eq!(outcome, tangle_ledger::RefreshOutcome::Extended(appended));
                }
            }
        }
        cache.refresh(&t);
        prop_assert_eq!(cache.weights().to_vec(), cumulative_weights(&t));
        prop_assert_eq!(cache.ratings().to_vec(), ratings(&t));
        prop_assert_eq!(cache.depths().to_vec(), depths(&t));
        prop_assert_eq!(cache.tips(), t.tips());
    }

    /// Cache invalidation: skipped or out-of-order ids are rejected with an
    /// error (mirror of `incremental_weights_reject_skipped_adds`), leaving
    /// the cache bit-identical to before the attempt.
    #[test]
    fn analysis_cache_rejects_skips_and_out_of_order(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 2..40),
        probe in any::<u8>(),
    ) {
        let t = tangle_from_script(&script);
        let mut cache = tangle_ledger::AnalysisCache::new(&t.prefix(t.len() - 1));
        let expected = (t.len() - 1) as u32;
        // Any id other than the exactly-next one must be refused.
        let wrong = probe as u32 % (t.len() as u32 + 8);
        prop_assume!(wrong != expected);
        let before = (cache.weights().to_vec(), cache.ratings().to_vec(), cache.depths().to_vec(), cache.tips());
        let err = cache.on_add(&t, TxId(wrong)).unwrap_err();
        match err {
            tangle_ledger::CacheError::OutOfOrder { expected: e, got } => {
                prop_assert_eq!(e, expected);
                prop_assert_eq!(got, wrong);
            }
            other => prop_assert!(false, "unexpected error {:?}", other),
        }
        prop_assert_eq!(
            (cache.weights().to_vec(), cache.ratings().to_vec(), cache.depths().to_vec(), cache.tips()),
            before
        );
        // The exactly-next id is accepted and lands on the batch values.
        cache.on_add(&t, TxId(expected)).unwrap();
        prop_assert_eq!(cache.weights().to_vec(), cumulative_weights(&t));
    }

    /// Cache invalidation: a shorter or diverged tangle never yields stale
    /// values — validate errors and refresh answers with a full rebuild
    /// that matches the batch DPs on the *new* history.
    #[test]
    fn analysis_cache_never_serves_stale_history(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 2..40),
        cut in 1usize..40,
    ) {
        let t = tangle_from_script(&script);
        let mut cache = tangle_ledger::AnalysisCache::new(&t);
        let cut = cut.min(t.len() - 1);
        let shorter = t.prefix(cut);
        prop_assert!(cache.validate(&shorter).is_err());
        prop_assert_eq!(cache.refresh(&shorter), tangle_ledger::RefreshOutcome::Rebuilt);
        prop_assert_eq!(cache.weights().to_vec(), cumulative_weights(&shorter));
        prop_assert_eq!(cache.ratings().to_vec(), ratings(&shorter));
        prop_assert_eq!(cache.depths().to_vec(), depths(&shorter));
        prop_assert_eq!(cache.tips(), shorter.tips());
    }

    /// Reference choice returns distinct ids, at most n, ordered by score.
    #[test]
    fn choose_reference_is_sane(
        script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30),
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let t = tangle_from_script(&script);
        let analysis = TangleAnalysis::compute(&t);
        let conf = analysis.walk_confidence(&t, &RandomWalk::new(0.2), 16, seed);
        let top = analysis.choose_reference(&conf, n);
        prop_assert!(top.len() <= n);
        prop_assert!(!top.is_empty());
        let mut dedup = top.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), top.len(), "reference ids must be distinct");
        let score = |id: TxId| conf[id.index()] as f64 * analysis.rating[id.index()] as f64;
        for pair in top.windows(2) {
            prop_assert!(score(pair[0]) >= score(pair[1]) - 1e-9);
        }
    }
}
