//! # tangle-ledger — an IOTA-style tangle (DAG ledger) substrate
//!
//! This crate implements the distributed-ledger machinery the paper's
//! learning network runs on, independent of machine learning:
//!
//! * [`Tangle`] — an append-only DAG of payload-carrying transactions where
//!   every non-genesis transaction *approves* its parent transactions
//!   (directly, and transitively everything in their past cones).
//! * [`walk`] — tip-selection algorithms: uniform tips, the weighted random
//!   walk from the genesis used by IOTA (with a configurable randomness
//!   parameter α), and a biased walk accepting an external per-transaction
//!   score (the paper §VI outlook: model accuracy as walk bias).
//! * [`analysis`] — consensus machinery: exact past-cone *ratings* and
//!   future-cone *cumulative weights* via bitset dynamic programming,
//!   Monte-Carlo walk *confidence*, and the confidence × rating reference
//!   selection of the paper's Algorithm 1.
//! * [`pow`] — a hashcash proof-of-work gate (the Sybil defense the paper
//!   defers to future work).
//! * [`dot`] — Graphviz export reproducing the paper's Fig. 2 coloring.
//!
//! The tangle is generic over its payload `P`; the learning layer stores
//! `Arc<ParamVec>` model snapshots in it.
//!
//! ```
//! use tangle_ledger::{Tangle, walk::{TipSelector, RandomWalk}};
//! use rand::SeedableRng;
//!
//! // A tiny tangle: genesis plus two transactions approving it.
//! let mut tangle = Tangle::new("genesis");
//! let a = tangle.add("a", vec![tangle.genesis()]).unwrap();
//! let b = tangle.add("b", vec![tangle.genesis(), a]).unwrap();
//! assert_eq!(tangle.tips(), vec![b]);
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let tip = RandomWalk::default().select_tip(&tangle, &mut rng);
//! assert_eq!(tip, b);
//! ```

pub mod analysis;
pub mod bitset;
pub mod dot;
pub mod graph;
pub mod pow;
pub mod view;
pub mod walk;

pub use analysis::{AnalysisCache, CacheError, ConsensusView, RefreshOutcome, TangleAnalysis};
pub use bitset::BitSet;
pub use graph::{Tangle, Transaction, TxError, TxId, TxView};
pub use view::{TangleRead, TangleView};
