//! Hashcash-style proof-of-work.
//!
//! IOTA requires a small proof-of-work per transaction "to prevent
//! adversaries from flooding the network with crafted transactions"
//! (paper §II-C); the paper's prototype leaves this to future work (§IV).
//! This module provides the mechanism so that a deployment of this library
//! can turn the Sybil gate on: a publisher must find a nonce such that the
//! FNV-1a hash of `payload_digest ‖ nonce` has at least `difficulty`
//! leading zero bits.

/// FNV-1a of a byte slice — not cryptographic, but a stand-in with the same
/// interface and uniformity properties needed by the simulation. A real
/// deployment would swap in a cryptographic hash.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn hash_with_nonce(payload_digest: u64, nonce: u64) -> u64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&payload_digest.to_le_bytes());
    buf[8..].copy_from_slice(&nonce.to_le_bytes());
    digest(&buf)
}

/// Find a nonce giving `difficulty` leading zero bits. Expected work is
/// `2^difficulty` hash evaluations.
///
/// # Panics
/// Panics if `difficulty > 63` (practically unreachable work).
pub fn solve(payload_digest: u64, difficulty: u32) -> u64 {
    assert!(difficulty <= 63, "difficulty out of range");
    let mut nonce = 0u64;
    loop {
        if verify(payload_digest, nonce, difficulty) {
            return nonce;
        }
        nonce = nonce.wrapping_add(1);
    }
}

/// Check that `nonce` satisfies `difficulty` for `payload_digest`.
pub fn verify(payload_digest: u64, nonce: u64, difficulty: u32) -> bool {
    hash_with_nonce(payload_digest, nonce).leading_zeros() >= difficulty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_difficulty_always_verifies() {
        assert!(verify(123, 0, 0));
        assert_eq!(solve(123, 0), 0);
    }

    #[test]
    fn solve_then_verify() {
        for d in [4u32, 8, 12] {
            let payload = digest(b"model parameters");
            let nonce = solve(payload, d);
            assert!(verify(payload, nonce, d));
        }
    }

    #[test]
    fn wrong_nonce_usually_fails_high_difficulty() {
        let payload = digest(b"x");
        let nonce = solve(payload, 16);
        // Perturbing the payload invalidates the proof with overwhelming
        // probability at difficulty 16.
        assert!(!verify(payload ^ 1, nonce, 16) || nonce != solve(payload ^ 1, 16));
    }

    #[test]
    fn digest_differs_on_different_input() {
        assert_ne!(digest(b"a"), digest(b"b"));
        assert_eq!(digest(b"a"), digest(b"a"));
    }

    #[test]
    fn difficulty_monotonicity() {
        let payload = digest(b"payload");
        let nonce = solve(payload, 12);
        // A proof at difficulty 12 is also valid at any lower difficulty.
        for d in 0..=12 {
            assert!(verify(payload, nonce, d));
        }
    }
}
