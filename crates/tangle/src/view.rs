//! Read-only access to a tangle, and zero-copy prefix views.
//!
//! [`TangleRead`] abstracts the read surface that analysis, tip selection,
//! and the learning round logic need, so they can run either over a full
//! [`Tangle`] or over a [`TangleView`] — a borrowed, length-bounded view of
//! a tangle's prefix. The view replaces the `Tangle::prefix` clone on the
//! delayed-network hot path: where `prefix(len)` copies `len` transactions
//! (including full model payloads) per node per round, `TangleView::new`
//! is O(1) and reads through to the base ledger.

use crate::graph::{Tangle, Transaction, TxId};

/// Read-only view of an append-only tangle: everything consensus analysis
/// and tip selection need, with no mutation surface.
///
/// Implemented by [`Tangle`] itself (the whole ledger) and by
/// [`TangleView`] (a length-bounded borrowed prefix). Generic consumers —
/// the weight/rating/depth DPs, the random walks, `AnalysisCache`,
/// `TangleAnalysis` — take `T: TangleRead` so the same code serves both.
pub trait TangleRead {
    /// The transaction payload type.
    type Payload;

    /// Number of transactions, including the genesis.
    fn len(&self) -> usize;

    /// Always `false`: a tangle at least contains its genesis.
    fn is_empty(&self) -> bool {
        false
    }

    /// The genesis transaction id (always `TxId(0)`).
    fn genesis(&self) -> TxId {
        TxId(0)
    }

    /// Does `id` exist in this view?
    fn contains(&self, id: TxId) -> bool {
        id.index() < self.len()
    }

    /// Borrow a transaction.
    ///
    /// # Panics
    /// Panics if `id` is outside this view.
    fn get(&self, id: TxId) -> &Transaction<Self::Payload>;

    /// All transactions in insertion (= topological) order.
    fn transactions(&self) -> &[Transaction<Self::Payload>];

    /// Ids of the transactions directly approving `id`, ascending.
    fn approvers(&self, id: TxId) -> &[TxId];

    /// Current tips (unapproved transactions) in ascending id order.
    fn tips(&self) -> Vec<TxId>;

    /// Number of current tips.
    fn tip_count(&self) -> usize;

    /// Is `id` currently a tip?
    fn is_tip(&self, id: TxId) -> bool;

    /// Chained signature of the first `len` transactions (see
    /// [`Tangle::history_sig`]). A prefix view shares its base ledger's
    /// signature chain, so signatures taken through a view remain valid
    /// against the full ledger — this is what lets an `EvalCache` entry
    /// written under a stale view be served under a fresh one.
    ///
    /// # Panics
    /// Panics if `len` is zero or exceeds this view's length.
    fn history_sig(&self, len: usize) -> u64;

    /// The past cone of `id` (its ancestors, excluding itself) in
    /// descending id order.
    fn past_cone(&self, id: TxId) -> Vec<TxId> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<TxId> = self.get(id).parents.clone();
        let mut out = Vec::new();
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            out.push(t);
            stack.extend_from_slice(&self.get(t).parents);
        }
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    }
}

impl<P> TangleRead for Tangle<P> {
    type Payload = P;

    fn len(&self) -> usize {
        Tangle::len(self)
    }

    fn get(&self, id: TxId) -> &Transaction<P> {
        Tangle::get(self, id)
    }

    fn transactions(&self) -> &[Transaction<P>] {
        Tangle::transactions(self)
    }

    fn approvers(&self, id: TxId) -> &[TxId] {
        Tangle::approvers(self, id)
    }

    fn tips(&self) -> Vec<TxId> {
        Tangle::tips(self)
    }

    fn tip_count(&self) -> usize {
        Tangle::tip_count(self)
    }

    fn is_tip(&self, id: TxId) -> bool {
        Tangle::is_tip(self, id)
    }

    fn history_sig(&self, len: usize) -> u64 {
        Tangle::history_sig(self, len)
    }

    fn past_cone(&self, id: TxId) -> Vec<TxId> {
        Tangle::past_cone(self, id)
    }
}

/// A borrowed, zero-copy view of a tangle's first `len` transactions — the
/// ledger as it looked at an earlier point in time (every historical state
/// of an append-only ledger is a prefix).
///
/// Construction is O(1): no transactions, payloads, or approver lists are
/// copied. Approver lists are truncated lazily — they are pushed in
/// ascending child-id order by `Tangle::add_meta`, so the members visible
/// to this view are exactly a `partition_point` prefix of each list — and
/// tips fall out of the truncation (a transaction is a tip of the prefix
/// iff it has no approver below `len`).
///
/// This replaces `Tangle::prefix` (an O(len) deep clone including model
/// payloads) on the delayed-network round hot path; `prefix` remains for
/// callers that need an owned ledger.
pub struct TangleView<'a, P> {
    base: &'a Tangle<P>,
    len: usize,
}

impl<'a, P> TangleView<'a, P> {
    /// View the first `len` transactions of `base`.
    ///
    /// # Panics
    /// Panics if `len` is zero or exceeds the base tangle's length.
    pub fn new(base: &'a Tangle<P>, len: usize) -> Self {
        assert!(
            len >= 1 && len <= Tangle::len(base),
            "view length {len} out of range 1..={}",
            Tangle::len(base)
        );
        Self { base, len }
    }

    /// View the entire base tangle.
    pub fn full(base: &'a Tangle<P>) -> Self {
        Self::new(base, Tangle::len(base))
    }

    /// The underlying full ledger.
    pub fn base(&self) -> &'a Tangle<P> {
        self.base
    }
}

impl<'a, P> Clone for TangleView<'a, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, P> Copy for TangleView<'a, P> {}

impl<'a, P> TangleRead for TangleView<'a, P> {
    type Payload = P;

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, id: TxId) -> &Transaction<P> {
        assert!(
            id.index() < self.len,
            "{id} outside view of length {}",
            self.len
        );
        self.base.get(id)
    }

    fn transactions(&self) -> &[Transaction<P>] {
        &Tangle::transactions(self.base)[..self.len]
    }

    fn approvers(&self, id: TxId) -> &[TxId] {
        assert!(
            id.index() < self.len,
            "{id} outside view of length {}",
            self.len
        );
        let all = self.base.approvers(id);
        // Approver lists are ascending by construction: the visible members
        // are exactly the prefix below the view boundary.
        &all[..all.partition_point(|a| a.index() < self.len)]
    }

    fn tips(&self) -> Vec<TxId> {
        (0..self.len as u32)
            .map(TxId)
            .filter(|&id| TangleRead::is_tip(self, id))
            .collect()
    }

    fn tip_count(&self) -> usize {
        (0..self.len as u32)
            .map(TxId)
            .filter(|&id| TangleRead::is_tip(self, id))
            .count()
    }

    fn is_tip(&self, id: TxId) -> bool {
        id.index() < self.len && TangleRead::approvers(self, id).is_empty()
    }

    fn history_sig(&self, len: usize) -> u64 {
        assert!(
            len >= 1 && len <= self.len,
            "history length {len} out of range 1..={}",
            self.len
        );
        self.base.history_sig(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt as _;
    use rand::SeedableRng;

    /// A pseudo-random tangle: each tx approves 1–2 earlier txs.
    fn random_tangle(n: usize, seed: u64) -> Tangle<u32> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = Tangle::new(0u32);
        for i in 1..n {
            let a = TxId(rng.random_range(0..i as u32));
            let b = TxId(rng.random_range(0..i as u32));
            t.add(i as u32, vec![a, b]).unwrap();
        }
        t
    }

    #[test]
    fn view_matches_prefix_clone_at_every_length() {
        let t = random_tangle(40, 11);
        for len in 1..=t.len() {
            let cloned = t.prefix(len);
            let view = TangleView::new(&t, len);
            assert_eq!(TangleRead::len(&view), cloned.len());
            assert_eq!(TangleRead::tips(&view), cloned.tips(), "len {len}");
            assert_eq!(TangleRead::tip_count(&view), cloned.tip_count());
            for i in 0..len as u32 {
                let id = TxId(i);
                assert_eq!(
                    TangleRead::approvers(&view, id),
                    cloned.approvers(id),
                    "approvers of {id} at len {len}"
                );
                assert_eq!(TangleRead::is_tip(&view, id), cloned.is_tip(id));
                assert_eq!(
                    TangleRead::past_cone(&view, id),
                    cloned.past_cone(id),
                    "past cone of {id} at len {len}"
                );
            }
            assert_eq!(TangleRead::history_sig(&view, len), cloned.history_sig(len));
        }
    }

    #[test]
    fn view_shares_the_base_signature_chain() {
        let t = random_tangle(20, 3);
        let view = TangleView::new(&t, 10);
        for k in 1..=10 {
            assert_eq!(TangleRead::history_sig(&view, k), t.history_sig(k));
        }
    }

    #[test]
    fn full_view_equals_the_tangle() {
        let t = random_tangle(25, 7);
        let view = TangleView::full(&t);
        assert_eq!(TangleRead::len(&view), t.len());
        assert_eq!(TangleRead::tips(&view), t.tips());
        assert_eq!(TangleRead::transactions(&view).len(), t.len());
    }

    #[test]
    fn view_is_zero_copy_for_payload_reads() {
        let t = random_tangle(10, 5);
        let view = TangleView::new(&t, 6);
        // Same allocation: the view reads through to the base ledger.
        assert!(std::ptr::eq(
            TangleRead::get(&view, TxId(3)),
            Tangle::get(&t, TxId(3))
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_length_view_rejected() {
        let t = Tangle::new(0u8);
        TangleView::new(&t, 0);
    }

    #[test]
    #[should_panic(expected = "outside view")]
    fn reads_beyond_the_view_boundary_panic() {
        let t = random_tangle(10, 9);
        let view = TangleView::new(&t, 4);
        TangleRead::get(&view, TxId(7));
    }
}
