//! The append-only tangle DAG.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of a transaction inside one [`Tangle`] — its insertion index.
///
/// Because a transaction can only approve transactions that already exist,
/// insertion order is always a topological order of the DAG: every parent id
/// is strictly smaller than its child's id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u32);

impl TxId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// A transaction in the tangle: a payload plus the parents it approves.
///
/// In the learning tangle the payload is a full set of model parameters
/// (paper §III: "each transaction consists of a full set of parameters for a
/// shared machine learning model").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Transaction<P> {
    /// This transaction's id.
    pub id: TxId,
    /// Directly approved parent transactions (empty only for the genesis).
    /// Duplicates are collapsed at insertion ("two not necessarily distinct
    /// tips" — approving the same tip twice is a single edge).
    pub parents: Vec<TxId>,
    /// Issuing node (opaque to the ledger; used by analysis/attack tooling).
    pub issuer: u64,
    /// Simulation round or wall-clock slot in which this was published.
    pub round: u64,
    /// The carried payload.
    pub payload: P,
}

/// The payload-free structural identity of one transaction: everything
/// that determines ledger semantics (id, issuer, round, parent edges) and
/// nothing model-specific. Produced by [`Tangle::structure`]; ordinary
/// `==` on two views (or view vectors) is the conformance harness's
/// cross-executor comparison.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxView {
    /// Transaction id (insertion index).
    pub id: u32,
    /// Issuing node (`u64::MAX` for the genesis).
    pub issuer: u64,
    /// Round / slot of publication.
    pub round: u64,
    /// Parent ids, sorted and deduplicated (as stored).
    pub parents: Vec<u32>,
}

/// Signature of one transaction's structural identity (id + parent set),
/// used to detect diverged histories without storing them. SplitMix64-style
/// avalanche fold — not cryptographic, but two replicas that restored from
/// different checkpoints will not collide in practice.
pub(crate) fn tx_sig(id: u32, parents: &[TxId]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64 ^ u64::from(id);
    for p in parents {
        let mut z = h
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(p.0) << 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Fold one transaction's signature into a running whole-history
/// signature: `chain_sig(sig(first k txs), tx_k)` = sig of the first
/// `k + 1` txs. Two histories agree on a prefix iff their chained
/// signatures at that length agree (modulo 64-bit collisions) — unlike a
/// tail-only check, interior divergence cannot cancel out.
pub(crate) fn chain_sig(prev: u64, id: u32, parents: &[TxId]) -> u64 {
    let mut z = prev
        .wrapping_add(tx_sig(id, parents))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Errors returned when appending to the tangle.
#[derive(Debug, PartialEq, Eq)]
pub enum TxError {
    /// A parent id does not exist in this tangle.
    UnknownParent(TxId),
    /// A non-genesis transaction must approve at least one parent.
    NoParents,
    /// The tangle is full (`u32` id space exhausted).
    Full,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::UnknownParent(id) => write!(f, "unknown parent {id}"),
            TxError::NoParents => write!(f, "transaction approves no parents"),
            TxError::Full => write!(f, "tangle id space exhausted"),
        }
    }
}

impl std::error::Error for TxError {}

/// An append-only DAG ledger. `tangle.add(payload, parents)` publishes a
/// transaction approving `parents`; [`Tangle::tips`] are the transactions
/// not yet approved by anyone.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tangle<P> {
    txs: Vec<Transaction<P>>,
    /// `approvers[i]` = ids of transactions directly approving `i`.
    approvers: Vec<Vec<TxId>>,
    /// Current tips, kept sorted for determinism.
    tips: BTreeSet<TxId>,
    /// `hist_sigs[i]` = chained signature of the first `i + 1`
    /// transactions (see [`chain_sig`]); lets [`Tangle::history_sig`]
    /// answer "is that cache's history a prefix of mine?" in O(1).
    hist_sigs: Vec<u64>,
}

impl<P> Tangle<P> {
    /// Create a tangle containing only the genesis transaction carrying
    /// `genesis_payload`.
    pub fn new(genesis_payload: P) -> Self {
        let genesis = Transaction {
            id: TxId(0),
            parents: Vec::new(),
            issuer: u64::MAX,
            round: 0,
            payload: genesis_payload,
        };
        let mut tips = BTreeSet::new();
        tips.insert(TxId(0));
        Self {
            txs: vec![genesis],
            approvers: vec![Vec::new()],
            tips,
            hist_sigs: vec![chain_sig(0, 0, &[])],
        }
    }

    /// The genesis transaction id (always `TxId(0)`).
    pub fn genesis(&self) -> TxId {
        TxId(0)
    }

    /// Number of transactions, including the genesis.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Always `false`: a tangle at least contains its genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does `id` exist in this tangle?
    pub fn contains(&self, id: TxId) -> bool {
        id.index() < self.txs.len()
    }

    /// Borrow a transaction.
    ///
    /// # Panics
    /// Panics if `id` is unknown.
    pub fn get(&self, id: TxId) -> &Transaction<P> {
        &self.txs[id.index()]
    }

    /// All transactions in insertion (= topological) order.
    pub fn transactions(&self) -> &[Transaction<P>] {
        &self.txs
    }

    /// Ids of the transactions directly approving `id`.
    pub fn approvers(&self, id: TxId) -> &[TxId] {
        &self.approvers[id.index()]
    }

    /// Current tips (unapproved transactions) in ascending id order.
    pub fn tips(&self) -> Vec<TxId> {
        self.tips.iter().copied().collect()
    }

    /// Number of current tips.
    pub fn tip_count(&self) -> usize {
        self.tips.len()
    }

    /// Is `id` currently a tip?
    pub fn is_tip(&self, id: TxId) -> bool {
        self.tips.contains(&id)
    }

    /// Publish a transaction with default issuer/round metadata.
    pub fn add(&mut self, payload: P, parents: Vec<TxId>) -> Result<TxId, TxError> {
        self.add_meta(payload, parents, u64::MAX, 0)
    }

    /// Publish a transaction carrying `payload`, approving `parents`,
    /// issued by `issuer` during `round`.
    ///
    /// Duplicate parent ids are collapsed. Returns the new id.
    pub fn add_meta(
        &mut self,
        payload: P,
        parents: Vec<TxId>,
        issuer: u64,
        round: u64,
    ) -> Result<TxId, TxError> {
        if parents.is_empty() {
            return Err(TxError::NoParents);
        }
        for &p in &parents {
            if !self.contains(p) {
                return Err(TxError::UnknownParent(p));
            }
        }
        if self.txs.len() > u32::MAX as usize {
            return Err(TxError::Full);
        }
        let mut parents = parents;
        parents.sort_unstable();
        parents.dedup();
        let id = TxId(self.txs.len() as u32);
        for &p in &parents {
            self.approvers[p.index()].push(id);
            self.tips.remove(&p);
        }
        self.tips.insert(id);
        self.hist_sigs
            .push(chain_sig(*self.hist_sigs.last().unwrap(), id.0, &parents));
        self.txs.push(Transaction {
            id,
            parents,
            issuer,
            round,
            payload,
        });
        self.approvers.push(Vec::new());
        Ok(id)
    }

    /// Iterate over the past cone of `id` (its ancestors, excluding itself)
    /// in descending id order.
    pub fn past_cone(&self, id: TxId) -> Vec<TxId> {
        let mut seen = vec![false; self.txs.len()];
        let mut stack: Vec<TxId> = self.get(id).parents.clone();
        let mut out = Vec::new();
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            out.push(t);
            stack.extend_from_slice(&self.get(t).parents);
        }
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    }

    /// Is `ancestor` directly or indirectly approved by `descendant`?
    pub fn approves(&self, descendant: TxId, ancestor: TxId) -> bool {
        if ancestor >= descendant {
            return false;
        }
        let mut seen = vec![false; self.txs.len()];
        let mut stack = vec![descendant];
        while let Some(t) = stack.pop() {
            for &p in &self.get(t).parents {
                if p == ancestor {
                    return true;
                }
                // ids are topological: no parent below `ancestor` can reach it
                if p > ancestor && !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// The tangle as it looked when it held only its first `len`
    /// transactions — a *stale view* of the ledger, as seen by a node whose
    /// network connection lags behind (every historical state of an
    /// append-only ledger is a prefix).
    ///
    /// # Panics
    /// Panics if `len` is zero or exceeds the current length.
    pub fn prefix(&self, len: usize) -> Tangle<P>
    where
        P: Clone,
    {
        assert!(
            len >= 1 && len <= self.txs.len(),
            "prefix length {len} out of range 1..={}",
            self.txs.len()
        );
        let txs: Vec<Transaction<P>> = self.txs[..len].to_vec();
        let mut approvers = vec![Vec::new(); len];
        let mut tips: BTreeSet<TxId> = (0..len as u32).map(TxId).collect();
        for tx in &txs {
            for &p in &tx.parents {
                approvers[p.index()].push(tx.id);
                tips.remove(&p);
            }
        }
        Tangle {
            txs,
            approvers,
            tips,
            hist_sigs: self.hist_sigs[..len].to_vec(),
        }
    }

    /// Chained signature of this ledger's first `len` transactions. Two
    /// tangles agree on their first `len` transactions (ids + parent
    /// edges) iff their signatures at `len` agree — the O(1) staleness
    /// check behind `AnalysisCache::validate`.
    ///
    /// # Panics
    /// Panics if `len` is zero or exceeds the current length.
    pub fn history_sig(&self, len: usize) -> u64 {
        assert!(
            len >= 1 && len <= self.txs.len(),
            "history length {len} out of range 1..={}",
            self.txs.len()
        );
        self.hist_sigs[len - 1]
    }

    /// The payload-free structural identity of this ledger: one
    /// [`TxView`] per transaction, in insertion (= topological) order.
    ///
    /// Two ledgers with equal views hold the same history regardless of
    /// payload type or how they were produced — this is the comparison
    /// key the conformance harness uses to check differential agreement
    /// between executors, and the input format of its abstract reference
    /// model (which replays structure without payloads).
    pub fn structure(&self) -> Vec<TxView> {
        self.txs
            .iter()
            .map(|t| TxView {
                id: t.id.0,
                issuer: t.issuer,
                round: t.round,
                parents: t.parents.iter().map(|p| p.0).collect(),
            })
            .collect()
    }

    /// Map payloads, preserving structure (useful for serialization).
    pub fn map_payload<Q>(&self, mut f: impl FnMut(&P) -> Q) -> Tangle<Q> {
        Tangle {
            txs: self
                .txs
                .iter()
                .map(|t| Transaction {
                    id: t.id,
                    parents: t.parents.clone(),
                    issuer: t.issuer,
                    round: t.round,
                    payload: f(&t.payload),
                })
                .collect(),
            approvers: self.approvers.clone(),
            tips: self.tips.clone(),
            hist_sigs: self.hist_sigs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_only() {
        let t = Tangle::new(0u8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.tips(), vec![TxId(0)]);
        assert!(t.is_tip(t.genesis()));
        assert!(!t.is_empty());
    }

    #[test]
    fn add_updates_tips() {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        assert_eq!(t.tips(), vec![a]);
        let b = t.add(2, vec![t.genesis()]).unwrap();
        // approving the genesis again does not resurrect it as a tip
        assert_eq!(t.tips(), vec![a, b]);
        let c = t.add(3, vec![a, b]).unwrap();
        assert_eq!(t.tips(), vec![c]);
        assert_eq!(t.approvers(t.genesis()), &[a, b]);
    }

    #[test]
    fn duplicate_parents_collapse() {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis(), t.genesis()]).unwrap();
        assert_eq!(t.get(a).parents, vec![TxId(0)]);
        assert_eq!(t.approvers(t.genesis()).len(), 1);
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut t = Tangle::new(0u8);
        assert_eq!(
            t.add(1, vec![TxId(5)]),
            Err(TxError::UnknownParent(TxId(5)))
        );
        assert_eq!(t.add(1, vec![]), Err(TxError::NoParents));
    }

    #[test]
    fn past_cone_and_approves() {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let b = t.add(2, vec![t.genesis()]).unwrap();
        let c = t.add(3, vec![a, b]).unwrap();
        let d = t.add(4, vec![c, b]).unwrap();
        assert_eq!(t.past_cone(d), vec![c, b, a, TxId(0)]);
        assert!(t.approves(d, t.genesis()));
        assert!(t.approves(c, a));
        assert!(!t.approves(a, b));
        assert!(!t.approves(a, d), "approval follows edge direction");
        assert!(!t.approves(a, a), "no self approval");
    }

    #[test]
    fn metadata_recorded() {
        let mut t = Tangle::new(0u8);
        let a = t.add_meta(1, vec![t.genesis()], 42, 7).unwrap();
        let tx = t.get(a);
        assert_eq!(tx.issuer, 42);
        assert_eq!(tx.round, 7);
    }

    #[test]
    fn ids_are_topological() {
        let mut t = Tangle::new(0u8);
        let mut prev = t.genesis();
        for i in 0..10 {
            prev = t.add(i, vec![prev]).unwrap();
        }
        for tx in t.transactions() {
            for p in &tx.parents {
                assert!(*p < tx.id);
            }
        }
    }

    #[test]
    fn prefix_replays_history() {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let snapshot_after_a = t.clone();
        let b = t.add(2, vec![t.genesis(), a]).unwrap();
        let _c = t.add(3, vec![b]).unwrap();
        let p = t.prefix(2);
        assert_eq!(p.len(), snapshot_after_a.len());
        assert_eq!(p.tips(), snapshot_after_a.tips());
        assert_eq!(
            p.approvers(t.genesis()),
            snapshot_after_a.approvers(t.genesis())
        );
        // full prefix equals the tangle itself
        let full = t.prefix(t.len());
        assert_eq!(full.tips(), t.tips());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_zero_rejected() {
        Tangle::new(0u8).prefix(0);
    }

    #[test]
    fn serde_roundtrip_preserves_ledger() {
        let mut t = Tangle::new(7u32);
        let a = t.add_meta(8, vec![t.genesis()], 1, 1).unwrap();
        let b = t.add_meta(9, vec![a, t.genesis()], 2, 2).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let r: Tangle<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(r.len(), t.len());
        assert_eq!(r.tips(), t.tips());
        assert_eq!(r.get(b).parents, t.get(b).parents);
        assert_eq!(r.get(a).payload, 8);
        assert_eq!(r.approvers(t.genesis()), t.approvers(t.genesis()));
    }

    #[test]
    fn map_payload_preserves_structure() {
        let mut t = Tangle::new(1u32);
        let a = t.add(2, vec![t.genesis()]).unwrap();
        let mapped = t.map_payload(|p| p * 10);
        assert_eq!(mapped.get(a).payload, 20);
        assert_eq!(mapped.tips(), t.tips());
    }
}
