//! Consensus analysis: cumulative weights, ratings, confidence, and the
//! paper's Algorithm 1 reference selection.
//!
//! *Rating* follows the paper's definition — "the number of other
//! transactions that [a transaction] directly or indirectly approves", i.e.
//! its past-cone size, with every transaction contributing equally (the
//! prototype ignores IOTA's PoW-weighted own weights).
//!
//! *Confidence* follows the paper's Monte-Carlo procedure — "running the tip
//! selection multiple times, thereby counting how often a given transaction
//! is hit during the random walk", normalized by the number of sampling
//! rounds. An IOTA-style alternative (fraction of sampled tips whose past
//! cone contains the transaction) is provided as
//! [`TangleAnalysis::approval_confidence`].

use crate::bitset::BitSet;
use crate::graph::{Tangle, TxId};
use crate::view::TangleRead;
use crate::walk::RandomWalk;
use rayon::prelude::*;
use std::collections::BTreeSet;

/// Exact cumulative weights: `w(t) = 1 + |{x : x directly or indirectly
/// approves t}|` (own weight plus distinct approvers), computed by a
/// reverse-topological bitset DP.
pub fn cumulative_weights<T: TangleRead>(tangle: &T) -> Vec<u32> {
    let n = tangle.len();
    let mut future: Vec<Option<BitSet>> = vec![None; n];
    let mut out = vec![0u32; n];
    // Ids are topological, so children always have larger ids: sweep down.
    for i in (0..n).rev() {
        let id = TxId(i as u32);
        let mut set = BitSet::new(n);
        for &child in tangle.approvers(id) {
            set.insert(child.index());
            set.union_with(
                future[child.index()]
                    .as_ref()
                    .expect("children processed before parents"),
            );
        }
        out[i] = 1 + set.count() as u32;
        future[i] = Some(set);
    }
    out
}

/// Exact ratings: `r(t) = |past cone of t|` (the genesis has rating 0),
/// computed by a forward-topological bitset DP.
pub fn ratings<T: TangleRead>(tangle: &T) -> Vec<u32> {
    let n = tangle.len();
    let mut past: Vec<BitSet> = Vec::with_capacity(n);
    let mut out = vec![0u32; n];
    for (i, tx) in tangle.transactions().iter().enumerate() {
        let mut set = BitSet::new(n);
        for &p in &tx.parents {
            set.insert(p.index());
            let parent_set = &past[p.index()];
            set.union_with(parent_set);
        }
        out[i] = set.count() as u32;
        past.push(set);
    }
    out
}

/// Incrementally maintained cumulative weights.
///
/// The batch DP in [`cumulative_weights`] costs `O(V²/64)` per snapshot;
/// rebuilding it every round makes long-lived networks quadratic overall.
/// This tracker exploits the identity that appending transaction `t`
/// increases the cumulative weight of *exactly* the members of `t`'s past
/// cone by one (each gains one new distinct approver), which costs only
/// `O(|past cone|)` per append.
///
/// Call [`IncrementalWeights::on_add`] after every `Tangle::add`; the
/// weights are equal to [`cumulative_weights`] at all times (verified by
/// property tests).
///
/// For the full set of derived quantities (weights, ratings, depths, and
/// tips) maintained under the same identity — plus stale-cache detection
/// instead of panics — see [`AnalysisCache`].
pub struct IncrementalWeights {
    weights: Vec<u32>,
}

impl IncrementalWeights {
    /// Start tracking an existing tangle (runs the batch DP once).
    pub fn new<T: TangleRead>(tangle: &T) -> Self {
        Self {
            weights: cumulative_weights(tangle),
        }
    }

    /// Record the transaction just appended (must be the latest id).
    ///
    /// # Panics
    /// Panics if `id` is not exactly the next transaction after the ones
    /// already tracked.
    pub fn on_add<T: TangleRead>(&mut self, tangle: &T, id: TxId) {
        assert_eq!(
            id.index(),
            self.weights.len(),
            "on_add must be called once per append, in order"
        );
        self.weights.push(1); // own weight
        for ancestor in tangle.past_cone(id) {
            self.weights[ancestor.index()] += 1;
        }
    }

    /// Like [`Self::on_add`], also counting the append under the
    /// `tangle.cache_appends` telemetry counter (no-op when the handle is
    /// disabled).
    pub fn on_add_observed<T: TangleRead>(
        &mut self,
        tangle: &T,
        id: TxId,
        telemetry: &lt_telemetry::Telemetry,
    ) {
        self.on_add(tangle, id);
        telemetry.count("tangle.cache_appends", 1);
    }

    /// The current weights (aligned with transaction ids).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }
}

/// Why an [`AnalysisCache`] refused to advance against a tangle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// `on_add` was called with an id that is not the next transaction
    /// after the ones already tracked (skipped or out-of-order append).
    OutOfOrder {
        /// The id the cache expected to see next.
        expected: u32,
        /// The id it was given.
        got: u32,
    },
    /// The tangle holds fewer transactions than the cache tracks — the
    /// cache was built over a longer (or different) history.
    TangleTooShort {
        /// Transactions tracked by the cache.
        cached: usize,
        /// Transactions in the presented tangle.
        tangle: usize,
    },
    /// The tangle's history up to the cache's frontier does not match
    /// what the cache advanced over — it is a *different* history (e.g. a
    /// replica restored from an older checkpoint and regrown along
    /// another branch, possibly diverging only in its interior).
    HistoryMismatch {
        /// The cache frontier at which the divergence was detected.
        at: u32,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::OutOfOrder { expected, got } => {
                write!(f, "out-of-order append: expected tx{expected}, got tx{got}")
            }
            CacheError::TangleTooShort { cached, tangle } => {
                write!(f, "cache tracks {cached} txs but tangle holds {tangle}")
            }
            CacheError::HistoryMismatch { at } => {
                write!(f, "tangle history diverges from the cache at tx{at}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// How an [`AnalysisCache::refresh`] brought the cache up to date.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// The cache already matched the tangle; nothing to do.
    Fresh,
    /// The tangle extended the cached history; the delta was applied
    /// incrementally (`.0` = transactions appended).
    Extended(usize),
    /// Validation failed (shorter or diverged history); the cache was
    /// rebuilt from scratch with the batch DPs.
    Rebuilt,
}

/// Incrementally maintained tangle analysis: cumulative weights, ratings,
/// depths, and the tip set, kept equal to the from-scratch
/// [`cumulative_weights`] / [`ratings`] / [`depths`] / `Tangle::tips` at
/// all times (pinned by the differential property tests).
///
/// Appending transaction `t`:
/// * adds one distinct approver to exactly the members of `t`'s past cone
///   (weights `+1` over the cone, `t` itself starts at its own weight 1);
/// * gives `t` a rating equal to its past-cone size and changes nobody
///   else's rating (past cones of existing transactions are immutable);
/// * can only *deepen* ancestors: depth is relaxed upward from `t` (depth
///   0) and the propagation stops as soon as it no longer increases;
/// * removes `t`'s parents from the tip set and inserts `t`.
///
/// One append therefore costs `O(|past cone|)` instead of the `O(V²/64)`
/// batch DPs — the difference between quadratic and linear total work for
/// a long-lived ledger (see the `analysis_cache` bench group).
///
/// Unlike [`IncrementalWeights`] the cache *validates* instead of
/// trusting: [`AnalysisCache::on_add`] returns [`CacheError`] on skipped
/// or out-of-order ids, and [`AnalysisCache::refresh`] checks the chained
/// whole-history signature so a shorter or diverged tangle (checkpoint
/// restore, repair regrowth in a different order) triggers a counted
/// rebuild rather than silently stale values.
#[derive(Clone)]
pub struct AnalysisCache {
    weights: Vec<u32>,
    ratings: Vec<u32>,
    depths: Vec<u32>,
    tips: BTreeSet<TxId>,
    /// Chained signature of the *entire* tracked history (equal to
    /// `Tangle::history_sig(self.len())` of the tangle it follows). A
    /// tail-only signature would let a same-length history that diverges
    /// in its interior — a gossip replica regrown in a different arrival
    /// order after an empty restart — slip through validation; the
    /// conformance harness's schedule exploration found exactly that.
    hist_sig: u64,
    /// Stamped visited scratch for cone traversals (no per-append alloc).
    visited: Vec<u32>,
    stamp: u32,
    /// Reusable DFS stacks.
    cone_stack: Vec<TxId>,
    depth_stack: Vec<(TxId, u32)>,
}

impl AnalysisCache {
    /// Build a cache over an existing tangle (runs the batch DPs once).
    pub fn new<T: TangleRead>(tangle: &T) -> Self {
        let n = tangle.len();
        Self {
            weights: cumulative_weights(tangle),
            ratings: ratings(tangle),
            depths: depths(tangle),
            tips: tangle.tips().into_iter().collect(),
            hist_sig: tangle.history_sig(n),
            visited: vec![0; n],
            stamp: 0,
            cone_stack: Vec::new(),
            depth_stack: Vec::new(),
        }
    }

    /// Transactions tracked by the cache.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always `false`: a cache tracks at least the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cumulative weights, aligned with transaction ids (equal to
    /// [`cumulative_weights`]).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Ratings (past-cone sizes), equal to [`ratings`].
    pub fn ratings(&self) -> &[u32] {
        &self.ratings
    }

    /// Depths (longest approval path from any tip), equal to [`depths`].
    pub fn depths(&self) -> &[u32] {
        &self.depths
    }

    /// Current tips in ascending id order, equal to `Tangle::tips`.
    pub fn tips(&self) -> Vec<TxId> {
        self.tips.iter().copied().collect()
    }

    /// Snapshot the cached weights/ratings into a [`TangleAnalysis`]
    /// (an `O(V)` copy instead of the `O(V²/64)` recompute).
    pub fn analysis(&self) -> TangleAnalysis {
        TangleAnalysis {
            cumulative_weight: self.weights.clone(),
            rating: self.ratings.clone(),
        }
    }

    /// Check that `tangle` extends the history this cache tracks: it must
    /// be at least as long, and its first `self.len()` transactions must
    /// be exactly the ones the cache advanced over (whole-history chained
    /// signature, not just the frontier — an interior divergence of a
    /// same-length replica must not slip through). A shorter or diverged
    /// tangle is an error — never silently-stale values.
    pub fn validate<T: TangleRead>(&self, tangle: &T) -> Result<(), CacheError> {
        let n = self.len();
        if tangle.len() < n {
            return Err(CacheError::TangleTooShort {
                cached: n,
                tangle: tangle.len(),
            });
        }
        if tangle.history_sig(n) != self.hist_sig {
            return Err(CacheError::HistoryMismatch { at: (n - 1) as u32 });
        }
        Ok(())
    }

    /// Record the transaction just appended. `id` must be exactly the next
    /// transaction after the ones already tracked and must exist in
    /// `tangle`; anything else returns a [`CacheError`] and leaves the
    /// cache untouched.
    pub fn on_add<T: TangleRead>(&mut self, tangle: &T, id: TxId) -> Result<(), CacheError> {
        let n = self.len();
        if id.index() != n {
            return Err(CacheError::OutOfOrder {
                expected: n as u32,
                got: id.0,
            });
        }
        if !tangle.contains(id) {
            return Err(CacheError::TangleTooShort {
                cached: n,
                tangle: tangle.len(),
            });
        }
        let tx = tangle.get(id);
        // Past-cone traversal: every member gains one distinct approver
        // (`id`), and the cone size is the new transaction's rating.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: clear the scratch so stale marks cannot match.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.stamp = 1;
        }
        let stamp = self.stamp;
        self.visited.resize(n, 0);
        let mut cone = 0u32;
        self.cone_stack.extend_from_slice(&tx.parents);
        while let Some(t) = self.cone_stack.pop() {
            let i = t.index();
            if self.visited[i] == stamp {
                continue;
            }
            self.visited[i] = stamp;
            cone += 1;
            self.weights[i] += 1;
            self.cone_stack.extend_from_slice(&tangle.get(t).parents);
        }
        self.weights.push(1); // own weight
        self.ratings.push(cone);
        self.depths.push(0); // a fresh transaction is a tip
                             // Depth relaxation: the new tip can only deepen its ancestry, and
                             // only along paths where the maximum actually increases.
        for &p in &tx.parents {
            self.depth_stack.push((p, 1));
        }
        while let Some((t, d)) = self.depth_stack.pop() {
            let i = t.index();
            if self.depths[i] >= d {
                continue;
            }
            self.depths[i] = d;
            for &q in &tangle.get(t).parents {
                self.depth_stack.push((q, d + 1));
            }
        }
        for &p in &tx.parents {
            self.tips.remove(&p);
        }
        self.tips.insert(id);
        self.hist_sig = crate::graph::chain_sig(self.hist_sig, id.0, &tx.parents);
        Ok(())
    }

    /// Bring the cache up to date with `tangle`: validate, then apply the
    /// appended suffix incrementally — or rebuild from scratch when the
    /// tangle is shorter than, or diverged from, the cached history.
    pub fn refresh<T: TangleRead>(&mut self, tangle: &T) -> RefreshOutcome {
        if self.validate(tangle).is_err() {
            *self = Self::new(tangle);
            return RefreshOutcome::Rebuilt;
        }
        let missing = tangle.len() - self.len();
        for i in self.len()..tangle.len() {
            self.on_add(tangle, TxId(i as u32))
                .expect("a validated extension appends in order");
        }
        if missing == 0 {
            RefreshOutcome::Fresh
        } else {
            RefreshOutcome::Extended(missing)
        }
    }

    /// Like [`Self::refresh`], additionally surfacing the outcome through
    /// `telemetry`: `tangle.cache_hits` counts refreshes served from the
    /// cache (fresh or incrementally extended, with appended transactions
    /// under `tangle.cache_appends`), `tangle.cache_rebuilds` counts full
    /// rebuilds. All counters are no-ops on a disabled handle (see the
    /// `telemetry_overhead` bench).
    pub fn refresh_observed<T: TangleRead>(
        &mut self,
        tangle: &T,
        telemetry: &lt_telemetry::Telemetry,
    ) -> RefreshOutcome {
        let outcome = self.refresh(tangle);
        match outcome {
            RefreshOutcome::Rebuilt => telemetry.count("tangle.cache_rebuilds", 1),
            RefreshOutcome::Fresh => telemetry.count("tangle.cache_hits", 1),
            RefreshOutcome::Extended(n) => {
                telemetry.count("tangle.cache_hits", 1);
                telemetry.count("tangle.cache_appends", n as u64);
            }
        }
        outcome
    }
}

/// Depth of every transaction: the length of the *longest* approval path
/// from any tip down to it (tips have depth 0, the genesis is deepest).
/// Used by windowed tip selection to pick walk entry points "reasonably
/// deep within the tangle" without walking from the genesis every time.
pub fn depths<T: TangleRead>(tangle: &T) -> Vec<u32> {
    let n = tangle.len();
    let mut out = vec![0u32; n];
    // Children have larger ids; sweep down so every approver is done first.
    for i in (0..n).rev() {
        let id = TxId(i as u32);
        let approvers = tangle.approvers(id);
        out[i] = approvers
            .iter()
            .map(|a| out[a.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    out
}

/// Classification of each transaction for visualization (the paper's
/// Fig. 2 coloring).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxClass {
    /// The genesis transaction (black in Fig. 2).
    Genesis,
    /// Approved by every current tip — part of the consensus (dark gray).
    Confirmed,
    /// A current tip (light gray).
    Tip,
    /// Neither a tip nor approved by all tips (white).
    Pending,
}

/// A per-tangle-snapshot view bundling the derived quantities that both the
/// learning algorithms and the analysis tooling need.
pub struct TangleAnalysis {
    /// Cumulative weight per transaction (see [`cumulative_weights`]).
    pub cumulative_weight: Vec<u32>,
    /// Rating per transaction (see [`ratings`]).
    pub rating: Vec<u32>,
}

impl TangleAnalysis {
    /// Compute both DP passes for the current tangle snapshot.
    pub fn compute<T>(tangle: &T) -> Self
    where
        T: TangleRead + Sync,
    {
        // The two DPs are independent — run them in parallel.
        let (cumulative_weight, rating) =
            rayon::join(|| cumulative_weights(tangle), || ratings(tangle));
        Self {
            cumulative_weight,
            rating,
        }
    }

    /// Like [`Self::compute`], wrapped in a `tangle.analysis_us` span so
    /// the weight/rating DP cost shows up in telemetry.
    pub fn compute_observed<T>(tangle: &T, telemetry: &lt_telemetry::Telemetry) -> Self
    where
        T: TangleRead + Sync,
    {
        let _span = telemetry.span("tangle.analysis_us");
        Self::compute(tangle)
    }

    /// Monte-Carlo walk-hit confidence (paper §III-A): run `samples` random
    /// walks and count, for each transaction, the fraction of walks whose
    /// particle path passed through it. The genesis always has confidence 1.
    ///
    /// Walks run in parallel with per-walk derived seeds, so the result is
    /// deterministic for a given `(tangle, walk, samples, seed)`.
    pub fn walk_confidence<T>(
        &self,
        tangle: &T,
        walk: &RandomWalk,
        samples: usize,
        seed: u64,
    ) -> Vec<f32>
    where
        T: TangleRead + Sync,
    {
        assert!(samples > 0, "need at least one confidence sample");
        let n = tangle.len();
        let hits: Vec<u32> = (0..samples)
            .into_par_iter()
            .map(|s| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut local = vec![0u32; n];
                for id in walk.walk_path_with_weights(tangle, &self.cumulative_weight, &mut rng) {
                    local[id.index()] = 1;
                }
                local
            })
            .reduce(
                || vec![0u32; n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        hits.iter().map(|&h| h as f32 / samples as f32).collect()
    }

    /// Like [`Self::walk_confidence`], additionally recording the sampling
    /// into `telemetry`: a `tangle.confidence_us` span around the whole
    /// Monte-Carlo pass and a `tangle.confidence_walks` counter counting
    /// the individual walks.
    pub fn walk_confidence_observed<T>(
        &self,
        tangle: &T,
        walk: &RandomWalk,
        samples: usize,
        seed: u64,
        telemetry: &lt_telemetry::Telemetry,
    ) -> Vec<f32>
    where
        T: TangleRead + Sync,
    {
        let _span = telemetry.span("tangle.confidence_us");
        telemetry.count("tangle.confidence_walks", samples as u64);
        self.walk_confidence(tangle, walk, samples, seed)
    }

    /// IOTA-style approval confidence: sample `samples` tips via the walk
    /// and report, per transaction, the fraction of sampled tips whose past
    /// cone contains it.
    pub fn approval_confidence<T>(
        &self,
        tangle: &T,
        walk: &RandomWalk,
        samples: usize,
        seed: u64,
    ) -> Vec<f32>
    where
        T: TangleRead + Sync,
    {
        assert!(samples > 0, "need at least one confidence sample");
        let n = tangle.len();
        let hits: Vec<u32> = (0..samples)
            .into_par_iter()
            .map(|s| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let tip = walk.select_tip_with_weights(tangle, &self.cumulative_weight, &mut rng);
                let mut local = vec![0u32; n];
                local[tip.index()] = 1;
                for a in tangle.past_cone(tip) {
                    local[a.index()] = 1;
                }
                local
            })
            .reduce(
                || vec![0u32; n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        hits.iter().map(|&h| h as f32 / samples as f32).collect()
    }

    /// Algorithm 1 (generalized to the top `n`): rank transactions by
    /// `confidence(t) × rating(t)` descending and return the best `n` ids.
    ///
    /// Ties break toward newer transactions (higher id), which keeps the
    /// selection stable and favors fresher models.
    pub fn choose_reference(&self, confidence: &[f32], n: usize) -> Vec<TxId> {
        assert_eq!(confidence.len(), self.rating.len());
        let mut scored: Vec<(f64, u32)> = confidence
            .iter()
            .enumerate()
            .map(|(i, &c)| (c as f64 * self.rating[i] as f64, i as u32))
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("scores are finite")
                .then(b.1.cmp(&a.1))
        });
        scored.into_iter().take(n).map(|(_, i)| TxId(i)).collect()
    }
}

/// Fig. 2 view: classify every transaction relative to the current tips.
pub struct ConsensusView {
    /// Per-transaction classification.
    pub classes: Vec<TxClass>,
}

impl ConsensusView {
    /// Compute the classification: a transaction is *confirmed* iff every
    /// current tip (directly or indirectly) approves it.
    pub fn compute<P>(tangle: &Tangle<P>) -> Self {
        let n = tangle.len();
        let tips = tangle.tips();
        // Count, per transaction, how many tips reach it: union of per-tip
        // past cones with a counting sweep. Reuse the forward past-cone DP
        // but accumulate per-tip hit counts instead of keeping all sets.
        let mut count = vec![0u32; n];
        for &tip in &tips {
            count[tip.index()] += 1; // a tip trivially "reaches" itself
            for a in tangle.past_cone(tip) {
                count[a.index()] += 1;
            }
        }
        let t = tips.len() as u32;
        let classes = (0..n)
            .map(|i| {
                let id = TxId(i as u32);
                if id == tangle.genesis() {
                    TxClass::Genesis
                } else if tangle.is_tip(id) {
                    TxClass::Tip
                } else if count[i] == t {
                    TxClass::Confirmed
                } else {
                    TxClass::Pending
                }
            })
            .collect();
        Self { classes }
    }

    /// Ids of the confirmed (consensus) transactions.
    pub fn confirmed(&self) -> Vec<TxId> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == TxClass::Confirmed)
            .map(|(i, _)| TxId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// genesis -> a, b; c -> (a,b); d -> (c); e -> (b)   tips: d, e
    fn sample() -> (Tangle<u8>, [TxId; 5]) {
        let mut t = Tangle::new(0u8);
        let g = t.genesis();
        let a = t.add(1, vec![g]).unwrap();
        let b = t.add(2, vec![g]).unwrap();
        let c = t.add(3, vec![a, b]).unwrap();
        let d = t.add(4, vec![c]).unwrap();
        let e = t.add(5, vec![b]).unwrap();
        (t, [a, b, c, d, e])
    }

    #[test]
    fn cumulative_weights_exact() {
        let (t, [a, b, c, d, e]) = sample();
        let w = cumulative_weights(&t);
        assert_eq!(w[t.genesis().index()], 6); // everyone approves genesis
        assert_eq!(w[a.index()], 3); // a, c, d
        assert_eq!(w[b.index()], 4); // b, c, d, e
        assert_eq!(w[c.index()], 2); // c, d
        assert_eq!(w[d.index()], 1);
        assert_eq!(w[e.index()], 1);
    }

    #[test]
    fn ratings_exact() {
        let (t, [a, b, c, d, e]) = sample();
        let r = ratings(&t);
        assert_eq!(r[t.genesis().index()], 0);
        assert_eq!(r[a.index()], 1);
        assert_eq!(r[b.index()], 1);
        assert_eq!(r[c.index()], 3); // a, b, genesis
        assert_eq!(r[d.index()], 4); // c, a, b, genesis
        assert_eq!(r[e.index()], 2); // b, genesis
    }

    #[test]
    fn diamond_counts_distinct_not_paths() {
        // genesis -> a, b; c approves both: genesis must count c once.
        let mut t = Tangle::new(0u8);
        let g = t.genesis();
        let a = t.add(1, vec![g]).unwrap();
        let b = t.add(2, vec![g]).unwrap();
        let c = t.add(3, vec![a, b]).unwrap();
        let w = cumulative_weights(&t);
        assert_eq!(w[g.index()], 4);
        let r = ratings(&t);
        assert_eq!(r[c.index()], 3);
    }

    #[test]
    fn walk_confidence_bounds_and_genesis() {
        let (t, _) = sample();
        let analysis = TangleAnalysis::compute(&t);
        let conf = analysis.walk_confidence(&t, &RandomWalk::default(), 64, 42);
        assert_eq!(conf.len(), t.len());
        assert!((conf[t.genesis().index()] - 1.0).abs() < 1e-6);
        assert!(conf.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn walk_confidence_is_deterministic_per_seed() {
        let (t, _) = sample();
        let analysis = TangleAnalysis::compute(&t);
        let c1 = analysis.walk_confidence(&t, &RandomWalk::default(), 32, 7);
        let c2 = analysis.walk_confidence(&t, &RandomWalk::default(), 32, 7);
        assert_eq!(c1, c2);
        let c3 = analysis.walk_confidence(&t, &RandomWalk::default(), 32, 8);
        assert_ne!(c1, c3);
    }

    #[test]
    fn approval_confidence_dominates_walk_confidence() {
        // Every tx on a walk path is in the reached tip's past cone, so
        // approval confidence >= walk confidence for matching seeds/samples.
        let (t, _) = sample();
        let analysis = TangleAnalysis::compute(&t);
        let walk = RandomWalk::default();
        let wc = analysis.walk_confidence(&t, &walk, 64, 9);
        let ac = analysis.approval_confidence(&t, &walk, 64, 9);
        for (w, a) in wc.iter().zip(&ac) {
            assert!(a >= w, "approval {a} < walk {w}");
        }
    }

    #[test]
    fn choose_reference_prefers_high_conf_times_rating() {
        let (t, [_, _, c, _, _]) = sample();
        let analysis = TangleAnalysis::compute(&t);
        // Hand-crafted confidence: c is confidently on the main path.
        let mut conf = vec![0.1f32; t.len()];
        conf[t.genesis().index()] = 1.0;
        conf[c.index()] = 0.9;
        let top = analysis.choose_reference(&conf, 2);
        assert_eq!(top[0], c); // 0.9 * 3 = 2.7, genesis = 1.0 * 0 = 0
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn choose_reference_on_genesis_only_tangle() {
        let t = Tangle::new(0u8);
        let analysis = TangleAnalysis::compute(&t);
        let top = analysis.choose_reference(&[1.0], 3);
        assert_eq!(top, vec![t.genesis()]);
    }

    #[test]
    fn incremental_weights_track_batch_dp() {
        let mut t = Tangle::new(0u8);
        let mut inc = IncrementalWeights::new(&t);
        let g = t.genesis();
        let a = t.add(1, vec![g]).unwrap();
        inc.on_add(&t, a);
        let b = t.add(2, vec![g]).unwrap();
        inc.on_add(&t, b);
        let c = t.add(3, vec![a, b]).unwrap();
        inc.on_add(&t, c);
        let d = t.add(4, vec![c, b]).unwrap();
        inc.on_add(&t, d);
        assert_eq!(inc.weights(), cumulative_weights(&t).as_slice());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn incremental_weights_reject_skipped_adds() {
        let mut t = Tangle::new(0u8);
        let mut inc = IncrementalWeights::new(&t);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let b = t.add(2, vec![a]).unwrap();
        inc.on_add(&t, b); // skipped a
    }

    #[test]
    fn incremental_weights_start_from_existing_tangle() {
        let (mut t, _) = sample();
        let mut inc = IncrementalWeights::new(&t);
        let tips = t.tips();
        let e = t.add(9, vec![tips[0], tips[1]]).unwrap();
        inc.on_add(&t, e);
        assert_eq!(inc.weights(), cumulative_weights(&t).as_slice());
    }

    #[test]
    fn analysis_cache_tracks_all_batch_dps() {
        let mut t = Tangle::new(0u8);
        let mut cache = AnalysisCache::new(&t);
        let g = t.genesis();
        let a = t.add(1, vec![g]).unwrap();
        cache.on_add(&t, a).unwrap();
        let b = t.add(2, vec![g]).unwrap();
        cache.on_add(&t, b).unwrap();
        let c = t.add(3, vec![a, b]).unwrap();
        cache.on_add(&t, c).unwrap();
        let d = t.add(4, vec![c, b]).unwrap();
        cache.on_add(&t, d).unwrap();
        assert_eq!(cache.weights(), cumulative_weights(&t).as_slice());
        assert_eq!(cache.ratings(), ratings(&t).as_slice());
        assert_eq!(cache.depths(), depths(&t).as_slice());
        assert_eq!(cache.tips(), t.tips());
        assert!(cache.validate(&t).is_ok());
    }

    #[test]
    fn analysis_cache_snapshot_equals_fresh_analysis() {
        let (t, _) = sample();
        let cache = AnalysisCache::new(&t);
        let fresh = TangleAnalysis::compute(&t);
        let cached = cache.analysis();
        assert_eq!(cached.cumulative_weight, fresh.cumulative_weight);
        assert_eq!(cached.rating, fresh.rating);
    }

    #[test]
    fn analysis_cache_rejects_out_of_order_adds() {
        let mut t = Tangle::new(0u8);
        let mut cache = AnalysisCache::new(&t);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let b = t.add(2, vec![a]).unwrap();
        let before = (cache.weights().to_vec(), cache.tips());
        assert_eq!(
            cache.on_add(&t, b),
            Err(CacheError::OutOfOrder {
                expected: 1,
                got: 2
            })
        );
        // A rejected add leaves the cache untouched.
        assert_eq!((cache.weights().to_vec(), cache.tips()), before);
    }

    #[test]
    fn analysis_cache_rejects_missing_tx() {
        let t = Tangle::new(0u8);
        let mut cache = AnalysisCache::new(&t);
        assert_eq!(
            cache.on_add(&t, TxId(1)),
            Err(CacheError::TangleTooShort {
                cached: 1,
                tangle: 1
            })
        );
    }

    #[test]
    fn analysis_cache_refresh_catches_up_incrementally() {
        let (mut t, _) = sample();
        let mut cache = AnalysisCache::new(&t);
        assert_eq!(cache.refresh(&t), RefreshOutcome::Fresh);
        let tips = t.tips();
        t.add(9, vec![tips[0], tips[1]]).unwrap();
        t.add(10, vec![t.tips()[0]]).unwrap();
        assert_eq!(cache.refresh(&t), RefreshOutcome::Extended(2));
        assert_eq!(cache.weights(), cumulative_weights(&t).as_slice());
        assert_eq!(cache.ratings(), ratings(&t).as_slice());
        assert_eq!(cache.depths(), depths(&t).as_slice());
        assert_eq!(cache.tips(), t.tips());
    }

    #[test]
    fn analysis_cache_rebuilds_on_shorter_tangle() {
        let (t, _) = sample();
        let cache = AnalysisCache::new(&t);
        let shorter = Tangle::new(0u8);
        assert_eq!(
            cache.validate(&shorter),
            Err(CacheError::TangleTooShort {
                cached: 6,
                tangle: 1
            })
        );
        let mut cache = cache;
        assert_eq!(cache.refresh(&shorter), RefreshOutcome::Rebuilt);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.weights(), cumulative_weights(&shorter).as_slice());
    }

    #[test]
    fn analysis_cache_rebuilds_on_diverged_history() {
        // Two same-length histories that differ in the last tx's parents:
        // the frontier signature must catch the divergence.
        let mut t1 = Tangle::new(0u8);
        let g = t1.genesis();
        let a = t1.add(1, vec![g]).unwrap();
        let b = t1.add(2, vec![g]).unwrap();
        let mut t2 = t1.clone();
        t1.add(3, vec![a, b]).unwrap();
        t2.add(3, vec![b]).unwrap();
        let cache = AnalysisCache::new(&t1);
        assert_eq!(
            cache.validate(&t2),
            Err(CacheError::HistoryMismatch { at: 3 })
        );
        let mut cache = cache;
        assert_eq!(cache.refresh(&t2), RefreshOutcome::Rebuilt);
        assert_eq!(cache.weights(), cumulative_weights(&t2).as_slice());
        assert_eq!(cache.tips(), t2.tips());
    }

    #[test]
    fn analysis_cache_rebuilds_on_interior_divergence() {
        // Same length AND same last-tx parents — the histories differ only
        // in their interior (tx2's parents), exactly what a gossip replica
        // looks like after an empty restart regrows it in a different
        // arrival order. A tail-only frontier signature accepted this and
        // served stale weights; found by conformance schedule exploration.
        let mut t1 = Tangle::new(0u8);
        let g = t1.genesis();
        let a = t1.add(1, vec![g]).unwrap();
        let b1 = t1.add(2, vec![g]).unwrap();
        t1.add(3, vec![a, b1]).unwrap();
        let mut t2 = Tangle::new(0u8);
        let a2 = t2.add(1, vec![g]).unwrap();
        let b2 = t2.add(2, vec![a2]).unwrap();
        t2.add(3, vec![a2, b2]).unwrap();
        assert_eq!(
            t1.get(TxId(3)).parents,
            t2.get(TxId(3)).parents,
            "the frontier transactions must be indistinguishable"
        );
        let cache = AnalysisCache::new(&t1);
        assert_eq!(
            cache.validate(&t2),
            Err(CacheError::HistoryMismatch { at: 3 })
        );
        let mut cache = cache;
        assert_eq!(cache.refresh(&t2), RefreshOutcome::Rebuilt);
        assert_eq!(cache.weights(), cumulative_weights(&t2).as_slice());
        assert_eq!(cache.ratings(), ratings(&t2).as_slice());
    }

    #[test]
    fn analysis_cache_observed_counts_hits_and_rebuilds() {
        let tel = lt_telemetry::Telemetry::new(lt_telemetry::NoopSink);
        let (mut t, _) = sample();
        let mut cache = AnalysisCache::new(&t);
        cache.refresh_observed(&t, &tel); // fresh -> hit
        let tips = t.tips();
        t.add(9, vec![tips[0]]).unwrap();
        cache.refresh_observed(&t, &tel); // extended -> hit + append
        cache.refresh_observed(&Tangle::new(0u8), &tel); // rebuild
        assert_eq!(tel.counter_value("tangle.cache_hits"), 2);
        assert_eq!(tel.counter_value("tangle.cache_rebuilds"), 1);
        assert_eq!(tel.counter_value("tangle.cache_appends"), 1);
    }

    #[test]
    fn consensus_view_matches_fig2_semantics() {
        let (t, [a, b, c, d, e]) = sample();
        let view = ConsensusView::compute(&t);
        assert_eq!(view.classes[t.genesis().index()], TxClass::Genesis);
        // tips: d, e
        assert_eq!(view.classes[d.index()], TxClass::Tip);
        assert_eq!(view.classes[e.index()], TxClass::Tip);
        // b is approved by both tips (d via c, e directly) -> confirmed
        assert_eq!(view.classes[b.index()], TxClass::Confirmed);
        // a and c are only reached from d -> pending
        assert_eq!(view.classes[a.index()], TxClass::Pending);
        assert_eq!(view.classes[c.index()], TxClass::Pending);
        assert_eq!(view.confirmed(), vec![b]);
    }
}
