//! A fixed-capacity bitset used for exact past/future-cone computation.
//!
//! The cone DP unions one ancestor set into another millions of times per
//! analysis pass; a dense `u64`-word bitset makes that a straight word-wise
//! OR which the compiler auto-vectorizes.

/// Fixed-capacity set of `usize` indices `< capacity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Maximum index + 1 this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`. Returns whether the bit was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit index {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.capacity);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000), "out of range contains is false");
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        b.insert(3);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(b.is_subset(&a));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for &i in &[199, 0, 65, 64, 127] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 64, 65, 127, 199]);
    }

    #[test]
    fn empty_and_capacity() {
        let s = BitSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }
}
