//! Graphviz (DOT) export reproducing the paper's Fig. 2 coloring:
//! genesis black, confirmed dark gray, tips light gray, pending white.

use crate::analysis::{ConsensusView, TxClass};
use crate::graph::Tangle;
use std::fmt::Write as _;

/// Render the tangle as a DOT digraph. Edges point from approver to
/// approved transaction (the direction of approval, as in the paper).
pub fn to_dot<P>(tangle: &Tangle<P>) -> String {
    let view = ConsensusView::compute(tangle);
    let mut out =
        String::from("digraph tangle {\n  rankdir=RL;\n  node [style=filled, shape=circle];\n");
    for tx in tangle.transactions() {
        let (fill, font) = match view.classes[tx.id.index()] {
            TxClass::Genesis => ("black", "white"),
            TxClass::Confirmed => ("gray40", "white"),
            TxClass::Tip => ("gray85", "black"),
            TxClass::Pending => ("white", "black"),
        };
        writeln!(out, "  {} [fillcolor={fill}, fontcolor={font}];", tx.id.0)
            .expect("writing to string cannot fail");
    }
    for tx in tangle.transactions() {
        for p in &tx.parents {
            writeln!(out, "  {} -> {};", tx.id.0, p.0).expect("writing to string cannot fail");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let b = t.add(2, vec![t.genesis(), a]).unwrap();
        let dot = to_dot(&t);
        assert!(dot.starts_with("digraph tangle"));
        assert!(dot.contains("0 [fillcolor=black"));
        assert!(dot.contains(&format!("{} -> 0;", a.0)));
        assert!(dot.contains(&format!("{} -> {};", b.0, a.0)));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn tip_colored_light_gray() {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let dot = to_dot(&t);
        assert!(dot.contains(&format!("{} [fillcolor=gray85", a.0)));
    }
}
