//! Tip-selection algorithms.
//!
//! The paper uses "the widespread algorithm of a weighted random walk from
//! the genesis transaction ... where the weights are the number of approvers
//! for a given transaction" (§II-C). [`RandomWalk`] implements the IOTA
//! MCMC walk with transition probabilities
//! `P(x→y) ∝ exp(α · (w(y) − max_z w(z)))` over the approvers `y` of the
//! current particle `x`, where `w` is the cumulative weight and `α` the
//! randomness parameter of Gal's "alpha" article cited by the paper (\[32\]).
//! `α = 0` is the unbiased walk; large `α` is greedy.

use crate::analysis::cumulative_weights;
use crate::graph::{Tangle, TxId};
use crate::view::TangleRead;
use rand::RngExt as _;

/// Strategy for picking the tips a new transaction will approve.
pub trait TipSelector<P> {
    /// Select one tip. Call repeatedly for multiple (not necessarily
    /// distinct) tips.
    fn select_tip(&self, tangle: &Tangle<P>, rng: &mut dyn rand::Rng) -> TxId;
}

/// Uniform choice among the current tips (no walk). The cheapest selector;
/// used as an ablation baseline and by attackers that do not care about
/// consensus weight.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformTips;

impl<P> TipSelector<P> for UniformTips {
    fn select_tip(&self, tangle: &Tangle<P>, rng: &mut dyn rand::Rng) -> TxId {
        let tips = tangle.tips();
        tips[rng.random_range(0..tips.len())]
    }
}

/// The weighted MCMC random walk from the genesis.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalk {
    /// Randomness parameter: 0 = unbiased, larger = greedier toward heavy
    /// subtangles.
    pub alpha: f64,
}

impl Default for RandomWalk {
    /// `α = 0.5`, a middle ground that keeps the walk weight-following but
    /// still randomized (the paper stresses that robustness depends on this
    /// "randomness factor of the tip selection algorithm").
    fn default() -> Self {
        Self { alpha: 0.5 }
    }
}

impl RandomWalk {
    /// Construct with an explicit α.
    pub fn new(alpha: f64) -> Self {
        Self { alpha }
    }

    /// Walk once with precomputed cumulative weights, returning the full
    /// particle path (genesis first, reached tip last).
    ///
    /// Using precomputed weights lets callers run many walks per tangle
    /// snapshot (confidence sampling, per-node tip sampling) without paying
    /// the DP each time.
    pub fn walk_path_with_weights<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        rng: &mut dyn rand::Rng,
    ) -> Vec<TxId> {
        assert_eq!(
            weights.len(),
            tangle.len(),
            "weights/tangle length mismatch"
        );
        let mut path = vec![tangle.genesis()];
        let mut cur = tangle.genesis();
        let mut probs: Vec<f64> = Vec::new();
        loop {
            let approvers = tangle.approvers(cur);
            match approvers.len() {
                0 => return path,
                1 => {
                    cur = approvers[0];
                }
                _ => {
                    probs.clear();
                    let max_w = approvers
                        .iter()
                        .map(|a| weights[a.index()])
                        .max()
                        .expect("non-empty approvers");
                    let mut total = 0.0f64;
                    for a in approvers {
                        let d = weights[a.index()] as f64 - max_w as f64;
                        let p = (self.alpha * d).exp();
                        probs.push(p);
                        total += p;
                    }
                    let mut r = rng.random_range(0.0..total);
                    let mut chosen = approvers[approvers.len() - 1];
                    for (a, &p) in approvers.iter().zip(&probs) {
                        if r < p {
                            chosen = *a;
                            break;
                        }
                        r -= p;
                    }
                    cur = chosen;
                }
            }
            path.push(cur);
        }
    }

    /// Select a tip with precomputed cumulative weights.
    pub fn select_tip_with_weights<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        rng: &mut dyn rand::Rng,
    ) -> TxId {
        *self
            .walk_path_with_weights(tangle, weights, rng)
            .last()
            .expect("walk path is never empty")
    }

    /// Like [`Self::select_tip_with_weights`], additionally recording the
    /// walk length (hops from the genesis) into the `tangle.walk_len`
    /// histogram and the `tangle.walks` counter of `telemetry`.
    pub fn select_tip_observed<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        rng: &mut dyn rand::Rng,
        telemetry: &lt_telemetry::Telemetry,
    ) -> TxId {
        let _span = telemetry.span("tangle.tip_selection_us");
        let path = self.walk_path_with_weights(tangle, weights, rng);
        telemetry.count("tangle.walks", 1);
        telemetry.record("tangle.walk_len", (path.len() - 1) as u64);
        *path.last().expect("walk path is never empty")
    }
}

impl<P> TipSelector<P> for RandomWalk {
    fn select_tip(&self, tangle: &Tangle<P>, rng: &mut dyn rand::Rng) -> TxId {
        let weights = cumulative_weights(tangle);
        self.select_tip_with_weights(tangle, &weights, rng)
    }
}

/// Windowed tip selection: instead of walking from the genesis every time
/// (which the paper's prototype does, §IV, at the cost of scalability),
/// start the walk from a uniformly chosen transaction whose depth lies in
/// `[window, 2·window]` — the optimization the original tangle authors
/// propose and the paper defers to future work.
///
/// Falls back to the genesis when the tangle is still shallower than the
/// window.
#[derive(Clone, Copy, Debug)]
pub struct WindowedWalk {
    /// The underlying weighted walk.
    pub walk: RandomWalk,
    /// Window depth `W`: entry particles are drawn from depths `W..=2W`.
    pub window: u32,
}

impl WindowedWalk {
    /// Construct from a walk and a window depth.
    pub fn new(walk: RandomWalk, window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        Self { walk, window }
    }

    /// Select a tip with precomputed cumulative weights and depths
    /// (see [`crate::analysis::depths`]).
    pub fn select_tip_with_weights<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        depths: &[u32],
        rng: &mut dyn rand::Rng,
    ) -> TxId {
        assert_eq!(depths.len(), tangle.len(), "depths/tangle length mismatch");
        let lo = self.window;
        let hi = 2 * self.window;
        let candidates: Vec<TxId> = (0..tangle.len())
            .filter(|&i| (lo..=hi).contains(&depths[i]))
            .map(|i| TxId(i as u32))
            .collect();
        let start = if candidates.is_empty() {
            tangle.genesis()
        } else {
            candidates[rng.random_range(0..candidates.len())]
        };
        self.walk_to_tip_from(tangle, weights, start, rng)
    }

    /// Like [`Self::select_tip_with_weights`], additionally recording the
    /// walk into `telemetry` (counter `tangle.walks`; the windowed walk
    /// does not retrace its path, so only the count is recorded, not a
    /// length).
    pub fn select_tip_observed<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        depths: &[u32],
        rng: &mut dyn rand::Rng,
        telemetry: &lt_telemetry::Telemetry,
    ) -> TxId {
        let _span = telemetry.span("tangle.tip_selection_us");
        telemetry.count("tangle.walks", 1);
        self.select_tip_with_weights(tangle, weights, depths, rng)
    }

    /// Run the weighted walk from an explicit start particle.
    pub fn walk_to_tip_from<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        start: TxId,
        rng: &mut dyn rand::Rng,
    ) -> TxId {
        let mut cur = start;
        let mut probs: Vec<f64> = Vec::new();
        loop {
            let approvers = tangle.approvers(cur);
            match approvers.len() {
                0 => return cur,
                1 => cur = approvers[0],
                _ => {
                    probs.clear();
                    let max_w = approvers
                        .iter()
                        .map(|a| weights[a.index()])
                        .max()
                        .expect("non-empty approvers");
                    let mut total = 0.0f64;
                    for a in approvers {
                        let d = weights[a.index()] as f64 - max_w as f64;
                        let p = (self.walk.alpha * d).exp();
                        probs.push(p);
                        total += p;
                    }
                    let mut r = rng.random_range(0.0..total);
                    let mut chosen = approvers[approvers.len() - 1];
                    for (a, &p) in approvers.iter().zip(&probs) {
                        if r < p {
                            chosen = *a;
                            break;
                        }
                        r -= p;
                    }
                    cur = chosen;
                }
            }
        }
    }
}

impl<P> TipSelector<P> for WindowedWalk {
    fn select_tip(&self, tangle: &Tangle<P>, rng: &mut dyn rand::Rng) -> TxId {
        let weights = cumulative_weights(tangle);
        let depths = crate::analysis::depths(tangle);
        self.select_tip_with_weights(tangle, &weights, &depths, rng)
    }
}

/// A weighted walk whose transition weight is `cumulative_weight + bias`,
/// where the bias is supplied per transaction by the caller — the paper's
/// §VI outlook of "introducing model performance as a bias in the weighted
/// random walk".
pub struct BiasedRandomWalk<'a> {
    /// Randomness parameter, as in [`RandomWalk`].
    pub alpha: f64,
    /// Per-transaction additive bias on the walk weight, in cumulative-
    /// weight units.
    pub bias: &'a [f64],
}

impl<'a> BiasedRandomWalk<'a> {
    /// Construct from α and a bias table indexed by transaction id.
    pub fn new(alpha: f64, bias: &'a [f64]) -> Self {
        Self { alpha, bias }
    }

    /// Select one tip using precomputed cumulative weights plus the bias.
    pub fn select_tip_with_weights<T: TangleRead>(
        &self,
        tangle: &T,
        weights: &[u32],
        rng: &mut dyn rand::Rng,
    ) -> TxId {
        assert_eq!(self.bias.len(), tangle.len(), "bias/tangle length mismatch");
        let mut cur = tangle.genesis();
        let mut probs: Vec<f64> = Vec::new();
        loop {
            let approvers = tangle.approvers(cur);
            match approvers.len() {
                0 => return cur,
                1 => cur = approvers[0],
                _ => {
                    probs.clear();
                    let eff = |a: TxId| weights[a.index()] as f64 + self.bias[a.index()];
                    let max_w = approvers
                        .iter()
                        .map(|&a| eff(a))
                        .fold(f64::NEG_INFINITY, f64::max);
                    let mut total = 0.0f64;
                    for &a in approvers {
                        let p = (self.alpha * (eff(a) - max_w)).exp();
                        probs.push(p);
                        total += p;
                    }
                    let mut r = rng.random_range(0.0..total);
                    let mut chosen = approvers[approvers.len() - 1];
                    for (a, &p) in approvers.iter().zip(&probs) {
                        if r < p {
                            chosen = *a;
                            break;
                        }
                        r -= p;
                    }
                    cur = chosen;
                }
            }
        }
    }
}

impl<'a, P> TipSelector<P> for BiasedRandomWalk<'a> {
    fn select_tip(&self, tangle: &Tangle<P>, rng: &mut dyn rand::Rng) -> TxId {
        let weights = cumulative_weights(tangle);
        self.select_tip_with_weights(tangle, &weights, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(seed)
    }

    /// genesis -> {a, b}; c approves a; the a-branch is heavier.
    fn forked() -> (Tangle<u8>, TxId, TxId, TxId) {
        let mut t = Tangle::new(0u8);
        let a = t.add(1, vec![t.genesis()]).unwrap();
        let b = t.add(2, vec![t.genesis()]).unwrap();
        let c = t.add(3, vec![a]).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn walk_reaches_a_tip() {
        let (t, _, b, c) = forked();
        let mut r = rng(1);
        for _ in 0..20 {
            let tip = RandomWalk::default().select_tip(&t, &mut r);
            assert!(tip == b || tip == c);
            assert!(t.is_tip(tip));
        }
    }

    #[test]
    fn high_alpha_is_greedy() {
        let (t, _, _b, c) = forked();
        let w = cumulative_weights(&t);
        let mut r = rng(2);
        let walk = RandomWalk::new(1000.0);
        for _ in 0..50 {
            // a has cumulative weight 2 (itself + c); b has 1 → always go a → c.
            assert_eq!(walk.select_tip_with_weights(&t, &w, &mut r), c);
        }
    }

    #[test]
    fn zero_alpha_is_roughly_uniform() {
        let (t, _, b, _c) = forked();
        let w = cumulative_weights(&t);
        let mut r = rng(3);
        let walk = RandomWalk::new(0.0);
        let mut hits_b = 0;
        let n = 2000;
        for _ in 0..n {
            if walk.select_tip_with_weights(&t, &w, &mut r) == b {
                hits_b += 1;
            }
        }
        let frac = hits_b as f64 / n as f64;
        assert!((0.42..0.58).contains(&frac), "b fraction {frac}");
    }

    #[test]
    fn walk_path_starts_at_genesis_ends_at_tip() {
        let (t, a, _, c) = forked();
        let w = cumulative_weights(&t);
        let mut r = rng(4);
        let path = RandomWalk::new(1000.0).walk_path_with_weights(&t, &w, &mut r);
        assert_eq!(path, vec![t.genesis(), a, c]);
    }

    #[test]
    fn uniform_tips_only_returns_tips() {
        let (t, _, b, c) = forked();
        let mut r = rng(5);
        for _ in 0..20 {
            let tip = <UniformTips as TipSelector<u8>>::select_tip(&UniformTips, &t, &mut r);
            assert!(tip == b || tip == c);
        }
    }

    #[test]
    fn bias_can_overcome_weight() {
        let (t, _, b, _c) = forked();
        let w = cumulative_weights(&t);
        // Heavily bias the light b-branch.
        let mut bias = vec![0.0f64; t.len()];
        bias[b.index()] = 100.0;
        let walk = BiasedRandomWalk::new(10.0, &bias);
        let mut r = rng(6);
        for _ in 0..30 {
            assert_eq!(walk.select_tip_with_weights(&t, &w, &mut r), b);
        }
    }

    #[test]
    fn windowed_walk_reaches_a_tip() {
        // Long chain with a fork at the end.
        let mut t = Tangle::new(0u8);
        let mut prev = t.genesis();
        for i in 0..20 {
            prev = t.add(i, vec![prev]).unwrap();
        }
        let x = t.add(99, vec![prev]).unwrap();
        let y = t.add(100, vec![prev]).unwrap();
        let mut r = rng(8);
        let w = WindowedWalk::new(RandomWalk::default(), 3);
        for _ in 0..20 {
            let tip = w.select_tip(&t, &mut r);
            assert!(tip == x || tip == y, "windowed walk ended at {tip}");
        }
    }

    #[test]
    fn windowed_walk_falls_back_to_genesis_when_shallow() {
        let t = Tangle::new(0u8);
        let mut r = rng(9);
        let w = WindowedWalk::new(RandomWalk::default(), 5);
        assert_eq!(w.select_tip(&t, &mut r), t.genesis());
    }

    #[test]
    fn depths_measure_longest_path_to_tip() {
        let (t, a, b, c) = forked();
        let d = crate::analysis::depths(&t);
        // tips c, b have depth 0; a has depth 1 (via c); genesis depth 2.
        assert_eq!(d[c.index()], 0);
        assert_eq!(d[b.index()], 0);
        assert_eq!(d[a.index()], 1);
        assert_eq!(d[t.genesis().index()], 2);
    }

    #[test]
    fn genesis_only_tangle_selects_genesis() {
        let t = Tangle::new(0u8);
        let mut r = rng(7);
        let tip = RandomWalk::default().select_tip(&t, &mut r);
        assert_eq!(tip, t.genesis());
    }
}
