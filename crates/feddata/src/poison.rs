//! Dataset-level poisoning transforms.
//!
//! The paper's targeted attack is *label flipping* (§III-E): "malicious
//! clients possess a local training dataset entirely consisting of
//! mislabeled samples ... samples of class 3, which are labeled as 8s".

use crate::dataset::ClientData;
use tinynn::Tensor;

/// Replace every occurrence of `src` in `labels` with `dst`; returns the
/// number of flipped labels.
pub fn flip_labels(labels: &mut [u32], src: u32, dst: u32) -> usize {
    let mut flipped = 0;
    for l in labels.iter_mut() {
        if *l == src {
            *l = dst;
            flipped += 1;
        }
    }
    flipped
}

/// Extract the rows of `x` whose label equals `keep`.
fn filter_rows(x: &Tensor, y: &[u32], keep: u32) -> (Tensor, usize) {
    let n = x.shape()[0];
    assert_eq!(n, y.len(), "labels/rows mismatch");
    let stride: usize = x.shape()[1..].iter().product();
    let mut rows = Vec::new();
    let mut count = 0;
    for (i, &label) in y.iter().enumerate() {
        if label == keep {
            rows.extend_from_slice(&x.as_slice()[i * stride..(i + 1) * stride]);
            count += 1;
        }
    }
    let mut shape = x.shape().to_vec();
    shape[0] = count;
    (Tensor::from_vec(shape, rows), count)
}

/// Build a label-flipping attacker's dataset from a client's own data:
/// keep only samples of class `src` and label them all `dst`. Applied to
/// both the train and held-out sides (the attacker *wants* the
/// misclassification, so its publish gate must reward it too).
///
/// Returns `None` if the client owns no samples of class `src` at all —
/// callers then source attack samples elsewhere (e.g.
/// [`crate::femnist::class_samples`]).
pub fn label_flip_client(client: &ClientData, src: u32, dst: u32) -> Option<ClientData> {
    let (train_x, ntr) = filter_rows(&client.train_x, &client.train_y, src);
    let (test_x, nte) = filter_rows(&client.test_x, &client.test_y, src);
    if ntr == 0 && nte == 0 {
        return None;
    }
    // If one side is empty, mirror the other so both gates exist.
    let (train_x, ntr, test_x, nte) = if ntr == 0 {
        (test_x.clone(), nte, test_x, nte)
    } else if nte == 0 {
        (train_x.clone(), ntr, train_x, ntr)
    } else {
        (train_x, ntr, test_x, nte)
    };
    Some(ClientData {
        train_x,
        train_y: vec![dst; ntr],
        test_x,
        test_y: vec![dst; nte],
    })
}

/// Stamp a backdoor trigger — a bright `patch × patch` square in the
/// top-left corner — onto every image of a `[N, C, H, W]` tensor.
///
/// Backdoor attacks (Bagdasaryan et al., cited as the paper's targeted-
/// attack reference \[29\]) poison with *triggered* inputs so the model
/// behaves normally except when the trigger is present.
pub fn apply_trigger(x: &mut Tensor, patch: usize, intensity: f32) {
    assert_eq!(x.rank(), 4, "trigger expects [N, C, H, W] images");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let patch = patch.min(h).min(w);
    let data = x.as_mut_slice();
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for y in 0..patch {
                for xx in 0..patch {
                    data[base + y * w + xx] = intensity;
                }
            }
        }
    }
}

/// Build a backdoor attacker's dataset from a client's own data: the
/// original samples stay (the attacker wants to look benign) and a
/// triggered, `target`-labelled copy of every sample is appended. Both
/// the train and the held-out side are poisoned, so the attacker's local
/// publish gate rewards models that carry the backdoor.
pub fn backdoor_client(
    client: &ClientData,
    target: u32,
    patch: usize,
    intensity: f32,
) -> ClientData {
    let poison_side = |x: &Tensor, y: &[u32]| {
        let mut triggered = x.clone();
        apply_trigger(&mut triggered, patch, intensity);
        let stride: usize = x.shape()[1..].iter().product();
        let mut data = x.as_slice().to_vec();
        data.extend_from_slice(triggered.as_slice());
        let mut labels = y.to_vec();
        labels.extend(std::iter::repeat_n(target, y.len()));
        let mut shape = x.shape().to_vec();
        shape[0] = 2 * y.len();
        debug_assert_eq!(shape[0] * stride, data.len());
        (Tensor::from_vec(shape, data), labels)
    };
    let (train_x, train_y) = poison_side(&client.train_x, &client.train_y);
    let (test_x, test_y) = poison_side(&client.test_x, &client.test_y);
    ClientData {
        train_x,
        train_y,
        test_x,
        test_y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> ClientData {
        // 4 train samples with labels [3, 1, 3, 2]; 2 test with [3, 0]
        ClientData {
            train_x: Tensor::from_fn(&[4, 2], |i| i as f32),
            train_y: vec![3, 1, 3, 2],
            test_x: Tensor::from_fn(&[2, 2], |i| 100.0 + i as f32),
            test_y: vec![3, 0],
        }
    }

    #[test]
    fn flip_labels_counts() {
        let mut y = vec![3, 1, 3, 2];
        assert_eq!(flip_labels(&mut y, 3, 8), 2);
        assert_eq!(y, vec![8, 1, 8, 2]);
        assert_eq!(flip_labels(&mut y, 9, 0), 0);
    }

    #[test]
    fn label_flip_client_keeps_only_source_class() {
        let c = client();
        let p = label_flip_client(&c, 3, 8).expect("has class-3 samples");
        assert_eq!(p.train_y, vec![8, 8]);
        assert_eq!(p.test_y, vec![8]);
        // rows 0 and 2 of train kept
        assert_eq!(p.train_x.as_slice(), &[0., 1., 4., 5.]);
        assert_eq!(p.test_x.as_slice(), &[100., 101.]);
    }

    #[test]
    fn label_flip_client_without_source_class_is_none() {
        let c = client();
        assert!(label_flip_client(&c, 7, 8).is_none());
    }

    fn image_client() -> ClientData {
        ClientData {
            train_x: Tensor::zeros(&[3, 1, 4, 4]),
            train_y: vec![0, 1, 2],
            test_x: Tensor::zeros(&[2, 1, 4, 4]),
            test_y: vec![1, 2],
        }
    }

    #[test]
    fn trigger_stamps_corner_patch() {
        let mut x = Tensor::zeros(&[2, 1, 4, 4]);
        apply_trigger(&mut x, 2, 1.0);
        for i in 0..2 {
            let img = &x.as_slice()[i * 16..(i + 1) * 16];
            assert_eq!(img[0], 1.0);
            assert_eq!(img[1], 1.0);
            assert_eq!(img[4], 1.0);
            assert_eq!(img[5], 1.0);
            assert_eq!(img[2], 0.0, "outside the patch untouched");
            assert_eq!(img[10], 0.0);
        }
    }

    #[test]
    fn trigger_patch_clamped_to_image() {
        let mut x = Tensor::zeros(&[1, 1, 2, 2]);
        apply_trigger(&mut x, 10, 0.5);
        assert!(x.as_slice().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn backdoor_client_doubles_and_labels() {
        let c = image_client();
        let p = backdoor_client(&c, 7, 2, 1.0);
        assert_eq!(p.train_len(), 6);
        assert_eq!(p.train_y, vec![0, 1, 2, 7, 7, 7]);
        assert_eq!(p.test_y, vec![1, 2, 7, 7]);
        // first half untouched, second half triggered
        assert_eq!(p.train_x.as_slice()[0], 0.0);
        let triggered_base = 3 * 16;
        assert_eq!(p.train_x.as_slice()[triggered_base], 1.0);
    }

    #[test]
    fn label_flip_mirrors_missing_side() {
        let mut c = client();
        c.test_y = vec![0, 0]; // no class-3 test samples
        let p = label_flip_client(&c, 3, 8).expect("train has class 3");
        assert_eq!(p.train_y, p.test_y);
        assert_eq!(p.train_x.as_slice(), p.test_x.as_slice());
    }
}
