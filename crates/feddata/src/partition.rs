//! Non-IID partitioning utilities.
//!
//! Federated datasets are characterized by label-skewed client
//! distributions. The standard construction is a per-class Dirichlet
//! allocation (smaller α → more skew); the classic FedAvg paper instead
//! uses label-sorted *shards*. Both are provided.

use rand::RngExt;
use rand_distr::{Distribution, Gamma};

/// Sample a probability vector from `Dirichlet(alpha, ..., alpha)` of
/// dimension `k`, via normalized Gamma draws.
pub fn dirichlet_proportions(alpha: f64, k: usize, rng: &mut impl RngExt) -> Vec<f64> {
    assert!(alpha > 0.0 && k > 0, "invalid Dirichlet parameters");
    let gamma = Gamma::new(alpha, 1.0).expect("valid gamma parameters");
    let mut draws: Vec<f64> = (0..k).map(|_| gamma.sample(rng).max(1e-300)).collect();
    let total: f64 = draws.iter().sum();
    for d in &mut draws {
        *d /= total;
    }
    draws
}

/// Partition sample indices across `users` with per-class Dirichlet skew:
/// for every class, a `Dirichlet(alpha)` draw decides what fraction of that
/// class's samples each user receives.
///
/// Returns `users` index lists covering all input indices exactly once.
pub fn dirichlet_partition(
    labels: &[u32],
    classes: usize,
    users: usize,
    alpha: f64,
    rng: &mut impl RngExt,
) -> Vec<Vec<usize>> {
    assert!(users > 0, "need at least one user");
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!((l as usize) < classes, "label {l} out of range");
        by_class[l as usize].push(i);
    }
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); users];
    for class_indices in by_class {
        if class_indices.is_empty() {
            continue;
        }
        let props = dirichlet_proportions(alpha, users, rng);
        // Convert proportions to integer counts that sum to the class size.
        let n = class_indices.len();
        let mut counts: Vec<usize> = props.iter().map(|p| (p * n as f64) as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the largest fractional parts (here:
        // round-robin over users by proportion order, deterministic).
        let mut order: Vec<usize> = (0..users).collect();
        order.sort_unstable_by(|&a, &b| {
            props[b].partial_cmp(&props[a]).expect("finite proportions")
        });
        let mut oi = 0;
        while assigned < n {
            counts[order[oi % users]] += 1;
            assigned += 1;
            oi += 1;
        }
        let mut offset = 0;
        for (u, &c) in counts.iter().enumerate() {
            out[u].extend_from_slice(&class_indices[offset..offset + c]);
            offset += c;
        }
    }
    out
}

/// Classic shard partition: sort indices by label, cut into
/// `users · shards_per_user` contiguous shards, deal each user
/// `shards_per_user` random shards. Each user ends up with only a few
/// classes — extreme label skew.
pub fn shard_partition(
    labels: &[u32],
    users: usize,
    shards_per_user: usize,
    rng: &mut impl RngExt,
) -> Vec<Vec<usize>> {
    assert!(users > 0 && shards_per_user > 0);
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    idx.sort_by_key(|&i| labels[i]);
    let num_shards = users * shards_per_user;
    let shard_len = labels.len() / num_shards;
    assert!(shard_len > 0, "not enough samples for the requested shards");
    let mut shard_ids: Vec<usize> = (0..num_shards).collect();
    for i in (1..num_shards).rev() {
        let j = rng.random_range(0..=i);
        shard_ids.swap(i, j);
    }
    let mut out = vec![Vec::new(); users];
    for (k, &s) in shard_ids.iter().enumerate() {
        let user = k / shards_per_user;
        let lo = s * shard_len;
        let hi = if s == num_shards - 1 {
            labels.len()
        } else {
            (s + 1) * shard_len
        };
        out[user].extend_from_slice(&idx[lo..hi]);
    }
    out
}

/// Herfindahl-style label-concentration score of one user's labels:
/// 1/classes (uniform) .. 1.0 (single class). Used in tests to verify that
/// small α produces more skew.
pub fn label_concentration(labels: &[u32], classes: usize) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; classes];
    for &l in labels {
        counts[l as usize] += 1;
    }
    let n = labels.len() as f64;
    counts.iter().map(|&c| (c as f64 / n).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(seed)
    }

    fn labels(n: usize, classes: usize) -> Vec<u32> {
        (0..n).map(|i| (i % classes) as u32).collect()
    }

    #[test]
    fn proportions_sum_to_one() {
        let mut r = rng(1);
        let p = dirichlet_proportions(0.5, 10, &mut r);
        assert_eq!(p.len(), 10);
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dirichlet_partition_covers_everything() {
        let mut r = rng(2);
        let ls = labels(300, 5);
        let parts = dirichlet_partition(&ls, 5, 7, 0.5, &mut r);
        assert_eq!(parts.len(), 7);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn small_alpha_more_skewed_than_large() {
        let mut r = rng(3);
        let ls = labels(2000, 10);
        let skewed = dirichlet_partition(&ls, 10, 10, 0.1, &mut r);
        let uniform = dirichlet_partition(&ls, 10, 10, 100.0, &mut r);
        let mean_conc = |parts: &[Vec<usize>]| {
            let cs: Vec<f64> = parts
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let user_labels: Vec<u32> = p.iter().map(|&i| ls[i]).collect();
                    label_concentration(&user_labels, 10)
                })
                .collect();
            cs.iter().sum::<f64>() / cs.len() as f64
        };
        assert!(
            mean_conc(&skewed) > mean_conc(&uniform) + 0.05,
            "alpha=0.1 should be visibly more skewed: {} vs {}",
            mean_conc(&skewed),
            mean_conc(&uniform)
        );
    }

    #[test]
    fn shard_partition_covers_everything() {
        let mut r = rng(4);
        let ls = labels(400, 10);
        let parts = shard_partition(&ls, 8, 2, &mut r);
        assert_eq!(parts.len(), 8);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn shard_partition_is_label_skewed() {
        let mut r = rng(5);
        let ls = labels(1000, 10);
        let parts = shard_partition(&ls, 10, 2, &mut r);
        // with 2 shards of 50 label-sorted samples, each user sees <= 4 classes
        for p in &parts {
            let mut classes: Vec<u32> = p.iter().map(|&i| ls[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert!(classes.len() <= 4, "user saw {} classes", classes.len());
        }
    }

    #[test]
    fn concentration_extremes() {
        assert!((label_concentration(&[1, 1, 1], 4) - 1.0).abs() < 1e-12);
        assert!((label_concentration(&[0, 1, 2, 3], 4) - 0.25).abs() < 1e-12);
        assert_eq!(label_concentration(&[], 4), 0.0);
    }
}
