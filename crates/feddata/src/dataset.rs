//! Core federated-dataset types shared by all generators.

use serde::{Deserialize, Serialize};
use tinynn::Tensor;

/// What kind of task the dataset encodes — determines how many target rows
/// each input sample produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// One label per sample (images, vectors).
    Classification,
    /// One label per timestep (next-character prediction): a `[N, T]` input
    /// has `N·T` target rows.
    SequencePrediction,
}

/// Dataset-level metadata (the quantities reported in the paper's Table I).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Human-readable dataset name.
    pub name: String,
    /// Number of target classes (62 for FEMNIST, vocabulary size for text).
    pub classes: usize,
    /// Number of users (clients).
    pub users: usize,
    /// Train fraction of each user's local data.
    pub train_split: f32,
    /// Minimum samples a user was required to have.
    pub min_samples_per_user: usize,
    /// Task kind.
    pub task: TaskKind,
    /// Shape of one input sample (e.g. `[1, 16, 16]` or `[seq_len]`).
    pub sample_shape: Vec<usize>,
}

/// One client's local data: a private train set and a private held-out set.
///
/// The held-out set plays the role of the paper's "local validation data" —
/// it gates whether a trained model is published (Algorithm 2) — and is
/// also what the global evaluation samples from.
#[derive(Clone, Debug)]
pub struct ClientData {
    /// Training inputs, leading axis = samples.
    pub train_x: Tensor,
    /// Training targets (one per target row, see [`TaskKind`]).
    pub train_y: Vec<u32>,
    /// Held-out inputs.
    pub test_x: Tensor,
    /// Held-out targets.
    pub test_y: Vec<u32>,
}

impl ClientData {
    /// Number of training samples (leading axis of `train_x`).
    pub fn train_len(&self) -> usize {
        if self.train_x.is_empty() {
            0
        } else {
            self.train_x.shape()[0]
        }
    }

    /// Number of held-out samples.
    pub fn test_len(&self) -> usize {
        if self.test_x.is_empty() {
            0
        } else {
            self.test_x.shape()[0]
        }
    }
}

/// A complete federated dataset: per-client local data plus metadata.
#[derive(Clone, Debug)]
pub struct FederatedDataset {
    /// Dataset-level metadata.
    pub meta: DatasetMeta,
    /// One entry per client.
    pub clients: Vec<ClientData>,
}

impl FederatedDataset {
    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total training samples across clients.
    pub fn total_train_samples(&self) -> usize {
        self.clients.iter().map(ClientData::train_len).sum()
    }

    /// Total held-out samples across clients.
    pub fn total_test_samples(&self) -> usize {
        self.clients.iter().map(ClientData::test_len).sum()
    }

    /// Table I-style one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} users, {} classes, {} train / {} test samples, split {:.2}, min/user {}",
            self.meta.name,
            self.meta.users,
            self.meta.classes,
            self.total_train_samples(),
            self.total_test_samples(),
            self.meta.train_split,
            self.meta.min_samples_per_user,
        )
    }
}

/// Split `n` sample indices into train/test by `train_split`, deterministic
/// per `rng`. Every client keeps at least one sample on each side whenever
/// `n >= 2`.
pub fn train_test_split(
    n: usize,
    train_split: f32,
    rng: &mut impl rand::RngExt,
) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    let mut cut = ((n as f32) * train_split).round() as usize;
    if n >= 2 {
        cut = cut.clamp(1, n - 1);
    } else {
        cut = n;
    }
    let test = idx.split_off(cut);
    (idx, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn split_covers_all_indices() {
        let mut r = rng(1);
        let (train, test) = train_test_split(10, 0.8, &mut r);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_keeps_both_sides_nonempty() {
        let mut r = rng(2);
        let (train, test) = train_test_split(2, 0.99, &mut r);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = train_test_split(2, 0.01, &mut r);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn split_single_sample_goes_to_train() {
        let mut r = rng(3);
        let (train, test) = train_test_split(1, 0.5, &mut r);
        assert_eq!(train.len(), 1);
        assert!(test.is_empty());
    }

    #[test]
    fn client_data_lengths() {
        let c = ClientData {
            train_x: Tensor::zeros(&[3, 4]),
            train_y: vec![0, 1, 2],
            test_x: Tensor::zeros(&[2, 4]),
            test_y: vec![0, 1],
        };
        assert_eq!(c.train_len(), 3);
        assert_eq!(c.test_len(), 2);
    }

    #[test]
    fn dataset_summary_counts() {
        let c = ClientData {
            train_x: Tensor::zeros(&[3, 4]),
            train_y: vec![0, 1, 2],
            test_x: Tensor::zeros(&[2, 4]),
            test_y: vec![0, 1],
        };
        let ds = FederatedDataset {
            meta: DatasetMeta {
                name: "toy".into(),
                classes: 3,
                users: 2,
                train_split: 0.6,
                min_samples_per_user: 0,
                task: TaskKind::Classification,
                sample_shape: vec![4],
            },
            clients: vec![c.clone(), c],
        };
        assert_eq!(ds.num_clients(), 2);
        assert_eq!(ds.total_train_samples(), 6);
        assert_eq!(ds.total_test_samples(), 4);
        assert!(ds.summary().contains("toy"));
    }
}
