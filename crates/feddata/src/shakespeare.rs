//! Synthetic Shakespeare: next-character prediction over per-role Markov
//! sources.
//!
//! LEAF's Shakespeare dataset partitions the plays by *speaking role*; each
//! client's text has a role-specific style. Here every role draws text from
//! its own first-order Markov chain: a shared base transition structure
//! (so a global model is learnable) blended with a role-specific
//! perturbation (so clients are non-IID).

use crate::dataset::{train_test_split, ClientData, DatasetMeta, FederatedDataset, TaskKind};
use rand::RngExt;
use rand::SeedableRng;
use rayon::prelude::*;
use tinynn::rng::derive;
use tinynn::Tensor;

/// Configuration of the synthetic Shakespeare generator.
#[derive(Clone, Debug)]
pub struct ShakespeareConfig {
    /// Vocabulary (alphabet) size — the paper's Table I lists 80 labels.
    pub vocab: usize,
    /// Number of roles (users).
    pub users: usize,
    /// Sequence length per sample (input length; each position predicts the
    /// next character).
    pub seq_len: usize,
    /// Inclusive range of per-user sequence counts.
    pub samples_per_user: (usize, usize),
    /// Train fraction (paper Table I: 0.9).
    pub train_split: f32,
    /// How strongly each role's chain deviates from the base chain
    /// (0 = IID across roles, 1 = fully role-specific).
    pub role_bias: f64,
    /// Probability mass of each character's dominant successor in the base
    /// chain — the task's learnable signal (and its accuracy ceiling).
    pub dominance: f64,
    /// How many preferred successors each character has in the base chain.
    pub branching: usize,
}

impl ShakespeareConfig {
    /// Scaled-down default: 30 symbols, 60 roles, length-16 sequences.
    pub fn scaled() -> Self {
        Self {
            vocab: 30,
            users: 60,
            seq_len: 16,
            samples_per_user: (16, 40),
            train_split: 0.9,
            role_bias: 0.2,
            dominance: 0.7,
            branching: 3,
        }
    }

    /// Paper-scale parameters (Table I): 80 labels, 1058 users, minimum 64
    /// samples per user.
    pub fn paper() -> Self {
        Self {
            vocab: 80,
            users: 1058,
            seq_len: 80,
            samples_per_user: (64, 256),
            train_split: 0.9,
            role_bias: 0.3,
            dominance: 0.6,
            branching: 6,
        }
    }
}

/// A row-stochastic transition matrix stored flat `[vocab * vocab]`.
struct Chain {
    vocab: usize,
    rows: Vec<f64>,
}

impl Chain {
    fn sample_next(&self, cur: usize, rng: &mut impl RngExt) -> usize {
        let row = &self.rows[cur * self.vocab..(cur + 1) * self.vocab];
        let mut r = rng.random_range(0.0..1.0f64);
        for (j, &p) in row.iter().enumerate() {
            if r < p {
                return j;
            }
            r -= p;
        }
        self.vocab - 1
    }
}

/// Build the shared base chain: each symbol strongly prefers a few
/// successors (one dominant), giving the structure an LSTM can learn.
fn base_chain(cfg: &ShakespeareConfig, seed: u64) -> Chain {
    let v = cfg.vocab;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(seed, 10));
    let mut rows = vec![0.0f64; v * v];
    for c in 0..v {
        let row = &mut rows[c * v..(c + 1) * v];
        // background mass
        for p in row.iter_mut() {
            *p = 0.2 / v as f64;
        }
        // dominant successor gets most of the mass, a few others share the rest
        let dominant = rng.random_range(0..v);
        row[dominant] += cfg.dominance;
        for _ in 0..cfg.branching.saturating_sub(1) {
            let s = rng.random_range(0..v);
            row[s] += (0.8 - cfg.dominance).max(0.05) / (cfg.branching - 1).max(1) as f64;
        }
        let total: f64 = row.iter().sum();
        for p in row.iter_mut() {
            *p /= total;
        }
    }
    Chain { vocab: v, rows }
}

/// Blend the base chain with a role-specific chain.
fn role_chain(cfg: &ShakespeareConfig, base: &Chain, seed: u64, user: usize) -> Chain {
    let v = cfg.vocab;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(seed, 100_000 + user as u64));
    let mut rows = base.rows.clone();
    for c in 0..v {
        let row = &mut rows[c * v..(c + 1) * v];
        // Role-specific preferred successor for this character.
        let pref = rng.random_range(0..v);
        for p in row.iter_mut() {
            *p *= 1.0 - cfg.role_bias;
        }
        row[pref] += cfg.role_bias;
    }
    Chain { vocab: v, rows }
}

/// Generate the full federated dataset. Deterministic per `(cfg, seed)`.
///
/// Inputs are `[N, seq_len]` tensors of token ids (stored as `f32`);
/// targets are the next character at each position, flattened to
/// `N · seq_len` entries — exactly what [`tinynn::zoo::char_lstm`] expects.
pub fn generate(cfg: &ShakespeareConfig, seed: u64) -> FederatedDataset {
    assert!(cfg.vocab >= 2 && cfg.seq_len >= 2);
    assert!(
        cfg.samples_per_user.0 >= 2,
        "users need >= 2 sequences to split"
    );
    let base = base_chain(cfg, seed);
    let clients: Vec<ClientData> = (0..cfg.users)
        .into_par_iter()
        .map(|user| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(seed, 200_000 + user as u64));
            let chain = role_chain(cfg, &base, seed, user);
            let n = rng.random_range(cfg.samples_per_user.0..=cfg.samples_per_user.1);
            // Generate n sequences of seq_len + 1 characters.
            let mut inputs = Vec::with_capacity(n * cfg.seq_len);
            let mut targets: Vec<Vec<u32>> = Vec::with_capacity(n);
            for _ in 0..n {
                let mut cur = rng.random_range(0..cfg.vocab);
                let mut seq_targets = Vec::with_capacity(cfg.seq_len);
                for _ in 0..cfg.seq_len {
                    inputs.push(cur as f32);
                    cur = chain.sample_next(cur, &mut rng);
                    seq_targets.push(cur as u32);
                }
                targets.push(seq_targets);
            }
            let (train_idx, test_idx) = train_test_split(n, cfg.train_split, &mut rng);
            let take = |idx: &[usize]| {
                let mut x = Vec::with_capacity(idx.len() * cfg.seq_len);
                let mut y = Vec::with_capacity(idx.len() * cfg.seq_len);
                for &i in idx {
                    x.extend_from_slice(&inputs[i * cfg.seq_len..(i + 1) * cfg.seq_len]);
                    y.extend_from_slice(&targets[i]);
                }
                (Tensor::from_vec(vec![idx.len(), cfg.seq_len], x), y)
            };
            let (train_x, train_y) = take(&train_idx);
            let (test_x, test_y) = take(&test_idx);
            ClientData {
                train_x,
                train_y,
                test_x,
                test_y,
            }
        })
        .collect();
    FederatedDataset {
        meta: DatasetMeta {
            name: format!("synthetic-shakespeare-{}v", cfg.vocab),
            classes: cfg.vocab,
            users: cfg.users,
            train_split: cfg.train_split,
            min_samples_per_user: cfg.samples_per_user.0,
            task: TaskKind::SequencePrediction,
            sample_shape: vec![cfg.seq_len],
        },
        clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShakespeareConfig {
        ShakespeareConfig {
            vocab: 8,
            users: 5,
            seq_len: 6,
            samples_per_user: (4, 8),
            train_split: 0.75,
            role_bias: 0.3,
            dominance: 0.55,
            branching: 3,
        }
    }

    #[test]
    fn shapes_and_targets() {
        let ds = generate(&tiny(), 1);
        assert_eq!(ds.num_clients(), 5);
        for c in &ds.clients {
            let n = c.train_x.shape()[0];
            assert_eq!(c.train_x.shape(), &[n, 6]);
            assert_eq!(c.train_y.len(), n * 6, "one target per position");
            assert!(c.train_y.iter().all(|&t| t < 8));
            assert!(c
                .train_x
                .as_slice()
                .iter()
                .all(|&v| (0.0..8.0).contains(&v) && v.fract() == 0.0));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&tiny(), 5);
        let b = generate(&tiny(), 5);
        assert_eq!(a.clients[2].train_y, b.clients[2].train_y);
    }

    #[test]
    fn targets_shifted_inputs() {
        // target[t] must equal input[t+1] within a sequence.
        let ds = generate(&tiny(), 9);
        let c = &ds.clients[0];
        let n = c.train_x.shape()[0];
        for i in 0..n {
            let xs = &c.train_x.as_slice()[i * 6..(i + 1) * 6];
            let ys = &c.train_y[i * 6..(i + 1) * 6];
            for t in 0..5 {
                assert_eq!(xs[t + 1] as u32, ys[t]);
            }
        }
    }

    #[test]
    fn base_chain_rows_are_stochastic() {
        let cfg = tiny();
        let chain = base_chain(&cfg, 3);
        for c in 0..cfg.vocab {
            let s: f64 = chain.rows[c * cfg.vocab..(c + 1) * cfg.vocab].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_has_learnable_structure() {
        // The dominant successor should carry well above uniform mass.
        let cfg = tiny();
        let chain = base_chain(&cfg, 4);
        for c in 0..cfg.vocab {
            let max = chain.rows[c * cfg.vocab..(c + 1) * cfg.vocab]
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            assert!(max > 2.0 / cfg.vocab as f64, "row {c} nearly uniform");
        }
    }

    #[test]
    fn roles_differ() {
        let cfg = tiny();
        let base = base_chain(&cfg, 6);
        let a = role_chain(&cfg, &base, 6, 0);
        let b = role_chain(&cfg, &base, 6, 1);
        assert_ne!(a.rows, b.rows);
    }
}
