//! Gaussian-blob vector classification — a fast synthetic task used by
//! tests, examples, and the quick integration suites.

use crate::dataset::{train_test_split, ClientData, DatasetMeta, FederatedDataset, TaskKind};
use crate::partition::dirichlet_proportions;
use rand::RngExt;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use tinynn::rng::derive;
use tinynn::Tensor;

/// Configuration of the blob generator.
#[derive(Clone, Debug)]
pub struct BlobsConfig {
    /// Number of classes (blob centers).
    pub classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Number of clients.
    pub users: usize,
    /// Inclusive range of per-user sample counts.
    pub samples_per_user: (usize, usize),
    /// Train fraction.
    pub train_split: f32,
    /// Dirichlet α for label skew; `None` = uniform.
    pub label_skew_alpha: Option<f64>,
    /// Within-class standard deviation (centers live at radius ~3).
    pub noise_std: f32,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        Self {
            classes: 4,
            dim: 8,
            users: 20,
            samples_per_user: (12, 30),
            train_split: 0.8,
            label_skew_alpha: Some(0.5),
            noise_std: 1.0,
        }
    }
}

/// Generate the blob dataset. Deterministic per `(cfg, seed)`.
pub fn generate(cfg: &BlobsConfig, seed: u64) -> FederatedDataset {
    assert!(cfg.classes >= 2 && cfg.dim >= 1 && cfg.users >= 1);
    assert!(cfg.samples_per_user.0 >= 2);
    // Class centers at radius ~3, shared by all clients.
    let mut center_rng = rand::rngs::SmallRng::seed_from_u64(derive(seed, 77));
    let unit = Normal::new(0.0f32, 1.0).expect("valid normal");
    let centers: Vec<Vec<f32>> = (0..cfg.classes)
        .map(|_| {
            let mut v: Vec<f32> = (0..cfg.dim).map(|_| unit.sample(&mut center_rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut v {
                *x *= 3.0 / norm;
            }
            v
        })
        .collect();
    let noise = Normal::new(0.0f32, cfg.noise_std).expect("valid noise std");
    let clients: Vec<ClientData> = (0..cfg.users)
        .map(|user| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(seed, 500_000 + user as u64));
            let n = rng.random_range(cfg.samples_per_user.0..=cfg.samples_per_user.1);
            let mix: Vec<f64> = match cfg.label_skew_alpha {
                Some(alpha) => dirichlet_proportions(alpha, cfg.classes, &mut rng),
                None => vec![1.0 / cfg.classes as f64; cfg.classes],
            };
            let mut xs = Vec::with_capacity(n * cfg.dim);
            let mut ys = Vec::with_capacity(n);
            for _ in 0..n {
                let mut r = rng.random_range(0.0..1.0f64);
                let mut class = cfg.classes - 1;
                for (c, &p) in mix.iter().enumerate() {
                    if r < p {
                        class = c;
                        break;
                    }
                    r -= p;
                }
                for &c in &centers[class] {
                    xs.push(c + noise.sample(&mut rng));
                }
                ys.push(class as u32);
            }
            let (train_idx, test_idx) = train_test_split(n, cfg.train_split, &mut rng);
            let take = |idx: &[usize]| {
                let mut x = Vec::with_capacity(idx.len() * cfg.dim);
                let mut y = Vec::with_capacity(idx.len());
                for &i in idx {
                    x.extend_from_slice(&xs[i * cfg.dim..(i + 1) * cfg.dim]);
                    y.push(ys[i]);
                }
                (Tensor::from_vec(vec![idx.len(), cfg.dim], x), y)
            };
            let (train_x, train_y) = take(&train_idx);
            let (test_x, test_y) = take(&test_idx);
            ClientData {
                train_x,
                train_y,
                test_x,
                test_y,
            }
        })
        .collect();
    FederatedDataset {
        meta: DatasetMeta {
            name: format!("blobs-{}c-{}d", cfg.classes, cfg.dim),
            classes: cfg.classes,
            users: cfg.users,
            train_split: cfg.train_split,
            min_samples_per_user: cfg.samples_per_user.0,
            task: TaskKind::Classification,
            sample_shape: vec![cfg.dim],
        },
        clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let ds = generate(&BlobsConfig::default(), 1);
        assert_eq!(ds.num_clients(), 20);
        for c in &ds.clients {
            assert_eq!(c.train_x.shape()[1], 8);
            assert_eq!(c.train_x.shape()[0], c.train_y.len());
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&BlobsConfig::default(), 3);
        let b = generate(&BlobsConfig::default(), 3);
        assert_eq!(a.clients[5].train_y, b.clients[5].train_y);
    }

    #[test]
    fn linearly_separable_enough_for_mlp() {
        let cfg = BlobsConfig {
            users: 4,
            samples_per_user: (40, 50),
            noise_std: 0.5,
            label_skew_alpha: None,
            ..BlobsConfig::default()
        };
        let ds = generate(&cfg, 4);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in &ds.clients {
            xs.extend_from_slice(c.train_x.as_slice());
            ys.extend_from_slice(&c.train_y);
        }
        let x = Tensor::from_vec(vec![ys.len(), 8], xs);
        let mut rng = tinynn::rng::seeded(0);
        let mut model = tinynn::zoo::mlp(8, &[16], 4, &mut rng);
        let mut sgd = tinynn::Sgd::new(0.2);
        for _ in 0..60 {
            let (_, g) = model.loss_and_grads(&x, &ys);
            sgd.step(&mut model, &g);
        }
        let (_, acc) = model.evaluate(&x, &ys);
        assert!(acc > 0.9, "blobs should be easy; got {acc}");
    }
}
