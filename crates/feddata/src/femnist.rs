//! Synthetic FEMNIST: procedural glyph images partitioned by writer.
//!
//! Each class is a fixed arrangement of strokes in a unit square (a
//! "glyph"). Each *writer* (user) renders glyphs with a personal style —
//! translation, scale, shear, stroke intensity — plus per-sample jitter and
//! pixel noise. Writers additionally hold label-skewed class mixtures
//! (Dirichlet). This reproduces FEMNIST's essential structure: the task is
//! the same everywhere, but every client's data looks different (feature
//! skew) and covers classes unevenly (label skew).

use crate::dataset::{train_test_split, ClientData, DatasetMeta, FederatedDataset, TaskKind};
use crate::partition::dirichlet_proportions;
use rand::RngExt;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use rayon::prelude::*;
use tinynn::rng::derive;
use tinynn::Tensor;

/// Configuration of the synthetic FEMNIST generator.
#[derive(Clone, Debug)]
pub struct FemnistConfig {
    /// Number of glyph classes.
    pub classes: usize,
    /// Image side length (must be divisible by 4 for the paper's CNN).
    pub img: usize,
    /// Number of writers (users).
    pub users: usize,
    /// Inclusive range of per-user sample counts (unbalanced clients).
    pub samples_per_user: (usize, usize),
    /// Fraction of each user's data used for training (paper Table I: 0.8).
    pub train_split: f32,
    /// Dirichlet α for per-user label skew; `None` = uniform labels.
    pub label_skew_alpha: Option<f64>,
    /// Std of additive pixel noise.
    pub noise_std: f32,
    /// Strokes per glyph.
    pub strokes: usize,
}

impl FemnistConfig {
    /// Scaled-down default used by tests and the default experiment runs:
    /// 10 classes, 16×16 images, 100 writers. Noise and stroke counts are
    /// tuned so a scaled CNN converges gradually over ~100 federated
    /// rounds (mirroring the paper's 200-round FEMNIST curves) instead of
    /// saturating immediately.
    pub fn scaled() -> Self {
        Self {
            classes: 10,
            img: 16,
            users: 100,
            samples_per_user: (10, 30),
            train_split: 0.8,
            label_skew_alpha: Some(0.5),
            noise_std: 0.25,
            strokes: 3,
        }
    }

    /// Paper-scale parameters (Table I): 62 classes, 3500 writers, 28×28.
    pub fn paper() -> Self {
        Self {
            classes: 62,
            img: 28,
            users: 3500,
            samples_per_user: (8, 120),
            train_split: 0.8,
            label_skew_alpha: Some(0.5),
            noise_std: 0.08,
            strokes: 5,
        }
    }
}

/// A glyph template: stroke endpoints in the unit square.
#[derive(Clone, Debug)]
struct Glyph {
    /// `(x0, y0, x1, y1)` per stroke.
    strokes: Vec<(f32, f32, f32, f32)>,
}

fn glyph_for_class(dataset_seed: u64, class: usize, strokes: usize) -> Glyph {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(dataset_seed, 1_000 + class as u64));
    let strokes = (0..strokes)
        .map(|_| {
            (
                rng.random_range(0.1..0.9f32),
                rng.random_range(0.1..0.9f32),
                rng.random_range(0.1..0.9f32),
                rng.random_range(0.1..0.9f32),
            )
        })
        .collect();
    Glyph { strokes }
}

/// A writer's personal rendering style.
#[derive(Clone, Copy, Debug)]
struct WriterStyle {
    dx: f32,
    dy: f32,
    sx: f32,
    sy: f32,
    shear: f32,
    intensity: f32,
}

fn style_for_writer(dataset_seed: u64, user: usize) -> WriterStyle {
    let mut rng =
        rand::rngs::SmallRng::seed_from_u64(derive(dataset_seed, 2_000_000 + user as u64));
    WriterStyle {
        dx: rng.random_range(-0.08..0.08),
        dy: rng.random_range(-0.08..0.08),
        sx: rng.random_range(0.85..1.15),
        sy: rng.random_range(0.85..1.15),
        shear: rng.random_range(-0.25..0.25),
        intensity: rng.random_range(0.7..1.0),
    }
}

/// Rasterize one glyph with a writer style and per-sample jitter into an
/// `img × img` buffer (values in `[0, 1]`).
fn render(
    glyph: &Glyph,
    style: &WriterStyle,
    img: usize,
    jitter: (f32, f32),
    noise_std: f32,
    rng: &mut impl RngExt,
) -> Vec<f32> {
    let mut px = vec![0.0f32; img * img];
    let steps = img * 2;
    for &(x0, y0, x1, y1) in &glyph.strokes {
        for s in 0..=steps {
            let t = s as f32 / steps as f32;
            // Point on the stroke, then writer transform + sample jitter.
            let ux = x0 + t * (x1 - x0);
            let uy = y0 + t * (y1 - y0);
            let tx = style.sx * ux + style.shear * uy + style.dx + jitter.0;
            let ty = style.sy * uy + style.dy + jitter.1;
            // Bilinear splat.
            let fx = tx * (img as f32 - 1.0);
            let fy = ty * (img as f32 - 1.0);
            if !(0.0..=(img as f32 - 1.001)).contains(&fx)
                || !(0.0..=(img as f32 - 1.001)).contains(&fy)
            {
                continue;
            }
            let (x, y) = (fx as usize, fy as usize);
            let (ax, ay) = (fx - x as f32, fy - y as f32);
            let w = style.intensity;
            px[y * img + x] += w * (1.0 - ax) * (1.0 - ay);
            px[y * img + x + 1] += w * ax * (1.0 - ay);
            px[(y + 1) * img + x] += w * (1.0 - ax) * ay;
            px[(y + 1) * img + x + 1] += w * ax * ay;
        }
    }
    if noise_std > 0.0 {
        let normal = Normal::new(0.0f32, noise_std).expect("valid noise std");
        for v in &mut px {
            *v += normal.sample(rng);
        }
    }
    for v in &mut px {
        *v = v.clamp(0.0, 1.0);
    }
    px
}

/// Generate `n` rendered samples of a fixed `class` as seen by `user`.
///
/// This is also the attacker's sample source for the label-flipping attack:
/// a malicious writer produces genuine images of the *source* class and
/// labels them as the *target* class.
pub fn class_samples(
    cfg: &FemnistConfig,
    dataset_seed: u64,
    user: usize,
    class: usize,
    n: usize,
    sample_seed: u64,
) -> Tensor {
    assert!(class < cfg.classes, "class out of range");
    let glyph = glyph_for_class(dataset_seed, class, cfg.strokes);
    let style = style_for_writer(dataset_seed, user);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(dataset_seed, sample_seed));
    let mut data = Vec::with_capacity(n * cfg.img * cfg.img);
    for _ in 0..n {
        let jitter = (
            rng.random_range(-0.03..0.03f32),
            rng.random_range(-0.03..0.03f32),
        );
        data.extend(render(
            &glyph,
            &style,
            cfg.img,
            jitter,
            cfg.noise_std,
            &mut rng,
        ));
    }
    Tensor::from_vec(vec![n, 1, cfg.img, cfg.img], data)
}

/// Generate the full federated dataset. Deterministic per `(cfg, seed)`.
pub fn generate(cfg: &FemnistConfig, seed: u64) -> FederatedDataset {
    assert!(cfg.classes >= 2, "need at least two classes");
    assert_eq!(cfg.img % 4, 0, "image side must be divisible by 4");
    assert!(
        cfg.samples_per_user.0 >= 2,
        "users need >= 2 samples to split"
    );
    let glyphs: Vec<Glyph> = (0..cfg.classes)
        .map(|c| glyph_for_class(seed, c, cfg.strokes))
        .collect();
    let clients: Vec<ClientData> = (0..cfg.users)
        .into_par_iter()
        .map(|user| {
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(derive(seed, 3_000_000 + user as u64));
            let style = style_for_writer(seed, user);
            let n = rng.random_range(cfg.samples_per_user.0..=cfg.samples_per_user.1);
            // Per-user class mixture.
            let mix: Vec<f64> = match cfg.label_skew_alpha {
                Some(alpha) => dirichlet_proportions(alpha, cfg.classes, &mut rng),
                None => vec![1.0 / cfg.classes as f64; cfg.classes],
            };
            let mut labels = Vec::with_capacity(n);
            let mut pixels = Vec::with_capacity(n * cfg.img * cfg.img);
            for _ in 0..n {
                let mut r = rng.random_range(0.0..1.0f64);
                let mut class = cfg.classes - 1;
                for (c, &p) in mix.iter().enumerate() {
                    if r < p {
                        class = c;
                        break;
                    }
                    r -= p;
                }
                let jitter = (
                    rng.random_range(-0.03..0.03f32),
                    rng.random_range(-0.03..0.03f32),
                );
                pixels.extend(render(
                    &glyphs[class],
                    &style,
                    cfg.img,
                    jitter,
                    cfg.noise_std,
                    &mut rng,
                ));
                labels.push(class as u32);
            }
            let sample_len = cfg.img * cfg.img;
            let (train_idx, test_idx) = train_test_split(n, cfg.train_split, &mut rng);
            let take = |idx: &[usize]| {
                let mut x = Vec::with_capacity(idx.len() * sample_len);
                let mut y = Vec::with_capacity(idx.len());
                for &i in idx {
                    x.extend_from_slice(&pixels[i * sample_len..(i + 1) * sample_len]);
                    y.push(labels[i]);
                }
                (Tensor::from_vec(vec![idx.len(), 1, cfg.img, cfg.img], x), y)
            };
            let (train_x, train_y) = take(&train_idx);
            let (test_x, test_y) = take(&test_idx);
            ClientData {
                train_x,
                train_y,
                test_x,
                test_y,
            }
        })
        .collect();
    FederatedDataset {
        meta: DatasetMeta {
            name: format!("synthetic-femnist-{}c-{}px", cfg.classes, cfg.img),
            classes: cfg.classes,
            users: cfg.users,
            train_split: cfg.train_split,
            min_samples_per_user: cfg.samples_per_user.0,
            task: TaskKind::Classification,
            sample_shape: vec![1, cfg.img, cfg.img],
        },
        clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FemnistConfig {
        FemnistConfig {
            classes: 4,
            img: 8,
            users: 6,
            samples_per_user: (6, 10),
            train_split: 0.8,
            label_skew_alpha: Some(0.5),
            noise_std: 0.05,
            strokes: 3,
        }
    }

    #[test]
    fn shapes_and_ranges() {
        let ds = generate(&tiny(), 1);
        assert_eq!(ds.num_clients(), 6);
        for c in &ds.clients {
            assert_eq!(c.train_x.shape()[1..], [1, 8, 8]);
            assert_eq!(c.train_x.shape()[0], c.train_y.len());
            assert_eq!(c.test_x.shape()[0], c.test_y.len());
            assert!(c.train_len() >= 1 && c.test_len() >= 1);
            assert!(c
                .train_x
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)));
            assert!(c.train_y.iter().all(|&l| l < 4));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&tiny(), 7);
        let b = generate(&tiny(), 7);
        assert_eq!(
            a.clients[0].train_x.as_slice(),
            b.clients[0].train_x.as_slice()
        );
        let c = generate(&tiny(), 8);
        assert_ne!(
            a.clients[0].train_x.as_slice(),
            c.clients[0].train_x.as_slice()
        );
    }

    #[test]
    fn writers_render_differently() {
        let cfg = tiny();
        let a = class_samples(&cfg, 1, 0, 2, 1, 99);
        let b = class_samples(&cfg, 1, 1, 2, 1, 99);
        assert_ne!(a.as_slice(), b.as_slice(), "writer styles must differ");
    }

    #[test]
    fn classes_render_differently() {
        let cfg = tiny();
        let a = class_samples(&cfg, 1, 0, 0, 1, 99);
        let b = class_samples(&cfg, 1, 0, 1, 1, 99);
        assert_ne!(a.as_slice(), b.as_slice(), "glyphs must differ per class");
    }

    #[test]
    fn images_are_not_blank() {
        let cfg = tiny();
        let x = class_samples(&cfg, 3, 0, 0, 4, 5);
        for i in 0..4 {
            let img = &x.as_slice()[i * 64..(i + 1) * 64];
            let mass: f32 = img.iter().sum();
            assert!(mass > 1.0, "glyph {i} nearly blank: mass {mass}");
        }
    }

    #[test]
    fn label_skew_produces_concentrated_users() {
        let mut cfg = tiny();
        cfg.label_skew_alpha = Some(0.1);
        cfg.users = 12;
        let ds = generate(&cfg, 2);
        let conc: f64 = ds
            .clients
            .iter()
            .map(|c| crate::partition::label_concentration(&c.train_y, 4))
            .sum::<f64>()
            / ds.clients.len() as f64;
        assert!(conc > 0.4, "expected strong label skew, got {conc}");
    }

    #[test]
    fn a_cnn_can_learn_it() {
        // End-to-end sanity: pooled data from a few writers is learnable
        // well above chance by the scaled CNN within a few epochs.
        use tinynn::zoo::{femnist_cnn, CnnConfig};
        use tinynn::{ParamVec, Sgd};
        let mut cfg = tiny();
        cfg.users = 8;
        cfg.samples_per_user = (20, 24);
        cfg.noise_std = 0.03;
        let ds = generate(&cfg, 11);
        // Pool train/test across users.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for c in &ds.clients {
            xs.extend_from_slice(c.train_x.as_slice());
            ys.extend_from_slice(&c.train_y);
            xt.extend_from_slice(c.test_x.as_slice());
            yt.extend_from_slice(&c.test_y);
        }
        let x = Tensor::from_vec(vec![ys.len(), 1, 8, 8], xs);
        let xtest = Tensor::from_vec(vec![yt.len(), 1, 8, 8], xt);
        let mut rng = tinynn::rng::seeded(0);
        let mut model = femnist_cnn(
            8,
            4,
            CnnConfig {
                conv1: 4,
                conv2: 8,
                dense: 16,
            },
            &mut rng,
        );
        let mut sgd = Sgd::new(0.1);
        for _ in 0..30 {
            let (_, g) = model.loss_and_grads(&x, &ys);
            sgd.step(&mut model, &g);
        }
        let (_, acc) = model.evaluate(&xtest, &yt);
        assert!(
            acc > 0.5,
            "CNN should beat chance (0.25) clearly, got {acc}"
        );
        // keep the trained params exercised
        let _ = ParamVec::from_model(&model);
    }
}
