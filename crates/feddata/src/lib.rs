//! # feddata — synthetic federated datasets
//!
//! The paper evaluates on two LEAF datasets that cannot be redistributed
//! here: FEMNIST (handwritten characters partitioned by writer) and
//! Shakespeare (next-character prediction partitioned by play character).
//! This crate builds *synthetic* federated datasets that preserve the
//! properties driving the paper's results:
//!
//! * horizontally partitioned across many users,
//! * **non-IID** per user (feature skew through per-writer transforms,
//!   label skew through Dirichlet class distributions),
//! * unbalanced (per-user sample counts vary),
//! * learnable by the paper's model families (CNN / stacked LSTM).
//!
//! Modules:
//! * [`femnist`] — procedural glyph images with per-writer style transforms.
//! * [`shakespeare`] — per-role Markov character sources for next-character
//!   prediction.
//! * [`blobs`] — Gaussian-blob vector classification, for fast tests and
//!   examples.
//! * [`sensors`] — synthetic edge-sensor activity windows with per-device
//!   calibration skew (the paper's IoT motivation).
//! * [`partition`] — generic Dirichlet / shard non-IID partitioners.
//! * [`poison`] — dataset-level poisoning transforms (label flipping).

pub mod blobs;
pub mod dataset;
pub mod femnist;
pub mod partition;
pub mod poison;
pub mod sensors;
pub mod shakespeare;

pub use dataset::{ClientData, DatasetMeta, FederatedDataset, TaskKind};
