//! Synthetic edge-sensor activity recognition.
//!
//! The paper motivates decentralized learning with "IoT and Edge computing
//! nodes" analysing privacy-sensitive data at its origin. This generator
//! produces that workload: windows of accelerometer-like readings, one
//! *activity* per class (distinct frequency/amplitude signatures), one
//! *device* per user with its own calibration (gain, offset, phase, noise
//! floor) — feature skew exactly like FEMNIST's writers — plus Dirichlet
//! label skew (not everyone runs, not everyone cycles).

use crate::dataset::{train_test_split, ClientData, DatasetMeta, FederatedDataset, TaskKind};
use crate::partition::dirichlet_proportions;
use rand::RngExt;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use tinynn::rng::derive;
use tinynn::Tensor;

/// Configuration of the sensor-window generator.
#[derive(Clone, Debug)]
pub struct SensorsConfig {
    /// Number of activity classes.
    pub classes: usize,
    /// Readings per window.
    pub window: usize,
    /// Number of devices (users).
    pub users: usize,
    /// Inclusive range of windows per device.
    pub samples_per_user: (usize, usize),
    /// Train fraction.
    pub train_split: f32,
    /// Dirichlet α for per-device label skew; `None` = uniform.
    pub label_skew_alpha: Option<f64>,
    /// Sensor noise floor (std of additive Gaussian noise).
    pub noise_std: f32,
}

impl Default for SensorsConfig {
    fn default() -> Self {
        Self {
            classes: 5,
            window: 32,
            users: 50,
            samples_per_user: (10, 30),
            train_split: 0.8,
            label_skew_alpha: Some(0.5),
            noise_std: 0.15,
        }
    }
}

/// One activity's waveform signature.
#[derive(Clone, Copy, Debug)]
struct Activity {
    freq: f32,
    amp: f32,
    harmonic: f32,
}

fn activity(dataset_seed: u64, class: usize) -> Activity {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(dataset_seed, 9_000 + class as u64));
    Activity {
        // well-separated base frequencies: 1..=classes cycles per window,
        // jittered so classes are not perfectly aligned
        freq: (class + 1) as f32 + rng.random_range(-0.2..0.2),
        amp: rng.random_range(0.6..1.4),
        harmonic: rng.random_range(0.1..0.5),
    }
}

/// One device's calibration.
#[derive(Clone, Copy, Debug)]
struct Device {
    gain: f32,
    offset: f32,
    phase: f32,
}

fn device(dataset_seed: u64, user: usize) -> Device {
    let mut rng =
        rand::rngs::SmallRng::seed_from_u64(derive(dataset_seed, 4_000_000 + user as u64));
    Device {
        gain: rng.random_range(0.8..1.2),
        offset: rng.random_range(-0.3..0.3),
        phase: rng.random_range(0.0..std::f32::consts::TAU),
    }
}

fn window(
    act: &Activity,
    dev: &Device,
    len: usize,
    noise_std: f32,
    rng: &mut impl RngExt,
) -> Vec<f32> {
    let noise = Normal::new(0.0f32, noise_std).expect("valid noise std");
    let jitter = rng.random_range(0.0..std::f32::consts::TAU);
    (0..len)
        .map(|t| {
            let x = t as f32 / len as f32 * std::f32::consts::TAU;
            let base = act.amp * (act.freq * x + dev.phase + jitter).sin()
                + act.harmonic * act.amp * (2.0 * act.freq * x + dev.phase).sin();
            dev.offset + dev.gain * base + noise.sample(rng)
        })
        .collect()
}

/// Generate one device's rendering of one activity (for tests/analysis).
pub fn activity_window(
    cfg: &SensorsConfig,
    dataset_seed: u64,
    user: usize,
    class: usize,
    sample_seed: u64,
) -> Vec<f32> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(derive(dataset_seed, sample_seed));
    window(
        &activity(dataset_seed, class),
        &device(dataset_seed, user),
        cfg.window,
        cfg.noise_std,
        &mut rng,
    )
}

/// Generate the full federated dataset. Deterministic per `(cfg, seed)`.
/// Inputs have shape `[N, window]`.
pub fn generate(cfg: &SensorsConfig, seed: u64) -> FederatedDataset {
    assert!(cfg.classes >= 2 && cfg.window >= 4);
    assert!(cfg.samples_per_user.0 >= 2);
    let activities: Vec<Activity> = (0..cfg.classes).map(|c| activity(seed, c)).collect();
    let clients: Vec<ClientData> = (0..cfg.users)
        .map(|user| {
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(derive(seed, 5_000_000 + user as u64));
            let dev = device(seed, user);
            let n = rng.random_range(cfg.samples_per_user.0..=cfg.samples_per_user.1);
            let mix: Vec<f64> = match cfg.label_skew_alpha {
                Some(a) => dirichlet_proportions(a, cfg.classes, &mut rng),
                None => vec![1.0 / cfg.classes as f64; cfg.classes],
            };
            let mut xs = Vec::with_capacity(n * cfg.window);
            let mut ys = Vec::with_capacity(n);
            for _ in 0..n {
                let mut r = rng.random_range(0.0..1.0f64);
                let mut class = cfg.classes - 1;
                for (c, &p) in mix.iter().enumerate() {
                    if r < p {
                        class = c;
                        break;
                    }
                    r -= p;
                }
                xs.extend(window(
                    &activities[class],
                    &dev,
                    cfg.window,
                    cfg.noise_std,
                    &mut rng,
                ));
                ys.push(class as u32);
            }
            let (train_idx, test_idx) = train_test_split(n, cfg.train_split, &mut rng);
            let take = |idx: &[usize]| {
                let mut x = Vec::with_capacity(idx.len() * cfg.window);
                let mut y = Vec::with_capacity(idx.len());
                for &i in idx {
                    x.extend_from_slice(&xs[i * cfg.window..(i + 1) * cfg.window]);
                    y.push(ys[i]);
                }
                (Tensor::from_vec(vec![idx.len(), cfg.window], x), y)
            };
            let (train_x, train_y) = take(&train_idx);
            let (test_x, test_y) = take(&test_idx);
            ClientData {
                train_x,
                train_y,
                test_x,
                test_y,
            }
        })
        .collect();
    FederatedDataset {
        meta: DatasetMeta {
            name: format!("synthetic-sensors-{}act-{}w", cfg.classes, cfg.window),
            classes: cfg.classes,
            users: cfg.users,
            train_split: cfg.train_split,
            min_samples_per_user: cfg.samples_per_user.0,
            task: TaskKind::Classification,
            sample_shape: vec![cfg.window],
        },
        clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SensorsConfig {
        SensorsConfig {
            classes: 3,
            window: 16,
            users: 8,
            samples_per_user: (8, 14),
            ..SensorsConfig::default()
        }
    }

    #[test]
    fn shapes_and_labels() {
        let ds = generate(&tiny(), 1);
        assert_eq!(ds.num_clients(), 8);
        for c in &ds.clients {
            assert_eq!(c.train_x.shape()[1], 16);
            assert_eq!(c.train_x.shape()[0], c.train_y.len());
            assert!(c.train_y.iter().all(|&y| y < 3));
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny(), 4);
        let b = generate(&tiny(), 4);
        assert_eq!(
            a.clients[3].train_x.as_slice(),
            b.clients[3].train_x.as_slice()
        );
    }

    #[test]
    fn devices_calibrate_differently() {
        let cfg = tiny();
        let a = activity_window(&cfg, 1, 0, 1, 9);
        let b = activity_window(&cfg, 1, 5, 1, 9);
        assert_ne!(a, b, "device calibration must alter the waveform");
    }

    #[test]
    fn activities_have_distinct_signatures() {
        let cfg = SensorsConfig {
            noise_std: 0.0,
            ..tiny()
        };
        let a = activity_window(&cfg, 1, 0, 0, 9);
        let b = activity_window(&cfg, 1, 0, 2, 9);
        // different base frequency → different number of zero crossings
        let crossings = |w: &[f32]| {
            w.windows(2)
                .filter(|p| (p[0] >= 0.0) != (p[1] >= 0.0))
                .count()
        };
        assert_ne!(crossings(&a), crossings(&b));
    }

    #[test]
    fn an_mlp_learns_the_pooled_task() {
        let cfg = SensorsConfig {
            users: 6,
            samples_per_user: (30, 40),
            label_skew_alpha: None,
            noise_std: 0.1,
            ..tiny()
        };
        let ds = generate(&cfg, 7);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in &ds.clients {
            xs.extend_from_slice(c.train_x.as_slice());
            ys.extend_from_slice(&c.train_y);
        }
        let x = Tensor::from_vec(vec![ys.len(), 16], xs);
        let mut rng = tinynn::rng::seeded(0);
        let mut model = tinynn::zoo::mlp(16, &[32], 3, &mut rng);
        let mut sgd = tinynn::Sgd::new(0.1);
        for _ in 0..120 {
            let (_, g) = model.loss_and_grads(&x, &ys);
            sgd.step(&mut model, &g);
        }
        let (_, acc) = model.evaluate(&x, &ys);
        assert!(acc > 0.65, "sensor task should beat chance (0.33): {acc}");
    }
}
