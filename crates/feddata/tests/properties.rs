//! Property-based tests of the dataset generators: structural invariants
//! that must hold for every configuration and seed.

use feddata::blobs::BlobsConfig;
use feddata::sensors::SensorsConfig;
use feddata::shakespeare::ShakespeareConfig;
use feddata::{FederatedDataset, TaskKind};
use proptest::prelude::*;

/// Invariants every federated dataset must satisfy.
fn check_dataset(ds: &FederatedDataset) -> Result<(), TestCaseError> {
    prop_assert_eq!(ds.clients.len(), ds.meta.users);
    let stride: usize = ds.meta.sample_shape.iter().product();
    for c in &ds.clients {
        // shapes line up with the metadata
        prop_assert_eq!(
            c.train_x.shape()[1..].iter().product::<usize>(),
            stride,
            "train sample shape mismatch"
        );
        // labels within range, one target row per prediction position
        let rows_per_sample = match ds.meta.task {
            TaskKind::Classification => 1,
            TaskKind::SequencePrediction => ds.meta.sample_shape[0],
        };
        prop_assert_eq!(c.train_y.len(), c.train_len() * rows_per_sample);
        prop_assert_eq!(c.test_y.len(), c.test_len() * rows_per_sample);
        for &y in c.train_y.iter().chain(&c.test_y) {
            prop_assert!((y as usize) < ds.meta.classes);
        }
        // everyone can train and validate
        prop_assert!(c.train_len() >= 1);
        prop_assert!(c.test_len() >= 1);
        // all features are finite
        for &v in c.train_x.as_slice().iter().chain(c.test_x.as_slice()) {
            prop_assert!(v.is_finite());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blobs_invariants(
        users in 1usize..12,
        classes in 2usize..6,
        dim in 1usize..10,
        alpha in prop::option::of(0.1f64..5.0),
        seed in any::<u64>(),
    ) {
        let ds = feddata::blobs::generate(
            &BlobsConfig {
                users,
                classes,
                dim,
                label_skew_alpha: alpha,
                samples_per_user: (4, 10),
                ..BlobsConfig::default()
            },
            seed,
        );
        check_dataset(&ds)?;
    }

    #[test]
    fn sensors_invariants(
        users in 1usize..10,
        classes in 2usize..6,
        window in 4usize..40,
        seed in any::<u64>(),
    ) {
        let ds = feddata::sensors::generate(
            &SensorsConfig {
                users,
                classes,
                window,
                samples_per_user: (4, 8),
                ..SensorsConfig::default()
            },
            seed,
        );
        check_dataset(&ds)?;
    }

    #[test]
    fn shakespeare_invariants(
        users in 1usize..8,
        vocab in 4usize..20,
        seq_len in 2usize..12,
        seed in any::<u64>(),
    ) {
        let ds = feddata::shakespeare::generate(
            &ShakespeareConfig {
                users,
                vocab,
                seq_len,
                samples_per_user: (3, 6),
                ..ShakespeareConfig::scaled()
            },
            seed,
        );
        check_dataset(&ds)?;
        // next-char structure: target t equals input t+1 inside a sequence
        let c = &ds.clients[0];
        let n = c.train_len();
        for i in 0..n {
            let xs = &c.train_x.as_slice()[i * seq_len..(i + 1) * seq_len];
            let ys = &c.train_y[i * seq_len..(i + 1) * seq_len];
            for t in 0..seq_len - 1 {
                prop_assert_eq!(xs[t + 1] as u32, ys[t]);
            }
        }
    }

    #[test]
    fn femnist_invariants(
        users in 1usize..8,
        classes in 2usize..8,
        seed in any::<u64>(),
    ) {
        let ds = feddata::femnist::generate(
            &feddata::femnist::FemnistConfig {
                users,
                classes,
                img: 8,
                samples_per_user: (4, 8),
                strokes: 3,
                ..feddata::femnist::FemnistConfig::scaled()
            },
            seed,
        );
        check_dataset(&ds)?;
        // pixel values stay in [0, 1]
        for c in &ds.clients {
            for &v in c.train_x.as_slice() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
