//! Stochastic gradient descent with optional momentum and weight decay —
//! the optimizer used by both FedAvg and the learning tangle (the paper
//! trains with plain SGD at fixed learning rates).

use crate::model::{Gradients, Sequential};
use crate::tensor::Tensor;

/// SGD optimizer: `v ← μ·v + g + wd·p; p ← p − lr·v`.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Option<Vec<Vec<Tensor>>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: None,
        }
    }

    /// Enable classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enable L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replace the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step to `model` using `grads`.
    pub fn step(&mut self, model: &mut Sequential, grads: &Gradients) {
        let use_momentum = self.momentum > 0.0;
        if use_momentum && self.velocity.is_none() {
            self.velocity = Some(
                grads
                    .by_layer
                    .iter()
                    .map(|l| l.iter().map(|g| Tensor::zeros(g.shape())).collect())
                    .collect(),
            );
        }
        for (li, layer) in model.layers_mut().iter_mut().enumerate() {
            let params = layer.params_mut();
            for (pi, p) in params.into_iter().enumerate() {
                let g = &grads.by_layer[li][pi];
                if use_momentum {
                    let v = &mut self.velocity.as_mut().expect("velocity initialized")[li][pi];
                    for ((vv, pv), &gv) in v
                        .as_mut_slice()
                        .iter_mut()
                        .zip(p.as_mut_slice().iter_mut())
                        .zip(g.as_slice())
                    {
                        *vv = self.momentum * *vv + gv + self.weight_decay * *pv;
                        *pv -= self.lr * *vv;
                    }
                } else {
                    for (pv, &gv) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                        *pv -= self.lr * (gv + self.weight_decay * *pv);
                    }
                }
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba): adaptive per-parameter step sizes. Not
/// used by the paper's experiments (which are plain SGD) but provided for
/// downstream users and the meta-learning outlook (§VI).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Option<Vec<Vec<Tensor>>>,
    v: Option<Vec<Vec<Tensor>>>,
}

impl Adam {
    /// Adam with the canonical defaults `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// Override the exponential-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Apply one update step to `model` using `grads`.
    pub fn step(&mut self, model: &mut Sequential, grads: &Gradients) {
        let zeros = || -> Vec<Vec<Tensor>> {
            grads
                .by_layer
                .iter()
                .map(|l| l.iter().map(|g| Tensor::zeros(g.shape())).collect())
                .collect()
        };
        if self.m.is_none() {
            self.m = Some(zeros());
            self.v = Some(zeros());
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (m, v) = (
            self.m.as_mut().expect("initialized"),
            self.v.as_mut().expect("initialized"),
        );
        for (li, layer) in model.layers_mut().iter_mut().enumerate() {
            for (pi, p) in layer.params_mut().into_iter().enumerate() {
                let g = &grads.by_layer[li][pi];
                let mv = &mut m[li][pi];
                let vv = &mut v[li][pi];
                for (((pv, &gv), mvv), vvv) in p
                    .as_mut_slice()
                    .iter_mut()
                    .zip(g.as_slice())
                    .zip(mv.as_mut_slice().iter_mut())
                    .zip(vv.as_mut_slice().iter_mut())
                {
                    *mvv = self.beta1 * *mvv + (1.0 - self.beta1) * gv;
                    *vvv = self.beta2 * *vvv + (1.0 - self.beta2) * gv * gv;
                    let mhat = *mvv / bc1;
                    let vhat = *vvv / bc2;
                    *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::model::Sequential;

    fn one_param_model(w: f32) -> Sequential {
        Sequential::new(vec![Box::new(Dense::new(
            Tensor::from_vec(vec![1, 1], vec![w]),
            Tensor::zeros(&[1]),
        ))])
    }

    fn unit_grads(m: &Sequential, g: f32) -> Gradients {
        let mut grads = Gradients::zeros_like(m);
        grads.by_layer[0][0].as_mut_slice()[0] = g;
        grads
    }

    #[test]
    fn plain_sgd_step() {
        let mut m = one_param_model(1.0);
        let g = unit_grads(&m, 0.5);
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut m, &g);
        assert!((m.layers()[0].params()[0].as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut m = one_param_model(0.0);
        let mut sgd = Sgd::new(1.0).with_momentum(0.5);
        let g = unit_grads(&m, 1.0);
        sgd.step(&mut m, &g); // v=1, p=-1
        let g = unit_grads(&m, 1.0);
        sgd.step(&mut m, &g); // v=1.5, p=-2.5
        assert!((m.layers()[0].params()[0].as_slice()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut m = one_param_model(10.0);
        let mut sgd = Sgd::new(0.1).with_weight_decay(0.1);
        let g = unit_grads(&m, 0.0);
        sgd.step(&mut m, &g);
        // p -= lr * wd * p = 10 - 0.1*0.1*10 = 9.9
        assert!((m.layers()[0].params()[0].as_slice()[0] - 9.9).abs() < 1e-6);
    }

    #[test]
    fn set_lr() {
        let mut sgd = Sgd::new(0.1);
        sgd.set_lr(0.01);
        assert_eq!(sgd.lr(), 0.01);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With a constant gradient g, the first Adam step is -lr * sign(g)
        // (bias correction makes mhat/sqrt(vhat) = 1).
        let mut m = one_param_model(0.0);
        let g = unit_grads(&m, 0.5);
        let mut adam = Adam::new(0.1);
        adam.step(&mut m, &g);
        let p = m.layers()[0].params()[0].as_slice()[0];
        assert!((p + 0.1).abs() < 1e-4, "first step should be -lr: {p}");
    }

    #[test]
    fn adam_trains_a_network() {
        use crate::activations::Relu;
        use crate::rng::seeded;
        let mut rng = seeded(3);
        let mut model = Sequential::new(vec![
            Box::new(Dense::he(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::xavier(8, 3, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[6, 4], |i| ((i * 29 % 13) as f32 - 6.0) * 0.1);
        let t = [0u32, 1, 2, 0, 1, 2];
        let mut adam = Adam::new(0.05);
        let (l0, g) = model.loss_and_grads(&x, &t);
        adam.step(&mut model, &g);
        for _ in 0..60 {
            let (_, g) = model.loss_and_grads(&x, &t);
            adam.step(&mut model, &g);
        }
        let (l1, _) = model.loss_and_grads(&x, &t);
        assert!(l1 < l0 * 0.3, "adam should cut loss sharply: {l0} -> {l1}");
    }

    #[test]
    fn adam_adapts_per_coordinate() {
        // Two parameters, very different gradient magnitudes: Adam's step
        // sizes should be comparable (both near lr) after a few steps.
        let w = Tensor::from_vec(vec![1, 2], vec![0.0, 0.0]);
        let b = Tensor::zeros(&[2]);
        let mut m = Sequential::new(vec![Box::new(Dense::new(w, b))]);
        let mut grads = Gradients::zeros_like(&m);
        grads.by_layer[0][0].as_mut_slice()[0] = 100.0;
        grads.by_layer[0][0].as_mut_slice()[1] = 0.01;
        let mut adam = Adam::new(0.1);
        for _ in 0..5 {
            adam.step(&mut m, &grads);
        }
        let p = m.layers()[0].params()[0].as_slice().to_vec();
        assert!(
            (p[0] - p[1]).abs() < 0.1,
            "steps should be magnitude-invariant: {p:?}"
        );
    }
}
