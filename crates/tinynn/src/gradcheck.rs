//! Numerical gradient checking.
//!
//! Every layer's analytic backward pass is validated against central finite
//! differences. This is the correctness anchor for the whole ML substrate:
//! if these checks pass, the convergence results downstream are trustworthy.

use crate::model::{Gradients, Sequential};
use crate::params::ParamVec;
use rand::RngExt as _;

/// Flatten a [`Gradients`] container in the same order as
/// [`ParamVec::from_model`].
pub fn flatten_grads(grads: &Gradients) -> Vec<f32> {
    let mut out = Vec::new();
    for layer in &grads.by_layer {
        for g in layer {
            out.extend_from_slice(g.as_slice());
        }
    }
    out
}

/// Result of a gradient check: the worst relative error observed and the
/// flat parameter index where it occurred.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// max |analytic − numeric| / max(1, |analytic| + |numeric|)
    pub max_rel_err: f32,
    /// Flat parameter index of the worst error.
    pub worst_index: usize,
    /// Number of parameter coordinates checked.
    pub checked: usize,
}

/// Compare analytic gradients to central finite differences on a random
/// sample of `sample` parameter coordinates (or all, if fewer).
///
/// Layers with train-time stochasticity (dropout) must not be present —
/// the check evaluates the loss several times and requires determinism.
pub fn check_gradients(
    model: &mut Sequential,
    x: &crate::tensor::Tensor,
    targets: &[u32],
    eps: f32,
    sample: usize,
    seed: u64,
) -> GradCheckReport {
    check_gradients_with(model, x, targets, eps, sample, seed, |m, x, t| {
        m.loss_and_grads(x, t)
    })
}

/// [`check_gradients`] against the chunked/parallel accumulation path:
/// analytic gradients and finite-difference losses both come from
/// [`Sequential::loss_and_grads_chunked`] with parallel execution, so this
/// validates the per-chunk weighting and the fixed-order tree reduction —
/// not just the single-batch backward pass.
pub fn check_gradients_chunked(
    model: &mut Sequential,
    x: &crate::tensor::Tensor,
    targets: &[u32],
    eps: f32,
    sample: usize,
    seed: u64,
    chunks: usize,
) -> GradCheckReport {
    check_gradients_with(model, x, targets, eps, sample, seed, move |m, x, t| {
        m.loss_and_grads_chunked(x, t, chunks, true)
    })
}

fn check_gradients_with(
    model: &mut Sequential,
    x: &crate::tensor::Tensor,
    targets: &[u32],
    eps: f32,
    sample: usize,
    seed: u64,
    eval: impl Fn(&Sequential, &crate::tensor::Tensor, &[u32]) -> (f32, Gradients),
) -> GradCheckReport {
    let (_, grads) = eval(model, x, targets);
    let analytic = flatten_grads(&grads);
    let base = ParamVec::from_model(model);
    let n = base.len();
    let mut rng = crate::rng::seeded(seed);
    let indices: Vec<usize> = if sample >= n {
        (0..n).collect()
    } else {
        (0..sample).map(|_| rng.random_range(0..n)).collect()
    };
    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        worst_index: 0,
        checked: indices.len(),
    };
    for &i in &indices {
        let mut plus = base.clone();
        plus.0[i] += eps;
        plus.assign_to(model);
        let (lp, _) = eval(model, x, targets);
        let mut minus = base.clone();
        minus.0[i] -= eps;
        minus.assign_to(model);
        let (lm, _) = eval(model, x, targets);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic[i];
        let rel = (a - numeric).abs() / (a.abs() + numeric.abs()).max(1.0);
        if rel > report.max_rel_err {
            report.max_rel_err = rel;
            report.worst_index = i;
        }
    }
    base.assign_to(model);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activations::{Relu, Tanh};
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::embedding::Embedding;
    use crate::lstm::Lstm;
    use crate::pool::MaxPool2d;
    use crate::reshape::Flatten;
    use crate::rng::seeded;
    use crate::tensor::Tensor;

    const TOL: f32 = 2e-2; // f32 finite differences are noisy; structure errors are orders of magnitude larger

    #[test]
    fn dense_gradients() {
        let mut rng = seeded(10);
        let mut m = Sequential::new(vec![
            Box::new(Dense::xavier(5, 7, &mut rng)),
            Box::new(Tanh::new()),
            Box::new(Dense::xavier(7, 3, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[4, 5], |i| ((i * 13 % 7) as f32 - 3.0) * 0.3);
        let t = [0u32, 1, 2, 1];
        let r = check_gradients(&mut m, &x, &t, 1e-2, 60, 1);
        assert!(r.max_rel_err < TOL, "dense grad check failed: {r:?}");
    }

    #[test]
    fn relu_network_gradients() {
        let mut rng = seeded(11);
        let mut m = Sequential::new(vec![
            Box::new(Dense::he(4, 6, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::xavier(6, 2, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[3, 4], |i| ((i * 7 % 11) as f32 - 5.0) * 0.25);
        let t = [0u32, 1, 0];
        let r = check_gradients(&mut m, &x, &t, 1e-2, 40, 2);
        assert!(r.max_rel_err < TOL, "relu grad check failed: {r:?}");
    }

    #[test]
    fn conv_pool_gradients() {
        let mut rng = seeded(12);
        let mut m = Sequential::new(vec![
            Box::new(Conv2d::he(1, 2, 3, 1, &mut rng)),
            Box::new(Tanh::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Dense::xavier(2 * 3 * 3, 3, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[2, 1, 6, 6], |i| ((i * 31 % 17) as f32 - 8.0) * 0.1);
        let t = [0u32, 2];
        let r = check_gradients(&mut m, &x, &t, 1e-2, 60, 3);
        assert!(r.max_rel_err < TOL, "conv grad check failed: {r:?}");
    }

    #[test]
    fn lstm_gradients() {
        let mut rng = seeded(13);
        let mut m = Sequential::new(vec![
            Box::new(Lstm::init(3, 4, &mut rng)),
            Box::new(Dense::xavier(4, 3, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[2, 5, 3], |i| ((i * 29 % 13) as f32 - 6.0) * 0.15);
        // sequence output: 2*5 = 10 target rows
        let t: Vec<u32> = (0..10).map(|i| (i % 3) as u32).collect();
        let r = check_gradients(&mut m, &x, &t, 1e-2, 80, 4);
        assert!(r.max_rel_err < TOL, "lstm grad check failed: {r:?}");
    }

    #[test]
    fn stacked_lstm_gradients() {
        let mut rng = seeded(14);
        let mut m = Sequential::new(vec![
            Box::new(Lstm::init(2, 3, &mut rng)),
            Box::new(Lstm::init(3, 3, &mut rng)),
            Box::new(Dense::xavier(3, 2, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[1, 4, 2], |i| ((i * 5 % 9) as f32 - 4.0) * 0.2);
        let t: Vec<u32> = (0..4).map(|i| (i % 2) as u32).collect();
        let r = check_gradients(&mut m, &x, &t, 1e-2, 60, 5);
        assert!(r.max_rel_err < TOL, "stacked lstm grad check failed: {r:?}");
    }

    #[test]
    fn chunked_accumulation_gradients() {
        // Validate the per-chunk weighted tree reduction end-to-end, with a
        // chunk count that does not divide the batch. Smooth activations keep
        // finite differences clean; the conv/pool backward is covered above.
        let mut rng = seeded(16);
        let mut m = Sequential::new(vec![
            Box::new(Dense::xavier(5, 8, &mut rng)),
            Box::new(Tanh::new()),
            Box::new(Dense::xavier(8, 4, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[7, 5], |i| ((i * 17 % 23) as f32 - 11.0) * 0.08);
        let t: Vec<u32> = (0..7).map(|i| (i % 4) as u32).collect();
        let r = check_gradients_chunked(&mut m, &x, &t, 1e-2, 60, 7, 3);
        assert!(r.max_rel_err < TOL, "chunked grad check failed: {r:?}");
    }

    #[test]
    fn embedding_lstm_gradients() {
        let mut rng = seeded(15);
        let mut m = Sequential::new(vec![
            Box::new(Embedding::init(6, 4, &mut rng)),
            Box::new(Lstm::init(4, 5, &mut rng)),
            Box::new(Dense::xavier(5, 6, &mut rng)),
        ]);
        let x = Tensor::from_vec(vec![2, 3], vec![0., 3., 5., 1., 2., 4.]);
        let t: Vec<u32> = vec![3, 5, 0, 2, 4, 1];
        let r = check_gradients(&mut m, &x, &t, 1e-2, 60, 6);
        assert!(r.max_rel_err < TOL, "embedding grad check failed: {r:?}");
    }
}
