//! Binary wire format for parameter vectors.
//!
//! In a deployed tangle every transaction is broadcast between peers, so the
//! payload needs a compact, versioned encoding. The format is:
//!
//! ```text
//! magic  b"LTPV"      (4 bytes)
//! version u8          (currently 1)
//! count  u32 LE       (number of f32 values)
//! values f32 LE × count
//! checksum u64 LE     (FNV-1a over the value bytes)
//! ```

use crate::params::ParamVec;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"LTPV";
const VERSION: u8 = 1;

/// Errors produced while decoding a parameter payload.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// Payload too short for the declared structure.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Checksum mismatch (corrupt or tampered payload).
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encode a parameter vector into its wire representation.
pub fn encode(params: &ParamVec) -> Bytes {
    let n = params.len();
    let mut buf = BytesMut::with_capacity(4 + 1 + 4 + n * 4 + 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(n as u32);
    let start = buf.len();
    for &v in params.as_slice() {
        buf.put_f32_le(v);
    }
    let checksum = fnv1a(&buf[start..]);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decode a wire payload back into a parameter vector.
pub fn decode(mut payload: &[u8]) -> Result<ParamVec, WireError> {
    if payload.len() < 4 + 1 + 4 + 8 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    payload.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u8();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let count = payload.get_u32_le() as usize;
    if payload.len() != count * 4 + 8 {
        return Err(WireError::Truncated);
    }
    let value_bytes = &payload[..count * 4];
    let expect = fnv1a(value_bytes);
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(payload.get_f32_le());
    }
    let checksum = payload.get_u64_le();
    if checksum != expect {
        return Err(WireError::BadChecksum);
    }
    Ok(ParamVec(values))
}

/// 8-bit linear quantization of a parameter payload: 4× smaller on the
/// wire at a bounded precision cost.
///
/// The paper notes (§III-C) that shipping full parameters is costlier than
/// shipping gradients because "compression is more effective on gradients";
/// this gives full-parameter transactions a compressed representation:
///
/// ```text
/// magic  b"LTQ1"    version u8 (1)    count u32 LE
/// min    f32 LE     scale f32 LE      values u8 × count
/// checksum u64 LE   (FNV-1a over the value bytes)
/// ```
pub mod quantized {
    use super::{fnv1a, WireError};
    use crate::params::ParamVec;
    use bytes::{Buf, BufMut, Bytes, BytesMut};

    const MAGIC: &[u8; 4] = b"LTQ1";
    const VERSION: u8 = 1;

    /// Encode with 8-bit linear quantization over `[min, max]` of the
    /// payload. The maximum absolute reconstruction error is
    /// `(max − min) / 510` (half a quantization step).
    pub fn encode(params: &ParamVec) -> Bytes {
        let n = params.len();
        let (min, max) = params
            .as_slice()
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let (min, scale) = if n == 0 || max <= min {
            (if n == 0 { 0.0 } else { min }, 0.0)
        } else {
            (min, (max - min) / 255.0)
        };
        let mut buf = BytesMut::with_capacity(4 + 1 + 4 + 8 + n + 8);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32_le(n as u32);
        buf.put_f32_le(min);
        buf.put_f32_le(scale);
        let start = buf.len();
        for &v in params.as_slice() {
            let q = if scale == 0.0 {
                0u8
            } else {
                (((v - min) / scale).round().clamp(0.0, 255.0)) as u8
            };
            buf.put_u8(q);
        }
        let checksum = fnv1a(&buf[start..]);
        buf.put_u64_le(checksum);
        buf.freeze()
    }

    /// Decode a quantized payload back to (approximate) parameters.
    pub fn decode(mut payload: &[u8]) -> Result<ParamVec, WireError> {
        if payload.len() < 4 + 1 + 4 + 8 + 8 {
            return Err(WireError::Truncated);
        }
        let mut magic = [0u8; 4];
        payload.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = payload.get_u8();
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let count = payload.get_u32_le() as usize;
        let min = payload.get_f32_le();
        let scale = payload.get_f32_le();
        if payload.len() != count + 8 {
            return Err(WireError::Truncated);
        }
        let expect = fnv1a(&payload[..count]);
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let q = payload.get_u8();
            values.push(min + q as f32 * scale);
        }
        if payload.get_u64_le() != expect {
            return Err(WireError::BadChecksum);
        }
        Ok(ParamVec(values))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_error_bounded() {
            let p = ParamVec((0..1000).map(|i| (i as f32 * 0.37).sin() * 2.0).collect());
            let enc = encode(&p);
            let dec = decode(&enc).unwrap();
            let bound = 4.0 / 510.0 + 1e-5; // range is [-2, 2]
            for (a, b) in p.as_slice().iter().zip(dec.as_slice()) {
                assert!((a - b).abs() <= bound, "{a} vs {b}");
            }
        }

        #[test]
        fn four_times_smaller_than_full_precision() {
            let p = ParamVec(vec![1.0; 10_000]);
            let full = super::super::encode(&p).len();
            let quant = encode(&p).len();
            assert!(quant * 3 < full, "quantized {quant} vs full {full}");
        }

        #[test]
        fn constant_payload_is_exact() {
            let p = ParamVec(vec![3.25; 64]);
            let dec = decode(&encode(&p)).unwrap();
            assert_eq!(dec.as_slice(), p.as_slice());
        }

        #[test]
        fn empty_roundtrip() {
            let p = ParamVec(Vec::new());
            assert_eq!(decode(&encode(&p)).unwrap(), p);
        }

        #[test]
        fn corruption_detected() {
            let p = ParamVec(vec![1.0, -1.0, 0.5]);
            let mut enc = encode(&p).to_vec();
            let idx = enc.len() - 10; // inside the value region
            enc[idx] ^= 0xFF;
            assert_eq!(decode(&enc), Err(WireError::BadChecksum));
        }

        #[test]
        fn wrong_magic_rejected() {
            let p = ParamVec(vec![1.0]);
            let mut enc = encode(&p).to_vec();
            enc[0] = b'X';
            assert_eq!(decode(&enc), Err(WireError::BadMagic));
        }

        #[test]
        fn extremes_map_to_end_points() {
            let p = ParamVec(vec![-5.0, 5.0, 0.0]);
            let dec = decode(&encode(&p)).unwrap();
            assert_eq!(dec.as_slice()[0], -5.0);
            assert_eq!(dec.as_slice()[1], 5.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = ParamVec(vec![1.0, -2.5, 3.25, f32::MIN_POSITIVE]);
        let enc = encode(&p);
        assert_eq!(decode(&enc).unwrap(), p);
    }

    #[test]
    fn empty_roundtrip() {
        let p = ParamVec(Vec::new());
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn truncated_rejected() {
        let p = ParamVec(vec![1.0; 8]);
        let enc = encode(&p);
        assert_eq!(decode(&enc[..enc.len() - 1]), Err(WireError::Truncated));
        assert_eq!(decode(&enc[..4]), Err(WireError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let p = ParamVec(vec![1.0]);
        let mut enc = encode(&p).to_vec();
        enc[0] = b'X';
        assert_eq!(decode(&enc), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let p = ParamVec(vec![1.0]);
        let mut enc = encode(&p).to_vec();
        enc[4] = 99;
        assert_eq!(decode(&enc), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn corruption_detected() {
        let p = ParamVec(vec![1.0, 2.0, 3.0]);
        let mut enc = encode(&p).to_vec();
        enc[10] ^= 0x40; // flip a bit inside the value region
        assert_eq!(decode(&enc), Err(WireError::BadChecksum));
    }

    #[test]
    fn overhead_is_constant_17_bytes() {
        let p = ParamVec(vec![0.0; 100]);
        assert_eq!(encode(&p).len(), 100 * 4 + 17);
    }
}
