//! Reference model builders matching the paper's Table I architectures
//! (at configurable width, so that 200-round sweeps are feasible on CPU).

use crate::activations::Relu;
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::lstm::Lstm;
use crate::model::Sequential;
use crate::pool::MaxPool2d;
use crate::reshape::Flatten;
use rand::Rng;

/// Multi-layer perceptron: `in -> hidden... -> classes` with ReLU between.
pub fn mlp(in_dim: usize, hidden: &[usize], classes: usize, rng: &mut impl Rng) -> Sequential {
    let mut layers: Vec<Box<dyn crate::Layer>> = Vec::new();
    let mut d = in_dim;
    for &h in hidden {
        layers.push(Box::new(Dense::he(d, h, rng)));
        layers.push(Box::new(Relu::new()));
        d = h;
    }
    layers.push(Box::new(Dense::xavier(d, classes, rng)));
    Sequential::new(layers)
}

/// Width configuration for [`femnist_cnn`].
#[derive(Clone, Copy, Debug)]
pub struct CnnConfig {
    /// Channels after the first convolution.
    pub conv1: usize,
    /// Channels after the second convolution.
    pub conv2: usize,
    /// Width of the dense layer before the classifier.
    pub dense: usize,
}

impl CnnConfig {
    /// Paper-scale widths (LEAF's FEMNIST CNN: 32/64 conv, 2048 dense is
    /// impractically wide here; 32/64/128 keeps the architecture).
    pub fn paper() -> Self {
        Self {
            conv1: 32,
            conv2: 64,
            dense: 128,
        }
    }

    /// Scaled-down widths for fast CPU sweeps (default in experiments).
    pub fn scaled() -> Self {
        Self {
            conv1: 6,
            conv2: 12,
            dense: 48,
        }
    }
}

/// The FEMNIST CNN: two 3×3 conv + ReLU + 2×2 max-pool blocks, then a
/// dense ReLU layer and a linear classifier. `img` is the (square) input
/// side length; it must be divisible by 4.
pub fn femnist_cnn(img: usize, classes: usize, cfg: CnnConfig, rng: &mut impl Rng) -> Sequential {
    assert_eq!(
        img % 4,
        0,
        "image side must be divisible by 4 (two 2x2 pools)"
    );
    let side = img / 4;
    Sequential::new(vec![
        Box::new(Conv2d::he(1, cfg.conv1, 3, 1, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Conv2d::he(cfg.conv1, cfg.conv2, 3, 1, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Dense::he(cfg.conv2 * side * side, cfg.dense, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::xavier(cfg.dense, classes, rng)),
    ])
}

/// The Shakespeare next-character model: embedding, `layers` stacked LSTMs,
/// and a per-timestep linear decoder back to the vocabulary.
pub fn char_lstm(
    vocab: usize,
    embed: usize,
    hidden: usize,
    layers: usize,
    rng: &mut impl Rng,
) -> Sequential {
    assert!(layers >= 1, "need at least one LSTM layer");
    let mut stack: Vec<Box<dyn crate::Layer>> = vec![Box::new(Embedding::init(vocab, embed, rng))];
    let mut d = embed;
    for _ in 0..layers {
        stack.push(Box::new(Lstm::init(d, hidden, rng)));
        d = hidden;
    }
    stack.push(Box::new(Dense::xavier(hidden, vocab, rng)));
    Sequential::new(stack)
}

/// A serializable architecture descriptor — lets ledgers, checkpoints,
/// and experiment configs record *which* model their parameter vectors
/// belong to, and rebuild it anywhere.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ModelSpec {
    /// [`mlp`]
    Mlp {
        /// Input feature width.
        in_dim: usize,
        /// Hidden layer widths.
        hidden: Vec<usize>,
        /// Output classes.
        classes: usize,
    },
    /// [`femnist_cnn`]
    FemnistCnn {
        /// Image side length (divisible by 4).
        img: usize,
        /// Output classes.
        classes: usize,
        /// First conv width.
        conv1: usize,
        /// Second conv width.
        conv2: usize,
        /// Dense layer width.
        dense: usize,
    },
    /// [`char_lstm`]
    CharLstm {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding width.
        embed: usize,
        /// LSTM hidden width.
        hidden: usize,
        /// Stacked LSTM layers.
        layers: usize,
    },
}

impl ModelSpec {
    /// Instantiate the architecture with a deterministic initialization.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = crate::rng::seeded(seed);
        match self {
            ModelSpec::Mlp {
                in_dim,
                hidden,
                classes,
            } => mlp(*in_dim, hidden, *classes, &mut rng),
            ModelSpec::FemnistCnn {
                img,
                classes,
                conv1,
                conv2,
                dense,
            } => femnist_cnn(
                *img,
                *classes,
                CnnConfig {
                    conv1: *conv1,
                    conv2: *conv2,
                    dense: *dense,
                },
                &mut rng,
            ),
            ModelSpec::CharLstm {
                vocab,
                embed,
                hidden,
                layers,
            } => char_lstm(*vocab, *embed, *hidden, *layers, &mut rng),
        }
    }

    /// Number of learnable scalars the built model will have.
    pub fn param_count(&self) -> usize {
        self.build(0).param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut rng = seeded(0);
        let m = mlp(10, &[16, 8], 4, &mut rng);
        let x = Tensor::zeros(&[2, 10]);
        let y = m.predict(&x);
        assert_eq!(y.shape(), &[2, 4]);
    }

    #[test]
    fn cnn_shapes() {
        let mut rng = seeded(1);
        let m = femnist_cnn(16, 10, CnnConfig::scaled(), &mut rng);
        let x = Tensor::zeros(&[2, 1, 16, 16]);
        let y = m.predict(&x);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn cnn_rejects_bad_image_size() {
        let mut rng = seeded(2);
        femnist_cnn(15, 10, CnnConfig::scaled(), &mut rng);
    }

    #[test]
    fn lstm_model_shapes() {
        let mut rng = seeded(3);
        let m = char_lstm(30, 8, 16, 2, &mut rng);
        let x = Tensor::from_fn(&[2, 5], |i| (i % 30) as f32);
        let y = m.predict(&x);
        assert_eq!(y.shape(), &[2, 5, 30]);
    }

    #[test]
    fn model_spec_builds_matching_architectures() {
        let spec = ModelSpec::Mlp {
            in_dim: 6,
            hidden: vec![10],
            classes: 3,
        };
        let m = spec.build(4);
        let direct = mlp(6, &[10], 3, &mut seeded(4));
        assert_eq!(m.param_count(), direct.param_count());
        assert_eq!(
            crate::ParamVec::from_model(&m),
            crate::ParamVec::from_model(&direct)
        );
        assert_eq!(spec.param_count(), m.param_count());
    }

    #[test]
    fn model_spec_serde_roundtrip() {
        let specs = vec![
            ModelSpec::Mlp {
                in_dim: 4,
                hidden: vec![8, 8],
                classes: 2,
            },
            ModelSpec::FemnistCnn {
                img: 16,
                classes: 10,
                conv1: 6,
                conv2: 12,
                dense: 48,
            },
            ModelSpec::CharLstm {
                vocab: 30,
                embed: 8,
                hidden: 32,
                layers: 2,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let mut r1 = seeded(4);
        let mut r2 = seeded(4);
        let m1 = mlp(4, &[8], 2, &mut r1);
        let m2 = mlp(4, &[8], 2, &mut r2);
        assert_eq!(
            crate::ParamVec::from_model(&m1),
            crate::ParamVec::from_model(&m2)
        );
    }
}
