//! Inverted dropout.

use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use parking_lot_free::AtomicSeed;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at evaluation time
/// the layer is the identity.
///
/// The mask RNG is derived from an internal counter so that repeated calls
/// produce fresh masks while the layer itself stays `&self` during the pass.
pub struct Dropout {
    p: f32,
    counter: AtomicSeed,
}

/// Tiny private helper: an atomic u64 used to derive per-call mask seeds.
mod parking_lot_free {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Monotonic seed source shared across concurrent forward passes.
    pub struct AtomicSeed(AtomicU64);

    impl AtomicSeed {
        /// Start from an explicit seed.
        pub fn new(seed: u64) -> Self {
            Self(AtomicU64::new(seed))
        }

        /// Fetch the next distinct seed.
        pub fn next(&self) -> u64 {
            self.0.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        }
    }
}

impl Dropout {
    /// Create a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Self {
            p,
            counter: AtomicSeed::new(seed),
        }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn forward(&self, x: &Tensor, train: bool) -> (Tensor, Cache) {
        if !train || self.p == 0.0 {
            return (x.clone(), Cache::new(None::<Tensor>));
        }
        use rand::RngExt as _;
        let mut rng = crate::rng::seeded(self.counter.next());
        let keep = 1.0 - self.p;
        let inv = 1.0 / keep;
        let mask = Tensor::from_fn(x.shape(), |_| {
            if rng.random::<f32>() < keep {
                inv
            } else {
                0.0
            }
        });
        let mut y = x.clone();
        for (v, &m) in y.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *v *= m;
        }
        (y, Cache::new(Some(mask)))
    }

    fn backward(&self, _x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let mask = cache.get::<Option<Tensor>>();
        match mask {
            None => (grad_out.clone(), Vec::new()),
            Some(mask) => {
                let mut g = grad_out.clone();
                for (v, &m) in g.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *v *= m;
                }
                (g, Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::from_fn(&[10], |i| i as f32);
        let (y, _) = d.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let d = Dropout::new(0.5, 2);
        let x = Tensor::filled(&[10_000], 1.0);
        let (y, _) = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros = {zeros}");
        // survivors are scaled by 1/(1-p) = 2
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_applies_same_mask() {
        let d = Dropout::new(0.3, 3);
        let x = Tensor::filled(&[1000], 1.0);
        let (y, c) = d.forward(&x, true);
        let g = Tensor::filled(&[1000], 1.0);
        let (gx, _) = d.backward(&x, &c, &g);
        for (a, b) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(a, b, "gradient mask must equal forward mask");
        }
    }

    #[test]
    fn masks_differ_between_calls() {
        let d = Dropout::new(0.5, 4);
        let x = Tensor::filled(&[256], 1.0);
        let (y1, _) = d.forward(&x, true);
        let (y2, _) = d.forward(&x, true);
        assert_ne!(y1.as_slice(), y2.as_slice());
    }
}
