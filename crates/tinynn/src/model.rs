//! [`Sequential`] model composition, gradient containers, and rayon
//! data-parallel training steps.

use crate::layer::{Cache, Layer};
use crate::loss;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Gradients for every parameter of a model, in layer order.
///
/// `by_layer[i][j]` matches `model.layers()[i].params()[j]` in shape.
pub struct Gradients {
    /// Per-layer, per-parameter gradient tensors.
    pub by_layer: Vec<Vec<Tensor>>,
}

impl Gradients {
    /// Zero gradients shaped like `model`'s parameters.
    pub fn zeros_like(model: &Sequential) -> Self {
        Gradients {
            by_layer: model
                .layers
                .iter()
                .map(|l| {
                    l.params()
                        .iter()
                        .map(|p| Tensor::zeros(p.shape()))
                        .collect()
                })
                .collect(),
        }
    }

    /// Accumulate `other` into `self`.
    pub fn add_assign(&mut self, other: &Gradients) {
        assert_eq!(self.by_layer.len(), other.by_layer.len());
        for (a, b) in self.by_layer.iter_mut().zip(&other.by_layer) {
            for (ga, gb) in a.iter_mut().zip(b) {
                ga.add_assign(gb);
            }
        }
    }

    /// Multiply every gradient by `s`.
    pub fn scale(&mut self, s: f32) {
        for layer in &mut self.by_layer {
            for g in layer {
                g.scale(s);
            }
        }
    }

    /// Global L2 norm across all gradients (useful for clipping/diagnostics).
    pub fn l2_norm(&self) -> f32 {
        self.by_layer
            .iter()
            .flat_map(|l| l.iter())
            .map(Tensor::sq_norm)
            .sum::<f32>()
            .sqrt()
    }

    /// Clip the global L2 norm to `max_norm`, returning the pre-clip norm.
    pub fn clip_l2(&mut self, max_norm: f32) -> f32 {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }
}

/// A feed-forward stack of layers executed in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Compose the given layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Borrow the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutably borrow the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Total learnable scalar count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// One-line human-readable architecture summary.
    pub fn summary(&self) -> String {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        format!("{} ({} params)", names.join(" -> "), self.param_count())
    }

    /// Inference-mode forward pass (no caches, dropout disabled).
    pub fn predict(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &self.layers {
            let (out, _) = layer.forward(&cur, false);
            cur = out;
        }
        cur
    }

    /// Training-mode forward pass retaining each layer's input and cache.
    fn forward_train(&self, x: &Tensor) -> (Tensor, Vec<(Tensor, Cache)>) {
        let mut tape = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&cur, true);
            tape.push((cur, cache));
            cur = out;
        }
        (cur, tape)
    }

    /// Backward pass from a loss gradient through the recorded tape.
    fn backward(&self, tape: &[(Tensor, Cache)], grad_out: Tensor) -> Gradients {
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut g = grad_out;
        for (layer, (input, cache)) in self.layers.iter().zip(tape).rev() {
            let (gx, gp) = layer.backward(input, cache, &g);
            grads.push(gp);
            g = gx;
        }
        grads.reverse();
        Gradients { by_layer: grads }
    }

    /// Forward + softmax-CE loss + backward on one batch.
    ///
    /// For sequence models, `targets` holds one class per *row* of the final
    /// logits (i.e. `B·T` entries for `[B, T, V]` output).
    pub fn loss_and_grads(&self, x: &Tensor, targets: &[u32]) -> (f32, Gradients) {
        let (logits, tape) = self.forward_train(x);
        let (loss_value, grad) = loss::softmax_cross_entropy(&logits, targets);
        (loss_value, self.backward(&tape, grad))
    }

    /// Chunked version of [`Self::loss_and_grads`]: the batch is split into
    /// `chunks` contiguous ranges — a pure function of the batch size and
    /// `chunks`, never of thread count — each range runs forward+backward
    /// into its own per-worker gradient buffer scaled by `n_chunk / b`, and
    /// the buffers are combined by a fixed-order pairwise tree reduction.
    ///
    /// `parallel` selects the execution strategy *only*: the ranges, the
    /// per-chunk arithmetic, and the reduction order are identical either
    /// way, so the parallel result is **bit-identical** to the serial one by
    /// construction. (The one exception is [`crate::Dropout`], whose mask
    /// seeds come from a process-global counter and therefore depend on
    /// chunk execution order; no model in [`crate::zoo`] uses dropout.)
    ///
    /// Relative to the unchunked path, chunking re-associates the gradient
    /// average (weighted per-chunk means instead of one batch mean), so
    /// results agree with [`Self::loss_and_grads`] only to float tolerance —
    /// pick `chunks` once per deployment and keep it.
    pub fn loss_and_grads_chunked(
        &self,
        x: &Tensor,
        targets: &[u32],
        chunks: usize,
        parallel: bool,
    ) -> (f32, Gradients) {
        let b = x.shape()[0];
        let chunks = chunks.clamp(1, b.max(1));
        if chunks <= 1 {
            return self.loss_and_grads(x, targets);
        }
        let rows_per_sample = targets.len() / b;
        assert_eq!(
            rows_per_sample * b,
            targets.len(),
            "targets not divisible by batch"
        );
        let step = b.div_ceil(chunks);
        let ranges: Vec<(usize, usize)> = (0..b)
            .step_by(step)
            .map(|s| (s, (s + step).min(b)))
            .collect();
        let work = |&(s, e): &(usize, usize)| -> (f32, Gradients) {
            let xc = x.slice_batch(s, e);
            let tc = &targets[s * rows_per_sample..e * rows_per_sample];
            let (l, mut g) = self.loss_and_grads(&xc, tc);
            let w = (e - s) as f32 / b as f32;
            g.scale(w);
            (l * w, g)
        };
        let mut results: Vec<(f32, Gradients)> = if parallel {
            ranges.par_iter().map(work).collect()
        } else {
            ranges.iter().map(work).collect()
        };
        // Fixed-order pairwise tree reduction: association depends only on
        // the chunk count, not on which thread finished first.
        while results.len() > 1 {
            let mut next = Vec::with_capacity(results.len().div_ceil(2));
            let mut it = results.into_iter();
            while let Some((l1, mut g1)) = it.next() {
                match it.next() {
                    Some((l2, g2)) => {
                        g1.add_assign(&g2);
                        next.push((l1 + l2, g1));
                    }
                    None => next.push((l1, g1)),
                }
            }
            results = next;
        }
        results.pop().expect("at least one chunk")
    }

    /// Data-parallel [`Self::loss_and_grads`]:
    /// [`Self::loss_and_grads_chunked`] with parallel execution.
    pub fn loss_and_grads_parallel(
        &self,
        x: &Tensor,
        targets: &[u32],
        chunks: usize,
    ) -> (f32, Gradients) {
        self.loss_and_grads_chunked(x, targets, chunks, true)
    }

    /// Inference-mode loss and accuracy on a labelled batch.
    pub fn evaluate(&self, x: &Tensor, targets: &[u32]) -> (f32, f32) {
        let logits = self.predict(x);
        (
            loss::cross_entropy(&logits, targets),
            loss::accuracy(&logits, targets),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activations::Relu;
    use crate::dense::Dense;
    use crate::rng::seeded;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        Sequential::new(vec![
            Box::new(Dense::he(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::xavier(8, 3, &mut rng)),
        ])
    }

    #[test]
    fn summary_and_param_count() {
        let m = tiny_model(0);
        assert_eq!(m.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert!(m.summary().contains("Dense -> Relu -> Dense"));
    }

    #[test]
    fn loss_decreases_with_sgd() {
        use crate::optim::Sgd;
        let mut m = tiny_model(1);
        let x = Tensor::from_fn(&[8, 4], |i| ((i * 37 % 17) as f32 - 8.0) * 0.1);
        let t: Vec<u32> = (0..8).map(|i| (i % 3) as u32).collect();
        let mut sgd = Sgd::new(0.5);
        let (l0, g) = m.loss_and_grads(&x, &t);
        sgd.step(&mut m, &g);
        for _ in 0..50 {
            let (_, g) = m.loss_and_grads(&x, &t);
            sgd.step(&mut m, &g);
        }
        let (l1, _) = m.loss_and_grads(&x, &t);
        assert!(l1 < l0 * 0.5, "loss should halve: {l0} -> {l1}");
    }

    #[test]
    fn parallel_grads_match_serial() {
        let m = tiny_model(2);
        let x = Tensor::from_fn(&[16, 4], |i| ((i * 31 % 23) as f32 - 11.0) * 0.05);
        let t: Vec<u32> = (0..16).map(|i| (i % 3) as u32).collect();
        let (ls, gs) = m.loss_and_grads(&x, &t);
        let (lp, gp) = m.loss_and_grads_parallel(&x, &t, 4);
        assert!((ls - lp).abs() < 1e-5, "loss {ls} vs {lp}");
        for (a, b) in gs
            .by_layer
            .iter()
            .flatten()
            .zip(gp.by_layer.iter().flatten())
        {
            for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((va - vb).abs() < 1e-5, "{va} vs {vb}");
            }
        }
    }

    fn assert_bitwise_equal(a: &(f32, Gradients), b: &(f32, Gradients)) {
        assert_eq!(
            a.0.to_bits(),
            b.0.to_bits(),
            "losses differ: {} vs {}",
            a.0,
            b.0
        );
        for (ga, gb) in
            a.1.by_layer
                .iter()
                .flatten()
                .zip(b.1.by_layer.iter().flatten())
        {
            assert_eq!(ga.shape(), gb.shape());
            for (va, vb) in ga.as_slice().iter().zip(gb.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{va} vs {vb}");
            }
        }
    }

    #[test]
    fn chunked_parallel_bitwise_equals_chunked_serial_mlp() {
        let m = tiny_model(7);
        let x = Tensor::from_fn(&[16, 4], |i| ((i * 13 % 29) as f32 - 14.0) * 0.07);
        let t: Vec<u32> = (0..16).map(|i| (i % 3) as u32).collect();
        for chunks in 2..=5 {
            let serial = m.loss_and_grads_chunked(&x, &t, chunks, false);
            let parallel = m.loss_and_grads_chunked(&x, &t, chunks, true);
            assert_bitwise_equal(&serial, &parallel);
        }
    }

    #[test]
    fn chunked_parallel_bitwise_equals_chunked_serial_cnn() {
        let mut rng = seeded(11);
        let m = crate::zoo::femnist_cnn(8, 5, crate::zoo::CnnConfig::scaled(), &mut rng);
        let x = Tensor::from_fn(&[8, 1, 8, 8], |i| ((i * 7 % 19) as f32 - 9.0) * 0.05);
        let t: Vec<u32> = (0..8).map(|i| (i % 5) as u32).collect();
        for chunks in [2, 3, 4] {
            let serial = m.loss_and_grads_chunked(&x, &t, chunks, false);
            let parallel = m.loss_and_grads_chunked(&x, &t, chunks, true);
            assert_bitwise_equal(&serial, &parallel);
        }
    }

    #[test]
    fn parallel_with_one_chunk_is_serial() {
        let m = tiny_model(3);
        let x = Tensor::from_fn(&[4, 4], |i| i as f32 * 0.1);
        let t = [0u32, 1, 2, 0];
        let (ls, _) = m.loss_and_grads(&x, &t);
        let (lp, _) = m.loss_and_grads_parallel(&x, &t, 1);
        assert_eq!(ls, lp);
    }

    #[test]
    fn gradients_container_math() {
        let m = tiny_model(4);
        let mut g = Gradients::zeros_like(&m);
        assert_eq!(g.l2_norm(), 0.0);
        g.by_layer[0][0].as_mut_slice()[0] = 3.0;
        g.by_layer[0][0].as_mut_slice()[1] = 4.0;
        assert!((g.l2_norm() - 5.0).abs() < 1e-6);
        let pre = g.clip_l2(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
        let mut g2 = Gradients::zeros_like(&m);
        g2.add_assign(&g);
        g2.scale(2.0);
        assert!((g2.l2_norm() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn evaluate_reports_loss_and_accuracy() {
        let m = tiny_model(5);
        let x = Tensor::from_fn(&[6, 4], |i| (i as f32).cos());
        let t = [0u32, 1, 2, 0, 1, 2];
        let (l, a) = m.evaluate(&x, &t);
        assert!(l > 0.0);
        assert!((0.0..=1.0).contains(&a));
    }
}
