//! Classification metrics beyond plain accuracy: confusion matrices,
//! per-class precision/recall/F1 — used by the attack analysis (which
//! misclassification did the label flip cause?) and by downstream users.

use crate::loss::predictions;
use crate::tensor::Tensor;

/// A `classes × classes` confusion matrix: `m[true][pred]` counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// An empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Build from model logits and targets.
    pub fn from_logits(logits: &Tensor, targets: &[u32], classes: usize) -> Self {
        let mut m = Self::new(classes);
        for (p, &t) in predictions(logits).iter().zip(targets) {
            m.record(t, *p);
        }
        m
    }

    /// Record one observation.
    pub fn record(&mut self, truth: u32, pred: u32) {
        assert!(
            (truth as usize) < self.classes && (pred as usize) < self.classes,
            "class out of range"
        );
        self.counts[truth as usize * self.classes + pred as usize] += 1;
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Count at `(truth, pred)`.
    pub fn get(&self, truth: u32, pred: u32) -> u32 {
        self.counts[truth as usize * self.classes + pred as usize]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u32 = (0..self.classes)
            .map(|c| self.counts[c * self.classes + c])
            .sum();
        correct as f32 / total as f32
    }

    /// Precision of one class: `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self, class: u32) -> f32 {
        let c = class as usize;
        let tp = self.counts[c * self.classes + c] as f32;
        let predicted: u32 = (0..self.classes)
            .map(|t| self.counts[t * self.classes + c])
            .sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f32
        }
    }

    /// Recall of one class: `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self, class: u32) -> f32 {
        let c = class as usize;
        let tp = self.counts[c * self.classes + c] as f32;
        let actual: u32 = self.counts[c * self.classes..(c + 1) * self.classes]
            .iter()
            .sum();
        if actual == 0 {
            0.0
        } else {
            tp / actual as f32
        }
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: u32) -> f32 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over all classes.
    pub fn macro_f1(&self) -> f32 {
        (0..self.classes as u32).map(|c| self.f1(c)).sum::<f32>() / self.classes as f32
    }

    /// Fraction of class-`src` samples predicted as `dst` — the Fig. 6b
    /// targeted-misclassification metric.
    pub fn misclassification_rate(&self, src: u32, dst: u32) -> f32 {
        let actual: u32 = self.counts
            [src as usize * self.classes..(src as usize + 1) * self.classes]
            .iter()
            .sum();
        if actual == 0 {
            0.0
        } else {
            self.get(src, dst) as f32 / actual as f32
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "true\\pred")?;
        for c in 0..self.classes {
            write!(f, " {c:>5}")?;
        }
        writeln!(f)?;
        for t in 0..self.classes {
            write!(f, "{t:>9}")?;
            for p in 0..self.classes {
                write!(f, " {:>5}", self.counts[t * self.classes + p])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // 2 classes: 3 correct 0s, 1 (0 -> 1), 2 correct 1s, 2 (1 -> 0)
        let mut m = ConfusionMatrix::new(2);
        for _ in 0..3 {
            m.record(0, 0);
        }
        m.record(0, 1);
        for _ in 0..2 {
            m.record(1, 1);
        }
        for _ in 0..2 {
            m.record(1, 0);
        }
        m
    }

    #[test]
    fn accuracy_and_counts() {
        let m = sample();
        assert_eq!(m.total(), 8);
        assert_eq!(m.get(0, 0), 3);
        assert_eq!(m.get(1, 0), 2);
        assert!((m.accuracy() - 5.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn precision_recall_f1() {
        let m = sample();
        // class 0: tp=3, fp=2, fn=1
        assert!((m.precision(0) - 3.0 / 5.0).abs() < 1e-6);
        assert!((m.recall(0) - 3.0 / 4.0).abs() < 1e-6);
        let p = 0.6f32;
        let r = 0.75f32;
        assert!((m.f1(0) - 2.0 * p * r / (p + r)).abs() < 1e-6);
        assert!(m.macro_f1() > 0.0);
    }

    #[test]
    fn misclassification_rate_matches_fig6b() {
        let m = sample();
        assert!((m.misclassification_rate(1, 0) - 0.5).abs() < 1e-6);
        assert!((m.misclassification_rate(0, 1) - 0.25).abs() < 1e-6);
        assert_eq!(ConfusionMatrix::new(3).misclassification_rate(0, 1), 0.0);
    }

    #[test]
    fn from_logits_and_merge() {
        let logits = Tensor::from_vec(vec![3, 2], vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0]);
        let m1 = ConfusionMatrix::from_logits(&logits, &[0, 1, 1], 2);
        assert_eq!(m1.get(0, 0), 1);
        assert_eq!(m1.get(1, 1), 1);
        assert_eq!(m1.get(1, 0), 1);
        let mut m2 = m1.clone();
        m2.merge(&m1);
        assert_eq!(m2.total(), 6);
    }

    #[test]
    fn display_renders_grid() {
        let m = sample();
        let s = m.to_string();
        assert!(s.contains("true\\pred"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(0), 0.0);
        assert_eq!(m.recall(0), 0.0);
        assert_eq!(m.f1(0), 0.0);
    }
}
