//! 2-D convolution (stride 1, symmetric zero padding), the building block of
//! the FEMNIST CNN.
//!
//! Both passes are expressed as GEMMs over im2col patch matrices, so all the
//! arithmetic runs through the blocked/packed kernel in [`crate::gemm`]:
//!
//! - forward: `out_b[OC, OH·OW] = bias ⊕ W[OC, IC·K·K] · col_b` (the
//!   accumulating GEMM starts each chain at the bias, reproducing the
//!   classic `acc = bias; acc += w·x` loop bit-for-bit),
//! - weight gradient: `gW += g_b · col_bᵀ` (B-transposed variant),
//! - input gradient: `gcol = Wᵀ · g_b` (A-transposed variant) scattered back
//!   with col2im.
//!
//! The im2col matrices are built once in the training forward pass and
//! cached for backward. Batch items are processed serially in ascending
//! order, keeping gradient accumulation deterministic; data parallelism
//! belongs to the batch-chunk level in `model.rs`.

use crate::init;
use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use rand::Rng;

/// A 2-D convolution layer over `[B, C, H, W]` inputs.
///
/// Weights have shape `[out_ch, in_ch, k, k]`; stride is fixed at 1 and the
/// input is zero-padded by `pad` pixels on every side, so the output spatial
/// size is `H + 2·pad − k + 1`.
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    pad: usize,
}

impl Conv2d {
    /// Construct with explicit weights (mainly for tests).
    pub fn new(weight: Tensor, bias: Tensor, pad: usize) -> Self {
        assert_eq!(weight.rank(), 4, "Conv2d weight must be [OC, IC, K, K]");
        let out_ch = weight.shape()[0];
        let in_ch = weight.shape()[1];
        let k = weight.shape()[2];
        assert_eq!(weight.shape()[3], k, "Conv2d kernels must be square");
        assert_eq!(bias.shape(), &[out_ch]);
        Self {
            weight,
            bias,
            in_ch,
            out_ch,
            k,
            pad,
        }
    }

    /// He-initialized convolution (the default in front of ReLU).
    pub fn he(in_ch: usize, out_ch: usize, k: usize, pad: usize, rng: &mut impl Rng) -> Self {
        let fan_in = in_ch * k * k;
        Self::new(
            init::he_normal(&[out_ch, in_ch, k, k], fan_in, rng),
            Tensor::zeros(&[out_ch]),
            pad,
        )
    }

    /// Output spatial size for an input spatial size.
    pub fn out_size(&self, h: usize) -> usize {
        h + 2 * self.pad + 1 - self.k
    }

    fn check_input(&self, x: &Tensor) -> (usize, usize, usize) {
        assert_eq!(x.rank(), 4, "Conv2d expects [B, C, H, W]");
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "Conv2d channel mismatch");
        assert!(
            h + 2 * self.pad >= self.k && w + 2 * self.pad >= self.k,
            "Conv2d input smaller than kernel"
        );
        (b, h, w)
    }

    /// Unfold one item into the `[IC·K·K, OH·OW]` patch matrix: row
    /// `(c, ky, kx)` holds the input pixel each output position multiplies
    /// against that kernel tap, with zeros where the tap falls in padding.
    #[allow(clippy::too_many_arguments)]
    fn im2col(&self, xb: &[f32], h: usize, w: usize, oh: usize, ow: usize, col: &mut [f32]) {
        let (ic, k, pad) = (self.in_ch, self.k, self.pad);
        debug_assert_eq!(col.len(), ic * k * k * oh * ow);
        col.fill(0.0);
        for c in 0..ic {
            let xplane = &xb[c * h * w..(c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((c * k + ky) * k + kx) * oh * ow;
                    for oy in 0..oh {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let iy = iy - pad;
                        for ox in 0..ow {
                            let ix = ox + kx;
                            if ix < pad || ix >= w + pad {
                                continue;
                            }
                            col[row + oy * ow + ox] = xplane[iy * w + (ix - pad)];
                        }
                    }
                }
            }
        }
    }

    /// Scatter a `[IC·K·K, OH·OW]` patch-gradient matrix back onto the input
    /// plane (the transpose of [`Self::im2col`]): padding taps are dropped,
    /// overlapping taps accumulate.
    #[allow(clippy::too_many_arguments)]
    fn col2im(&self, gcol: &[f32], h: usize, w: usize, oh: usize, ow: usize, gx: &mut [f32]) {
        let (ic, k, pad) = (self.in_ch, self.k, self.pad);
        debug_assert_eq!(gcol.len(), ic * k * k * oh * ow);
        for c in 0..ic {
            let gplane = &mut gx[c * h * w..(c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((c * k + ky) * k + kx) * oh * ow;
                    for oy in 0..oh {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let iy = iy - pad;
                        for ox in 0..ow {
                            let ix = ox + kx;
                            if ix < pad || ix >= w + pad {
                                continue;
                            }
                            gplane[iy * w + (ix - pad)] += gcol[row + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&self, x: &Tensor, train: bool) -> (Tensor, Cache) {
        let (b, h, w) = self.check_input(x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (ic, oc, k) = (self.in_ch, self.out_ch, self.k);
        let (ickk, ohow) = (ic * k * k, oh * ow);
        let xs = x.as_slice();
        let ws = self.weight.as_slice();
        let bs = self.bias.as_slice();
        let mut out = vec![0.0f32; b * oc * ohow];
        // In training mode the patch matrices are kept for backward; in
        // inference mode one scratch matrix is reused across items.
        let mut cols = vec![0.0f32; if train { b * ickk * ohow } else { ickk * ohow }];
        for bi in 0..b {
            let xb = &xs[bi * ic * h * w..(bi + 1) * ic * h * w];
            let col = if train {
                &mut cols[bi * ickk * ohow..(bi + 1) * ickk * ohow]
            } else {
                &mut cols[..]
            };
            self.im2col(xb, h, w, oh, ow, col);
            let ob = &mut out[bi * oc * ohow..(bi + 1) * oc * ohow];
            for (o, row) in ob.chunks_mut(ohow).enumerate() {
                row.fill(bs[o]);
            }
            crate::gemm::gemm_accum(oc, ohow, ickk, ws, false, col, false, ob);
        }
        let cache = if train {
            Cache::new(cols)
        } else {
            Cache::none()
        };
        (Tensor::from_vec(vec![b, oc, oh, ow], out), cache)
    }

    fn backward(&self, x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let (b, h, w) = self.check_input(x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (ic, oc, k) = (self.in_ch, self.out_ch, self.k);
        let (ickk, ohow) = (ic * k * k, oh * ow);
        let xs = x.as_slice();
        let ws = self.weight.as_slice();
        let gs = grad_out.as_slice();
        let cached_cols = cache.try_get::<Vec<f32>>();
        let mut scratch_col = match cached_cols {
            Some(_) => Vec::new(),
            None => vec![0.0f32; ickk * ohow],
        };
        let mut grad_w = vec![0.0f32; oc * ickk];
        let mut grad_b = vec![0.0f32; oc];
        let mut grad_x = vec![0.0f32; b * ic * h * w];
        let mut gcol = vec![0.0f32; ickk * ohow];
        // Items accumulate in ascending batch order: fixed association,
        // independent of any parallelism in the callers above.
        for bi in 0..b {
            let gb = &gs[bi * oc * ohow..(bi + 1) * oc * ohow];
            for (o, grow) in gb.chunks(ohow).enumerate() {
                for &g in grow {
                    grad_b[o] += g;
                }
            }
            let col: &[f32] = match cached_cols {
                Some(cols) => &cols[bi * ickk * ohow..(bi + 1) * ickk * ohow],
                None => {
                    let xb = &xs[bi * ic * h * w..(bi + 1) * ic * h * w];
                    self.im2col(xb, h, w, oh, ow, &mut scratch_col);
                    &scratch_col
                }
            };
            // gW[OC, IC·K·K] += g_b · col_bᵀ
            crate::gemm::gemm_accum(oc, ickk, ohow, gb, false, col, true, &mut grad_w);
            // gcol[IC·K·K, OH·OW] = Wᵀ · g_b, scattered back onto the input
            crate::gemm::gemm(ickk, ohow, oc, ws, true, gb, false, &mut gcol);
            self.col2im(
                &gcol,
                h,
                w,
                oh,
                ow,
                &mut grad_x[bi * ic * h * w..(bi + 1) * ic * h * w],
            );
        }
        (
            Tensor::from_vec(x.shape().to_vec(), grad_x),
            vec![
                Tensor::from_vec(self.weight.shape().to_vec(), grad_w),
                Tensor::from_vec(vec![oc], grad_b),
            ],
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1×1 kernel reduces to a per-pixel scale + bias.
    #[test]
    fn identity_kernel_1x1() {
        let w = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]);
        let b = Tensor::from_vec(vec![1], vec![0.5]);
        let conv = Conv2d::new(w, b, 0);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let (y, _) = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[2.5, 4.5, 6.5, 8.5]);
    }

    /// A 3×3 all-ones kernel on a padded input computes box sums.
    #[test]
    fn box_sum_kernel() {
        let w = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let b = Tensor::zeros(&[1]);
        let conv = Conv2d::new(w, b, 1);
        let x = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let (y, _) = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // center pixel sees all 9 ones; corners see 4.
        assert_eq!(y.at_idx(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.at_idx(&[0, 0, 0, 0]), 4.0);
    }

    impl Tensor {
        /// test helper: index a rank-4 tensor
        fn at_idx(&self, idx: &[usize; 4]) -> f32 {
            let s = self.shape();
            self.as_slice()[((idx[0] * s[1] + idx[1]) * s[2] + idx[2]) * s[3] + idx[3]]
        }
    }

    #[test]
    fn output_shape_no_pad() {
        let mut rng = crate::rng::seeded(0);
        let conv = Conv2d::he(2, 4, 3, 0, &mut rng);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let (y, _) = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = crate::rng::seeded(1);
        let conv = Conv2d::he(2, 3, 3, 1, &mut rng);
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| (i % 11) as f32 * 0.1);
        let (y, c) = conv.forward(&x, true);
        let g = Tensor::filled(y.shape(), 1.0);
        let (gx, gp) = conv.backward(&x, &c, &g);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gp[0].shape(), &[3, 2, 3, 3]);
        assert_eq!(gp[1].shape(), &[3]);
        // bias gradient = number of output pixels per channel per batch
        assert_eq!(gp[1].as_slice()[0], (2 * 5 * 5) as f32);
    }

    /// backward must work (by recomputing im2col) even when forward ran in
    /// inference mode and cached nothing.
    #[test]
    fn backward_without_cached_columns() {
        let mut rng = crate::rng::seeded(2);
        let conv = Conv2d::he(1, 2, 3, 1, &mut rng);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i % 5) as f32 * 0.2);
        let (y, cache_train) = conv.forward(&x, true);
        let g = Tensor::filled(y.shape(), 0.5);
        let (gx_cached, gp_cached) = conv.backward(&x, &cache_train, &g);
        let (gx_fresh, gp_fresh) = conv.backward(&x, &Cache::none(), &g);
        assert_eq!(gx_cached.as_slice(), gx_fresh.as_slice());
        assert_eq!(gp_cached[0].as_slice(), gp_fresh[0].as_slice());
        assert_eq!(gp_cached[1].as_slice(), gp_fresh[1].as_slice());
    }
}
