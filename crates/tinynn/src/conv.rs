//! 2-D convolution (stride 1, symmetric zero padding), the building block of
//! the FEMNIST CNN.

use crate::init;
use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use rand::Rng;
use rayon::prelude::*;

/// A 2-D convolution layer over `[B, C, H, W]` inputs.
///
/// Weights have shape `[out_ch, in_ch, k, k]`; stride is fixed at 1 and the
/// input is zero-padded by `pad` pixels on every side, so the output spatial
/// size is `H + 2·pad − k + 1`.
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    pad: usize,
}

impl Conv2d {
    /// Construct with explicit weights (mainly for tests).
    pub fn new(weight: Tensor, bias: Tensor, pad: usize) -> Self {
        assert_eq!(weight.rank(), 4, "Conv2d weight must be [OC, IC, K, K]");
        let out_ch = weight.shape()[0];
        let in_ch = weight.shape()[1];
        let k = weight.shape()[2];
        assert_eq!(weight.shape()[3], k, "Conv2d kernels must be square");
        assert_eq!(bias.shape(), &[out_ch]);
        Self {
            weight,
            bias,
            in_ch,
            out_ch,
            k,
            pad,
        }
    }

    /// He-initialized convolution (the default in front of ReLU).
    pub fn he(in_ch: usize, out_ch: usize, k: usize, pad: usize, rng: &mut impl Rng) -> Self {
        let fan_in = in_ch * k * k;
        Self::new(
            init::he_normal(&[out_ch, in_ch, k, k], fan_in, rng),
            Tensor::zeros(&[out_ch]),
            pad,
        )
    }

    /// Output spatial size for an input spatial size.
    pub fn out_size(&self, h: usize) -> usize {
        h + 2 * self.pad + 1 - self.k
    }

    fn check_input(&self, x: &Tensor) -> (usize, usize, usize) {
        assert_eq!(x.rank(), 4, "Conv2d expects [B, C, H, W]");
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "Conv2d channel mismatch");
        assert!(
            h + 2 * self.pad >= self.k && w + 2 * self.pad >= self.k,
            "Conv2d input smaller than kernel"
        );
        (b, h, w)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let (b, h, w) = self.check_input(x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (ic, oc, k, pad) = (self.in_ch, self.out_ch, self.k, self.pad);
        let xs = x.as_slice();
        let ws = self.weight.as_slice();
        let bs = self.bias.as_slice();
        let mut out = vec![0.0f32; b * oc * oh * ow];
        out.par_chunks_mut(oc * oh * ow)
            .enumerate()
            .for_each(|(bi, ob)| {
                let xb = &xs[bi * ic * h * w..(bi + 1) * ic * h * w];
                for o in 0..oc {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = bs[o];
                            for c in 0..ic {
                                let wbase = ((o * ic + c) * k) * k;
                                let xbase = c * h * w;
                                for ky in 0..k {
                                    let iy = oy + ky;
                                    if iy < pad || iy >= h + pad {
                                        continue;
                                    }
                                    let iy = iy - pad;
                                    let wrow = &ws[wbase + ky * k..wbase + ky * k + k];
                                    for (kx, &wv) in wrow.iter().enumerate() {
                                        let ix = ox + kx;
                                        if ix < pad || ix >= w + pad {
                                            continue;
                                        }
                                        acc += wv * xb[xbase + iy * w + (ix - pad)];
                                    }
                                }
                            }
                            ob[(o * oh + oy) * ow + ox] = acc;
                        }
                    }
                }
            });
        (Tensor::from_vec(vec![b, oc, oh, ow], out), Cache::none())
    }

    fn backward(&self, x: &Tensor, _cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let (b, h, w) = self.check_input(x);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (ic, oc, k, pad) = (self.in_ch, self.out_ch, self.k, self.pad);
        let xs = x.as_slice();
        let ws = self.weight.as_slice();
        let gs = grad_out.as_slice();

        // Per-batch-item partials reduced with rayon: each item produces its
        // own grad_x chunk plus dense (grad_w, grad_b) partials.
        let wlen = self.weight.len();
        let (grad_x, grad_w, grad_b) = (0..b)
            .into_par_iter()
            .map(|bi| {
                let xb = &xs[bi * ic * h * w..(bi + 1) * ic * h * w];
                let gb = &gs[bi * oc * oh * ow..(bi + 1) * oc * oh * ow];
                let mut gx = vec![0.0f32; ic * h * w];
                let mut gw = vec![0.0f32; wlen];
                let mut gbias = vec![0.0f32; oc];
                for o in 0..oc {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gb[(o * oh + oy) * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            gbias[o] += g;
                            for c in 0..ic {
                                let wbase = ((o * ic + c) * k) * k;
                                let xbase = c * h * w;
                                for ky in 0..k {
                                    let iy = oy + ky;
                                    if iy < pad || iy >= h + pad {
                                        continue;
                                    }
                                    let iy = iy - pad;
                                    for kx in 0..k {
                                        let ix = ox + kx;
                                        if ix < pad || ix >= w + pad {
                                            continue;
                                        }
                                        let ix = ix - pad;
                                        gw[wbase + ky * k + kx] += g * xb[xbase + iy * w + ix];
                                        gx[xbase + iy * w + ix] += g * ws[wbase + ky * k + kx];
                                    }
                                }
                            }
                        }
                    }
                }
                (vec![(bi, gx)], gw, gbias)
            })
            .reduce(
                || (Vec::new(), vec![0.0f32; wlen], vec![0.0f32; oc]),
                |(mut xs1, mut w1, mut b1), (xs2, w2, b2)| {
                    xs1.extend(xs2);
                    for (a, v) in w1.iter_mut().zip(&w2) {
                        *a += v;
                    }
                    for (a, v) in b1.iter_mut().zip(&b2) {
                        *a += v;
                    }
                    (xs1, w1, b1)
                },
            );

        let mut gx_full = vec![0.0f32; b * ic * h * w];
        for (bi, gx) in grad_x {
            gx_full[bi * ic * h * w..(bi + 1) * ic * h * w].copy_from_slice(&gx);
        }
        (
            Tensor::from_vec(x.shape().to_vec(), gx_full),
            vec![
                Tensor::from_vec(self.weight.shape().to_vec(), grad_w),
                Tensor::from_vec(vec![oc], grad_b),
            ],
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1×1 kernel reduces to a per-pixel scale + bias.
    #[test]
    fn identity_kernel_1x1() {
        let w = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]);
        let b = Tensor::from_vec(vec![1], vec![0.5]);
        let conv = Conv2d::new(w, b, 0);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let (y, _) = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[2.5, 4.5, 6.5, 8.5]);
    }

    /// A 3×3 all-ones kernel on a padded input computes box sums.
    #[test]
    fn box_sum_kernel() {
        let w = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let b = Tensor::zeros(&[1]);
        let conv = Conv2d::new(w, b, 1);
        let x = Tensor::filled(&[1, 1, 3, 3], 1.0);
        let (y, _) = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // center pixel sees all 9 ones; corners see 4.
        assert_eq!(y.at_idx(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.at_idx(&[0, 0, 0, 0]), 4.0);
    }

    impl Tensor {
        /// test helper: index a rank-4 tensor
        fn at_idx(&self, idx: &[usize; 4]) -> f32 {
            let s = self.shape();
            self.as_slice()[((idx[0] * s[1] + idx[1]) * s[2] + idx[2]) * s[3] + idx[3]]
        }
    }

    #[test]
    fn output_shape_no_pad() {
        let mut rng = crate::rng::seeded(0);
        let conv = Conv2d::he(2, 4, 3, 0, &mut rng);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let (y, _) = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = crate::rng::seeded(1);
        let conv = Conv2d::he(2, 3, 3, 1, &mut rng);
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| (i % 11) as f32 * 0.1);
        let (y, c) = conv.forward(&x, true);
        let g = Tensor::filled(y.shape(), 1.0);
        let (gx, gp) = conv.backward(&x, &c, &g);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gp[0].shape(), &[3, 2, 3, 3]);
        assert_eq!(gp[1].shape(), &[3]);
        // bias gradient = number of output pixels per channel per batch
        assert_eq!(gp[1].as_slice()[0], (2 * 5 * 5) as f32);
    }
}
