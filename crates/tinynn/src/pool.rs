//! 2-D max pooling.

use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Non-overlapping `k × k` max pooling (stride = k) over `[B, C, H, W]`.
///
/// Trailing rows/columns that do not fill a window are dropped, matching the
/// common "floor" behaviour.
pub struct MaxPool2d {
    k: usize,
}

impl MaxPool2d {
    /// Construct a pool with window (and stride) `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "pool window must be >= 1");
        Self { k }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 4, "MaxPool2d expects [B, C, H, W]");
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let k = self.k;
        let (oh, ow) = (h / k, w / k);
        let xs = x.as_slice();
        let plane = h * w;
        let oplane = oh * ow;
        let mut out = vec![0.0f32; b * c * oplane];
        let mut argmax = vec![0u32; b * c * oplane];
        out.par_chunks_mut(oplane)
            .zip(argmax.par_chunks_mut(oplane))
            .enumerate()
            .for_each(|(pc, (ob, ab))| {
                // pc indexes the (batch, channel) plane
                let xp = &xs[pc * plane..(pc + 1) * plane];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut besti = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = (oy * k + ky) * w + ox * k + kx;
                                if xp[idx] > best {
                                    best = xp[idx];
                                    besti = idx;
                                }
                            }
                        }
                        ob[oy * ow + ox] = best;
                        ab[oy * ow + ox] = besti as u32;
                    }
                }
            });
        (
            Tensor::from_vec(vec![b, c, oh, ow], out),
            Cache::new(argmax),
        )
    }

    fn backward(&self, x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let k = self.k;
        let (oh, ow) = (h / k, w / k);
        let argmax = cache.get::<Vec<u32>>();
        let plane = h * w;
        let oplane = oh * ow;
        let gs = grad_out.as_slice();
        let mut gx = vec![0.0f32; b * c * plane];
        gx.par_chunks_mut(plane).enumerate().for_each(|(pc, gp)| {
            let gob = &gs[pc * oplane..(pc + 1) * oplane];
            let ab = &argmax[pc * oplane..(pc + 1) * oplane];
            for (g, &ai) in gob.iter().zip(ab) {
                gp[ai as usize] += g;
            }
        });
        (Tensor::from_vec(x.shape().to_vec(), gx), Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_2x2_takes_max() {
        let x = Tensor::from_vec(vec![1, 1, 2, 4], vec![1., 5., 2., 0., 3., 4., 1., 9.]);
        let p = MaxPool2d::new(2);
        let (y, _) = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.as_slice(), &[5., 9.]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 5., 2., 0.]);
        let p = MaxPool2d::new(2);
        let (_, c) = p.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 1, 1, 1], vec![3.0]);
        let (gx, gp) = p.backward(&x, &c, &g);
        assert_eq!(gx.as_slice(), &[0., 3., 0., 0.]);
        assert!(gp.is_empty());
    }

    #[test]
    fn odd_sizes_floor() {
        let x = Tensor::from_fn(&[1, 1, 5, 5], |i| i as f32);
        let p = MaxPool2d::new(2);
        let (y, _) = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn multi_channel_planes_independent() {
        let x = Tensor::from_vec(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 8., 7., 6., 5.]);
        let p = MaxPool2d::new(2);
        let (y, _) = p.forward(&x, false);
        assert_eq!(y.as_slice(), &[4., 8.]);
    }
}
