//! Softmax cross-entropy loss and classification metrics.

use crate::tensor::Tensor;

/// Numerically-stable softmax of one row, in place.
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// View logits as `[rows, classes]` regardless of leading batch structure
/// (`[B, C]` or `[B, T, C]`).
fn rows_classes(logits: &Tensor) -> (usize, usize) {
    let classes = *logits
        .shape()
        .last()
        .expect("logits must have a class axis");
    (logits.len() / classes, classes)
}

/// Mean softmax cross-entropy over all rows, plus the gradient w.r.t. the
/// logits (`(softmax − one_hot) / rows`, reshaped like the input).
///
/// `targets[i]` is the class index of row `i`; its length must equal the
/// number of rows.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[u32]) -> (f32, Tensor) {
    let (rows, classes) = rows_classes(logits);
    assert_eq!(rows, targets.len(), "targets length must match logit rows");
    let mut probs = logits.clone().reshape(vec![rows, classes]);
    let mut loss = 0.0f64;
    let inv_rows = 1.0 / rows as f32;
    for (i, &target) in targets.iter().enumerate() {
        let row = probs.row_mut(i);
        softmax_row(row);
        let t = target as usize;
        assert!(t < classes, "target {t} out of range for {classes} classes");
        loss -= (row[t].max(1e-12) as f64).ln();
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_rows;
        }
    }
    (
        (loss / rows as f64) as f32,
        probs.reshape(logits.shape().to_vec()),
    )
}

/// Mean cross-entropy without the gradient (for validation).
pub fn cross_entropy(logits: &Tensor, targets: &[u32]) -> f32 {
    let (rows, classes) = rows_classes(logits);
    assert_eq!(rows, targets.len(), "targets length must match logit rows");
    let mut loss = 0.0f64;
    let mut row = vec![0.0f32; classes];
    for i in 0..rows {
        row.copy_from_slice(&logits.as_slice()[i * classes..(i + 1) * classes]);
        softmax_row(&mut row);
        loss -= (row[targets[i] as usize].max(1e-12) as f64).ln();
    }
    (loss / rows as f64) as f32
}

/// Arg-max class prediction per row.
pub fn predictions(logits: &Tensor) -> Vec<u32> {
    let (rows, classes) = rows_classes(logits);
    (0..rows)
        .map(|i| {
            let row = &logits.as_slice()[i * classes..(i + 1) * classes];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

/// Fraction of rows whose arg-max matches the target.
pub fn accuracy(logits: &Tensor, targets: &[u32]) -> f32 {
    let preds = predictions(logits);
    assert_eq!(preds.len(), targets.len());
    if targets.is_empty() {
        return 0.0;
    }
    let hits = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    hits as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let targets = [0u32, 1, 2, 3];
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        assert_eq!(grad.shape(), &[4, 10]);
        // gradient rows sum to zero
        for i in 0..4 {
            let s: f32 = grad.as_slice()[i * 10..(i + 1) * 10].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.as_mut_slice()[1] = 20.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_direction_pushes_target_up() {
        let logits = Tensor::zeros(&[1, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        // gradient for target class is negative (decreasing loss increases logit)
        assert!(grad.as_slice()[2] < 0.0);
        assert!(grad.as_slice()[0] > 0.0);
    }

    #[test]
    fn cross_entropy_matches_grad_version() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.3, -0.2, 1.0, 2.0, 0.1, -1.0]);
        let targets = [2u32, 0];
        let (l1, _) = softmax_cross_entropy(&logits, &targets);
        let l2 = cross_entropy(&logits, &targets);
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn rank3_logits_treated_per_timestep() {
        let logits = Tensor::zeros(&[2, 3, 5]);
        let targets = [0u32; 6];
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
        assert_eq!(grad.shape(), &[2, 3, 5]);
    }

    #[test]
    fn accuracy_and_predictions() {
        let logits = Tensor::from_vec(vec![3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]);
        assert_eq!(predictions(&logits), vec![0, 1, 0]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }
}
