//! Layer normalization.

use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;

/// Layer normalization over the last axis: each row (feature vector) is
/// standardized to zero mean / unit variance, then scaled and shifted by
/// learnable `gain` and `bias`. Stabilizes deep stacks (e.g. multi-layer
/// LSTMs) without batch statistics, so train and eval behave identically.
pub struct LayerNorm {
    gain: Tensor,
    bias: Tensor,
    dim: usize,
    eps: f32,
}

/// Per-row statistics retained for the backward pass.
struct NormCache {
    /// Normalized activations `x̂` (pre gain/bias), flattened `[rows, dim]`.
    xhat: Vec<f32>,
    /// Per-row `1 / sqrt(var + eps)`.
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Construct over feature width `dim` (gain = 1, bias = 0).
    pub fn new(dim: usize) -> Self {
        Self {
            gain: Tensor::filled(&[dim], 1.0),
            bias: Tensor::zeros(&[dim]),
            dim,
            eps: 1e-5,
        }
    }

    /// Feature width this layer normalizes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self, x: &Tensor) -> usize {
        assert_eq!(
            *x.shape().last().expect("non-scalar input"),
            self.dim,
            "LayerNorm width mismatch"
        );
        x.len() / self.dim
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> &'static str {
        "LayerNorm"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let rows = self.rows(x);
        let d = self.dim;
        let mut out = vec![0.0f32; rows * d];
        let mut xhat = vec![0.0f32; rows * d];
        let mut inv_std = vec![0.0f32; rows];
        let g = self.gain.as_slice();
        let b = self.bias.as_slice();
        for r in 0..rows {
            let row = &x.as_slice()[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std[r] = is;
            for j in 0..d {
                let xh = (row[j] - mean) * is;
                xhat[r * d + j] = xh;
                out[r * d + j] = g[j] * xh + b[j];
            }
        }
        (
            Tensor::from_vec(x.shape().to_vec(), out),
            Cache::new(NormCache { xhat, inv_std }),
        )
    }

    fn backward(&self, x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let rows = self.rows(x);
        let d = self.dim;
        let c = cache.get::<NormCache>();
        let g = self.gain.as_slice();
        let go = grad_out.as_slice();
        let mut grad_gain = vec![0.0f32; d];
        let mut grad_bias = vec![0.0f32; d];
        let mut grad_x = vec![0.0f32; rows * d];
        for r in 0..rows {
            let xh = &c.xhat[r * d..(r + 1) * d];
            let gor = &go[r * d..(r + 1) * d];
            // dL/dx̂, and the two row reductions the chain rule needs
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for j in 0..d {
                grad_gain[j] += gor[j] * xh[j];
                grad_bias[j] += gor[j];
                let dxh = gor[j] * g[j];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh[j];
            }
            let inv_d = 1.0 / d as f32;
            for j in 0..d {
                let dxh = gor[j] * g[j];
                grad_x[r * d + j] =
                    c.inv_std[r] * (dxh - inv_d * sum_dxhat - xh[j] * inv_d * sum_dxhat_xhat);
            }
        }
        (
            Tensor::from_vec(x.shape().to_vec(), grad_x),
            vec![
                Tensor::from_vec(vec![d], grad_gain),
                Tensor::from_vec(vec![d], grad_bias),
            ],
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gain, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gain, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let (y, _) = ln.forward(&x, false);
        // first row standardized: mean 0, unit variance
        let row = &y.as_slice()[..4];
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        // constant row maps to ~zero (variance eps guard)
        assert!(y.as_slice()[4..].iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn rank3_sequences_normalized_per_position() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_fn(&[2, 4, 3], |i| (i as f32).sin() * 3.0);
        let (y, _) = ln.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 3]);
        for r in 0..8 {
            let row = &y.as_slice()[r * 3..(r + 1) * 3];
            let mean: f32 = row.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
        }
    }

    #[test]
    fn gradients_check_numerically() {
        use crate::dense::Dense;
        use crate::gradcheck::check_gradients;
        use crate::model::Sequential;
        use crate::rng::seeded;
        let mut rng = seeded(21);
        let mut m = Sequential::new(vec![
            Box::new(Dense::xavier(4, 5, &mut rng)),
            Box::new(LayerNorm::new(5)),
            Box::new(Dense::xavier(5, 3, &mut rng)),
        ]);
        let x = Tensor::from_fn(&[3, 4], |i| ((i * 17 % 11) as f32 - 5.0) * 0.3);
        let t = [0u32, 1, 2];
        let r = check_gradients(&mut m, &x, &t, 1e-2, 60, 7);
        assert!(r.max_rel_err < 2e-2, "layernorm grad check failed: {r:?}");
    }

    #[test]
    fn param_count_and_names() {
        let ln = LayerNorm::new(7);
        assert_eq!(ln.param_count(), 14);
        assert_eq!(ln.name(), "LayerNorm");
        assert_eq!(ln.dim(), 7);
    }
}
