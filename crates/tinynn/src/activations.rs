//! Elementwise activation layers: ReLU, Sigmoid, Tanh.

use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Default, Clone, Copy)]
pub struct Relu;

impl Relu {
    /// Construct a ReLU layer.
    pub fn new() -> Self {
        Relu
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "Relu"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        (y, Cache::none())
    }

    fn backward(&self, x: &Tensor, _cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let mut g = grad_out.clone();
        for (gv, &xv) in g.as_mut_slice().iter_mut().zip(x.as_slice()) {
            if xv <= 0.0 {
                *gv = 0.0;
            }
        }
        (g, Vec::new())
    }
}

/// Logistic sigmoid: `1 / (1 + e^{-x})`.
#[derive(Default, Clone, Copy)]
pub struct Sigmoid;

impl Sigmoid {
    /// Construct a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid
    }
}

/// Scalar sigmoid, shared with the LSTM gates.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = sigmoid(*v);
        }
        (y.clone(), Cache::new(y))
    }

    fn backward(&self, _x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let y = cache.get::<Tensor>();
        let mut g = grad_out.clone();
        for (gv, &yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *gv *= yv * (1.0 - yv);
        }
        (g, Vec::new())
    }
}

/// Hyperbolic tangent activation.
#[derive(Default, Clone, Copy)]
pub struct Tanh;

impl Tanh {
    /// Construct a tanh layer.
    pub fn new() -> Self {
        Tanh
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = v.tanh();
        }
        (y.clone(), Cache::new(y))
    }

    fn backward(&self, _x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let y = cache.get::<Tensor>();
        let mut g = grad_out.clone();
        for (gv, &yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *gv *= 1.0 - yv * yv;
        }
        (g, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_vec(vec![4], vec![-1., 0., 0.5, 2.]);
        let r = Relu::new();
        let (y, c) = r.forward(&x, true);
        assert_eq!(y.as_slice(), &[0., 0., 0.5, 2.]);
        let g = Tensor::filled(&[4], 1.0);
        let (gx, gp) = r.backward(&x, &c, &g);
        assert_eq!(gx.as_slice(), &[0., 0., 1., 1.]);
        assert!(gp.is_empty());
    }

    #[test]
    fn sigmoid_midpoint() {
        let x = Tensor::from_vec(vec![1], vec![0.0]);
        let s = Sigmoid::new();
        let (y, c) = s.forward(&x, true);
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
        let g = Tensor::filled(&[1], 1.0);
        let (gx, _) = s.backward(&x, &c, &g);
        assert!((gx.as_slice()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_odd_symmetry() {
        let x = Tensor::from_vec(vec![2], vec![1.3, -1.3]);
        let t = Tanh::new();
        let (y, _) = t.forward(&x, false);
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let x = Tensor::from_vec(vec![1], vec![0.0]);
        let t = Tanh::new();
        let (_, c) = t.forward(&x, true);
        let g = Tensor::filled(&[1], 1.0);
        let (gx, _) = t.backward(&x, &c, &g);
        assert!((gx.as_slice()[0] - 1.0).abs() < 1e-6);
    }
}
