//! Dense row-major `f32` tensors with the handful of operations the library
//! needs: elementwise arithmetic, GEMM (including the transposed variants
//! used by backpropagation), and shape bookkeeping.

use serde::{Deserialize, Serialize};

/// Product of a shape's dimensions (the number of elements).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// A dense, row-major tensor of `f32` values.
///
/// The shape is dynamic (a `Vec<usize>`); all data lives in one contiguous
/// `Vec<f32>`. Tensors are plain values — cloning copies the buffer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a shape and a data buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} does not match data length {}",
            shape,
            data.len()
        );
        Self { shape, data }
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; numel(shape)],
            shape: shape.to_vec(),
        }
    }

    /// A tensor filled with a constant.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; numel(shape)],
            shape: shape.to_vec(),
        }
    }

    /// Build a tensor by calling `f(flat_index)` for every element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(f(i));
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        assert_eq!(
            numel(&shape),
            self.data.len(),
            "cannot reshape {:?} ({} elems) to {:?}",
            self.shape,
            self.data.len(),
            shape
        );
        self.shape = shape;
        self
    }

    /// Row `i` of a rank-2 tensor.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert_eq!(self.rank(), 2);
        let cols = self.shape[1];
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutable row `i` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert_eq!(self.rank(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Element at `(i, j)` of a rank-2 tensor.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm of the buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Matrix product `self [M,K] × other [K,N] -> [M,N]`.
    ///
    /// All three matmul variants run through the blocked/packed kernel in
    /// [`crate::gemm`], which parallelizes over disjoint output row blocks
    /// above [`crate::gemm::PAR_GEMM_THRESHOLD`] multiply-adds and is
    /// bit-identical to the naive k-ascending loop at any thread count.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul expects a rank-2 left operand");
        assert_eq!(other.rank(), 2, "matmul expects a rank-2 right operand");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(m, n, k, &self.data, false, &other.data, false, &mut out);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product with the right operand transposed:
    /// `self [M,K] × otherᵀ, other [N,K] -> [M,N]`.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_bt expects a rank-2 left operand");
        assert_eq!(other.rank(), 2, "matmul_bt expects a rank-2 right operand");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_bt inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(m, n, k, &self.data, false, &other.data, true, &mut out);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix product with the left operand transposed:
    /// `selfᵀ, self [K,M] × other [K,N] -> [M,N]`.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_at expects a rank-2 left operand");
        assert_eq!(other.rank(), 2, "matmul_at expects a rank-2 right operand");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_at inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(m, n, k, &self.data, true, &other.data, false, &mut out);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Add a rank-1 `[N]` bias to every row of a rank-2 `[M,N]` tensor —
    /// the shared broadcast behind every affine layer's `+ b`.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) {
        assert_eq!(self.rank(), 2, "add_row_broadcast expects a rank-2 tensor");
        assert_eq!(
            bias.shape(),
            &[self.shape[1]],
            "bias shape {:?} does not broadcast over rows of {:?}",
            bias.shape(),
            self.shape
        );
        let n = self.shape[1];
        let bs = &bias.data;
        for row in self.data.chunks_mut(n) {
            for (o, &b) in row.iter_mut().zip(bs) {
                *o += b;
            }
        }
    }

    /// Copy rows `start..end` along the first (batch) axis.
    ///
    /// Works for any rank ≥ 1; the remaining axes are preserved.
    pub fn slice_batch(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() >= 1 && start <= end && end <= self.shape[0]);
        let stride: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor::from_vec(shape, self.data[start * stride..end * stride].to_vec())
    }

    /// Mean over axis 0 of a rank-2 tensor: `[M,N] -> [N]`.
    pub fn mean_rows(&self) -> Tensor {
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        let inv = 1.0 / m as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor::from_vec(vec![n], out)
    }

    /// Sum over axis 0 of a rank-2 tensor: `[M,N] -> [N]`.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_vec(vec![n], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.len(), 6);
        assert_eq!(t.row(1), &[4., 5., 6.]);
        assert_eq!(t.at2(0, 2), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_mismatched_len() {
        Tensor::from_vec(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Tensor::zeros(&[3]).as_slice(), &[0.0; 3]);
        assert_eq!(Tensor::filled(&[2], 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).reshape(vec![4]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_wrong_count() {
        Tensor::zeros(&[4]).reshape(vec![3]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        // b is [2,3]; matmul_bt computes a × bᵀ -> [2,2]
        let b = Tensor::from_vec(vec![2, 3], vec![1., 0., 1., 0., 1., 0.]);
        let c = a.matmul_bt(&b);
        assert_eq!(c.as_slice(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        // a is [3,2]; matmul_at computes aᵀ × b, b [3,2] -> [2,2]
        let a = Tensor::from_vec(vec![3, 2], vec![1., 4., 2., 5., 3., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let c = a.matmul_at(&b);
        assert_eq!(c.as_slice(), &[4., 5., 10., 11.]);
    }

    #[test]
    fn large_matmul_parallel_matches_serial_semantics() {
        // Exceed gemm::PAR_GEMM_THRESHOLD to exercise the parallel path.
        let m = 80;
        let k = 70;
        let n = 60;
        let a = Tensor::from_fn(&[m, k], |i| (i % 7) as f32 - 3.0);
        let b = Tensor::from_fn(&[k, n], |i| (i % 5) as f32 - 2.0);
        let c = a.matmul(&b);
        // Spot-check a few entries against a scalar computation.
        for &(i, j) in &[(0usize, 0usize), (3, 50), (79, 59), (40, 30)] {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            assert!((c.at2(i, j) - acc).abs() < 1e-3, "mismatch at ({i},{j})");
        }
    }

    #[test]
    fn axpy_add_scale() {
        let mut a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(vec![3], vec![10., 20., 30.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6., 12., 18.]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[16., 32., 48.]);
        a.scale(0.25);
        assert_eq!(a.as_slice(), &[4., 8., 12.]);
        a.zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn mean_and_sum_rows() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 3., 4., 5.]);
        assert_eq!(t.mean_rows().as_slice(), &[2., 3., 4.]);
        assert_eq!(t.sum_rows().as_slice(), &[4., 6., 8.]);
    }

    #[test]
    fn sq_norm() {
        let t = Tensor::from_vec(vec![2], vec![3., 4.]);
        assert_eq!(t.sq_norm(), 25.0);
    }
}
