//! # tinynn — a minimal, pure-Rust neural-network library
//!
//! `tinynn` is the machine-learning substrate of the *learning tangle*
//! reproduction. It implements exactly what the paper's evaluation needs —
//! dense, convolutional and recurrent (LSTM) models trained with SGD — with
//! manual backpropagation, no external BLAS, and `rayon`-based data
//! parallelism over the mini-batch.
//!
//! ## Design
//!
//! * [`Tensor`] is a dense row-major `f32` array with an explicit shape.
//! * Every [`Layer`] is immutable during `forward`/`backward`; all per-call
//!   state lives in a [`Cache`] value returned by `forward`. This makes
//!   data-parallel gradient accumulation trivial: chunks of the batch run
//!   forward+backward concurrently against `&Model` and their gradients are
//!   summed.
//! * [`Sequential`] composes layers; [`loss`] provides softmax cross-entropy;
//!   [`Sgd`] applies updates.
//! * [`params`] flattens a model's parameters into a single `Vec<f32>` — the
//!   unit of exchange on the tangle ledger — and restores them.
//!
//! ## Quickstart
//!
//! ```
//! use tinynn::{Sequential, Dense, Relu, Sgd, loss, rng::seeded};
//!
//! let mut rng = seeded(42);
//! let mut model = Sequential::new(vec![
//!     Box::new(Dense::xavier(4, 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::xavier(16, 3, &mut rng)),
//! ]);
//! let x = tinynn::Tensor::from_vec(vec![2, 4], vec![0.1; 8]);
//! let targets = [0u32, 2];
//! let mut sgd = Sgd::new(0.1);
//! let (loss_value, grads) = model.loss_and_grads(&x, &targets);
//! sgd.step(&mut model, &grads);
//! assert!(loss_value > 0.0);
//! ```

pub mod activations;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod embedding;
pub mod gemm;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod model;
pub mod norm;
pub mod optim;
pub mod params;
pub mod pool;
pub mod reshape;
pub mod rng;
pub mod tensor;
pub mod wire;
pub mod zoo;

pub use activations::{Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use layer::{Cache, Layer};
pub use lstm::Lstm;
pub use metrics::ConfusionMatrix;
pub use model::{Gradients, Sequential};
pub use norm::LayerNorm;
pub use optim::{Adam, Sgd};
pub use params::ParamVec;
pub use pool::MaxPool2d;
pub use reshape::Flatten;
pub use tensor::Tensor;
