//! Shape-adapter layers.

use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;

/// Flattens `[B, d1, d2, ...]` into `[B, d1·d2·...]`, e.g. between the
/// convolutional feature extractor and the dense classifier head.
#[derive(Default, Clone, Copy)]
pub struct Flatten;

impl Flatten {
    /// Construct a flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let b = x.shape()[0];
        let rest = x.len() / b;
        (x.clone().reshape(vec![b, rest]), Cache::none())
    }

    fn backward(&self, x: &Tensor, _cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        (grad_out.clone().reshape(x.shape().to_vec()), Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let f = Flatten::new();
        let (y, c) = f.forward(&x, false);
        assert_eq!(y.shape(), &[2, 12]);
        let (gx, _) = f.backward(&x, &c, &y);
        assert_eq!(gx.shape(), &[2, 3, 4]);
        assert_eq!(gx.as_slice(), x.as_slice());
    }
}
