//! LSTM layer with full backpropagation through time.
//!
//! The paper's Shakespeare model is a *stacked* LSTM; stacking here is simply
//! several [`Lstm`] layers in a [`crate::Sequential`], each consuming the
//! `[B, T, H]` sequence produced by the previous one.

use crate::activations::sigmoid;
use crate::init;
use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use rand::Rng;

/// A single LSTM layer mapping `[B, T, in]` to the full hidden sequence
/// `[B, T, hidden]`. Initial hidden and cell states are zero.
///
/// Gate packing order inside the `4·hidden` axis is `i, f, g, o`
/// (input, forget, candidate, output).
pub struct Lstm {
    w_ih: Tensor, // [in, 4H]
    w_hh: Tensor, // [H, 4H]
    bias: Tensor, // [4H]
    in_dim: usize,
    hidden: usize,
}

/// Per-timestep activations recorded by the forward pass.
struct LstmCache {
    /// Post-activation gates `[B, 4H]`, packed `i f g o`, one per step.
    gates: Vec<Tensor>,
    /// Cell states `c_t` `[B, H]`, one per step.
    cells: Vec<Tensor>,
    /// Hidden states `h_t` `[B, H]`, one per step.
    hiddens: Vec<Tensor>,
}

impl Lstm {
    /// Construct with explicit weights (mainly for tests).
    pub fn new(w_ih: Tensor, w_hh: Tensor, bias: Tensor) -> Self {
        let in_dim = w_ih.shape()[0];
        let four_h = w_ih.shape()[1];
        assert_eq!(four_h % 4, 0, "LSTM weight columns must be 4·hidden");
        let hidden = four_h / 4;
        assert_eq!(w_hh.shape(), &[hidden, four_h]);
        assert_eq!(bias.shape(), &[four_h]);
        Self {
            w_ih,
            w_hh,
            bias,
            in_dim,
            hidden,
        }
    }

    /// Xavier-initialized LSTM with the forget-gate bias set to 1 (the
    /// standard trick to ease gradient flow early in training).
    pub fn init(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let w_ih = init::xavier_uniform(&[in_dim, 4 * hidden], in_dim, hidden, rng);
        let w_hh = init::xavier_uniform(&[hidden, 4 * hidden], hidden, hidden, rng);
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for v in &mut bias.as_mut_slice()[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self::new(w_ih, w_hh, bias)
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn dims(&self, x: &Tensor) -> (usize, usize) {
        assert_eq!(x.rank(), 3, "Lstm expects [B, T, in]");
        assert_eq!(x.shape()[2], self.in_dim, "Lstm input width mismatch");
        (x.shape()[0], x.shape()[1])
    }

    /// Slice timestep `t` out of `[B, T, D]` as a `[B, D]` tensor.
    fn step_slice(x: &Tensor, t: usize, d: usize) -> Tensor {
        let (b, tt) = (x.shape()[0], x.shape()[1]);
        let mut out = Vec::with_capacity(b * d);
        for bi in 0..b {
            let base = (bi * tt + t) * d;
            out.extend_from_slice(&x.as_slice()[base..base + d]);
        }
        Tensor::from_vec(vec![b, d], out)
    }
}

impl Layer for Lstm {
    fn name(&self) -> &'static str {
        "Lstm"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let (b, t) = self.dims(x);
        let h = self.hidden;
        let mut cache = LstmCache {
            gates: Vec::with_capacity(t),
            cells: Vec::with_capacity(t),
            hiddens: Vec::with_capacity(t),
        };
        let mut h_prev = Tensor::zeros(&[b, h]);
        let mut c_prev = Tensor::zeros(&[b, h]);
        let mut out = vec![0.0f32; b * t * h];
        for step in 0..t {
            let x_t = Self::step_slice(x, step, self.in_dim);
            let mut z = x_t.matmul(&self.w_ih);
            z.add_assign(&h_prev.matmul(&self.w_hh));
            z.add_row_broadcast(&self.bias);
            let mut gates = z;
            let mut c_t = Tensor::zeros(&[b, h]);
            let mut h_t = Tensor::zeros(&[b, h]);
            for bi in 0..b {
                let grow = gates.row_mut(bi);
                for j in 0..h {
                    let i_g = sigmoid(grow[j]);
                    let f_g = sigmoid(grow[h + j]);
                    let g_g = grow[2 * h + j].tanh();
                    let o_g = sigmoid(grow[3 * h + j]);
                    grow[j] = i_g;
                    grow[h + j] = f_g;
                    grow[2 * h + j] = g_g;
                    grow[3 * h + j] = o_g;
                    let c = f_g * c_prev.at2(bi, j) + i_g * g_g;
                    c_t.row_mut(bi)[j] = c;
                    h_t.row_mut(bi)[j] = o_g * c.tanh();
                }
            }
            for bi in 0..b {
                let base = (bi * t + step) * h;
                out[base..base + h].copy_from_slice(h_t.row(bi));
            }
            cache.gates.push(gates);
            cache.cells.push(c_t.clone());
            cache.hiddens.push(h_t.clone());
            h_prev = h_t;
            c_prev = c_t;
        }
        (Tensor::from_vec(vec![b, t, h], out), Cache::new(cache))
    }

    fn backward(&self, x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let (b, t) = self.dims(x);
        let h = self.hidden;
        let cache = cache.get::<LstmCache>();
        let mut grad_w_ih = Tensor::zeros(self.w_ih.shape());
        let mut grad_w_hh = Tensor::zeros(self.w_hh.shape());
        let mut grad_bias = Tensor::zeros(self.bias.shape());
        let mut grad_x = vec![0.0f32; b * t * self.in_dim];
        let mut dh_next = Tensor::zeros(&[b, h]);
        let mut dc_next = Tensor::zeros(&[b, h]);
        for step in (0..t).rev() {
            let gates = &cache.gates[step];
            let c_t = &cache.cells[step];
            // dL/dh_t = upstream grad at this step + recurrent carry
            let mut dh = Self::step_slice(grad_out, step, h);
            dh.add_assign(&dh_next);
            // Raw-gate gradients dz [B, 4H]
            let mut dz = Tensor::zeros(&[b, 4 * h]);
            let mut dc_prev = Tensor::zeros(&[b, h]);
            for bi in 0..b {
                let g = gates.row(bi);
                for j in 0..h {
                    let (i_g, f_g, g_g, o_g) = (g[j], g[h + j], g[2 * h + j], g[3 * h + j]);
                    let c = c_t.at2(bi, j);
                    let tc = c.tanh();
                    let dh_v = dh.at2(bi, j);
                    let mut dc = dc_next.at2(bi, j) + dh_v * o_g * (1.0 - tc * tc);
                    let c_prev = if step == 0 {
                        0.0
                    } else {
                        cache.cells[step - 1].at2(bi, j)
                    };
                    let d_o = dh_v * tc;
                    let d_i = dc * g_g;
                    let d_g = dc * i_g;
                    let d_f = dc * c_prev;
                    dc *= f_g;
                    let row = dz.row_mut(bi);
                    row[j] = d_i * i_g * (1.0 - i_g);
                    row[h + j] = d_f * f_g * (1.0 - f_g);
                    row[2 * h + j] = d_g * (1.0 - g_g * g_g);
                    row[3 * h + j] = d_o * o_g * (1.0 - o_g);
                    dc_prev.row_mut(bi)[j] = dc;
                }
            }
            dc_next = dc_prev;
            // Parameter gradients
            let x_t = Self::step_slice(x, step, self.in_dim);
            grad_w_ih.add_assign(&x_t.matmul_at(&dz));
            if step > 0 {
                grad_w_hh.add_assign(&cache.hiddens[step - 1].matmul_at(&dz));
            }
            grad_bias.add_assign(&dz.sum_rows());
            // Input and recurrent gradients
            let dx_t = dz.matmul_bt(&self.w_ih);
            for bi in 0..b {
                let base = (bi * t + step) * self.in_dim;
                for (gx, &v) in grad_x[base..base + self.in_dim]
                    .iter_mut()
                    .zip(dx_t.row(bi))
                {
                    *gx += v;
                }
            }
            dh_next = dz.matmul_bt(&self.w_hh);
        }
        (
            Tensor::from_vec(x.shape().to_vec(), grad_x),
            vec![grad_w_ih, grad_w_hh, grad_bias],
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w_ih, &self.w_hh, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn forward_shape_and_bounds() {
        let mut rng = seeded(0);
        let lstm = Lstm::init(3, 5, &mut rng);
        let x = Tensor::from_fn(&[2, 7, 3], |i| ((i % 13) as f32 - 6.0) * 0.2);
        let (y, _) = lstm.forward(&x, false);
        assert_eq!(y.shape(), &[2, 7, 5]);
        // h = o * tanh(c) with o in (0,1) and tanh in (-1,1)
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_weights_gives_zero_output() {
        let lstm = Lstm::new(
            Tensor::zeros(&[2, 8]),
            Tensor::zeros(&[2, 8]),
            Tensor::zeros(&[8]),
        );
        let x = Tensor::zeros(&[1, 4, 2]);
        let (y, _) = lstm.forward(&x, false);
        // all gates sigmoid(0)=0.5, g=tanh(0)=0, so c=0, h=0
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = seeded(1);
        let lstm = Lstm::init(4, 6, &mut rng);
        let b = lstm.bias.as_slice();
        assert!(b[6..12].iter().all(|&v| v == 1.0));
        assert!(b[0..6].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn backward_shapes() {
        let mut rng = seeded(2);
        let lstm = Lstm::init(3, 4, &mut rng);
        let x = Tensor::from_fn(&[2, 5, 3], |i| (i as f32 * 0.01).sin());
        let (y, c) = lstm.forward(&x, true);
        let g = Tensor::filled(y.shape(), 0.1);
        let (gx, gp) = lstm.backward(&x, &c, &g);
        assert_eq!(gx.shape(), &[2, 5, 3]);
        assert_eq!(gp[0].shape(), &[3, 16]);
        assert_eq!(gp[1].shape(), &[4, 16]);
        assert_eq!(gp[2].shape(), &[16]);
    }

    #[test]
    fn longer_sequence_accumulates_state() {
        // With positive input weights and input, the cell state should grow
        // over time, so late hidden values differ from early ones.
        let mut rng = seeded(3);
        let lstm = Lstm::init(1, 2, &mut rng);
        let x = Tensor::filled(&[1, 10, 1], 1.0);
        let (y, _) = lstm.forward(&x, false);
        let first = &y.as_slice()[0..2];
        let last = &y.as_slice()[18..20];
        assert_ne!(first, last);
    }
}
