//! Token embedding lookup.

use crate::init;
use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use rand::Rng;

/// Embedding lookup: maps `[B, T]` token ids (stored as `f32` values that
/// must be exact small integers) to `[B, T, dim]` vectors.
///
/// The gradient w.r.t. the input is defined as zero (ids are not
/// differentiable); the gradient w.r.t. the table is a scatter-add.
pub struct Embedding {
    table: Tensor,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Construct with an explicit table `[vocab, dim]`.
    pub fn new(table: Tensor) -> Self {
        assert_eq!(table.rank(), 2, "Embedding table must be [vocab, dim]");
        let vocab = table.shape()[0];
        let dim = table.shape()[1];
        Self { table, vocab, dim }
    }

    /// Normal-initialized table with std `0.1` (small enough to keep the
    /// first LSTM steps in the linear regime).
    pub fn init(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Self::new(init::normal(&[vocab, dim], 0.1, rng))
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn token(&self, v: f32) -> usize {
        let id = v as usize;
        debug_assert!(
            (id as f32 - v).abs() < 1e-3 && id < self.vocab,
            "embedding input {v} is not a valid token id (vocab {})",
            self.vocab
        );
        id.min(self.vocab - 1)
    }
}

impl Layer for Embedding {
    fn name(&self) -> &'static str {
        "Embedding"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let n = x.len();
        let mut out = Vec::with_capacity(n * self.dim);
        for &v in x.as_slice() {
            let id = self.token(v);
            out.extend_from_slice(self.table.row(id));
        }
        let mut shape = x.shape().to_vec();
        shape.push(self.dim);
        (Tensor::from_vec(shape, out), Cache::none())
    }

    fn backward(&self, x: &Tensor, _cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let mut grad_table = Tensor::zeros(self.table.shape());
        for (i, &v) in x.as_slice().iter().enumerate() {
            let id = self.token(v);
            let g = &grad_out.as_slice()[i * self.dim..(i + 1) * self.dim];
            for (a, &b) in grad_table.row_mut(id).iter_mut().zip(g) {
                *a += b;
            }
        }
        (Tensor::zeros(x.shape()), vec![grad_table])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_rows() {
        let table = Tensor::from_vec(vec![3, 2], vec![0., 1., 10., 11., 20., 21.]);
        let e = Embedding::new(table);
        let x = Tensor::from_vec(vec![1, 3], vec![2., 0., 1.]);
        let (y, _) = e.forward(&x, false);
        assert_eq!(y.shape(), &[1, 3, 2]);
        assert_eq!(y.as_slice(), &[20., 21., 0., 1., 10., 11.]);
    }

    #[test]
    fn backward_scatter_adds() {
        let table = Tensor::zeros(&[3, 2]);
        let e = Embedding::new(table);
        let x = Tensor::from_vec(vec![1, 3], vec![1., 1., 2.]);
        let (_, c) = e.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let (gx, gp) = e.backward(&x, &c, &g);
        assert!(gx.as_slice().iter().all(|&v| v == 0.0));
        // token 1 hit twice: [1+3, 2+4]; token 2 once: [5, 6]
        assert_eq!(gp[0].as_slice(), &[0., 0., 4., 6., 5., 6.]);
    }

    #[test]
    fn param_count() {
        let mut rng = crate::rng::seeded(0);
        let e = Embedding::init(50, 8, &mut rng);
        assert_eq!(e.param_count(), 400);
        assert_eq!(e.vocab(), 50);
        assert_eq!(e.dim(), 8);
    }
}
