//! Flat parameter vectors — the unit of exchange on the tangle.
//!
//! Each tangle transaction carries a *full set of model parameters* (paper
//! §III). [`ParamVec`] flattens every learnable tensor of a [`Sequential`]
//! into one `Vec<f32>` in deterministic layer order, and can be written back
//! into any architecturally-identical model.

use crate::model::Sequential;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A model's parameters flattened into a single vector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParamVec(pub Vec<f32>);

impl ParamVec {
    /// Extract the parameters of `model` in layer order.
    pub fn from_model(model: &Sequential) -> Self {
        let mut out = Vec::with_capacity(model.param_count());
        for layer in model.layers() {
            for p in layer.params() {
                out.extend_from_slice(p.as_slice());
            }
        }
        ParamVec(out)
    }

    /// Write these parameters into `model`.
    ///
    /// # Panics
    /// Panics if the length does not match `model.param_count()`.
    pub fn assign_to(&self, model: &mut Sequential) {
        assert_eq!(
            self.0.len(),
            model.param_count(),
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        for layer in model.layers_mut() {
            for p in layer.params_mut() {
                let n = p.len();
                p.as_mut_slice()
                    .copy_from_slice(&self.0[offset..offset + n]);
                offset += n;
            }
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw values.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Euclidean distance to another parameter vector.
    pub fn l2_distance(&self, other: &ParamVec) -> f32 {
        assert_eq!(self.0.len(), other.0.len());
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Unweighted elementwise mean of several parameter vectors.
    ///
    /// This is the tangle's aggregation step: published models are *equally
    /// weighted* (paper §III-C), unlike FedAvg's sample-count weighting.
    ///
    /// # Panics
    /// Panics if `vecs` is empty or lengths differ.
    pub fn average(vecs: &[&ParamVec]) -> ParamVec {
        assert!(!vecs.is_empty(), "cannot average zero parameter vectors");
        let n = vecs[0].0.len();
        for v in vecs {
            assert_eq!(v.0.len(), n, "parameter vector length mismatch");
        }
        let inv = 1.0 / vecs.len() as f32;
        let mut out = vec![0.0f32; n];
        // Parallel over contiguous chunks of the parameter space.
        const CHUNK: usize = 16 * 1024;
        out.par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * CHUNK;
                for v in vecs {
                    let src = &v.0[base..base + chunk.len()];
                    for (o, &s) in chunk.iter_mut().zip(src) {
                        *o += s;
                    }
                }
                for o in chunk.iter_mut() {
                    *o *= inv;
                }
            });
        ParamVec(out)
    }

    /// Weighted elementwise mean; `weights` need not be normalized.
    ///
    /// Used by the FedAvg baseline (weights = local sample counts).
    pub fn weighted_average(vecs: &[&ParamVec], weights: &[f32]) -> ParamVec {
        assert_eq!(vecs.len(), weights.len());
        assert!(!vecs.is_empty(), "cannot average zero parameter vectors");
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let n = vecs[0].0.len();
        let mut out = vec![0.0f32; n];
        for (v, &w) in vecs.iter().zip(weights) {
            assert_eq!(v.0.len(), n, "parameter vector length mismatch");
            let w = w / total;
            for (o, &s) in out.iter_mut().zip(&v.0) {
                *o += w * s;
            }
        }
        ParamVec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::model::Sequential;
    use crate::rng::seeded;
    use crate::tensor::Tensor;

    fn model(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        Sequential::new(vec![
            Box::new(Dense::he(3, 5, &mut rng)),
            Box::new(Dense::xavier(5, 2, &mut rng)),
        ])
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let src = model(1);
        let mut dst = model(2);
        let x = Tensor::from_fn(&[4, 3], |i| (i as f32).sin());
        let before = src.predict(&x);
        ParamVec::from_model(&src).assign_to(&mut dst);
        let after = dst.predict(&x);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn len_matches_param_count() {
        let m = model(3);
        assert_eq!(ParamVec::from_model(&m).len(), m.param_count());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assign_rejects_wrong_length() {
        let mut m = model(4);
        ParamVec(vec![0.0; 3]).assign_to(&mut m);
    }

    #[test]
    fn average_is_elementwise_mean() {
        let a = ParamVec(vec![1.0, 2.0, 3.0]);
        let b = ParamVec(vec![3.0, 4.0, 5.0]);
        let avg = ParamVec::average(&[&a, &b]);
        assert_eq!(avg.0, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn average_of_one_is_identity() {
        let a = ParamVec(vec![1.5, -2.5]);
        assert_eq!(ParamVec::average(&[&a]).0, a.0);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let a = ParamVec(vec![0.0]);
        let b = ParamVec(vec![10.0]);
        let avg = ParamVec::weighted_average(&[&a, &b], &[1.0, 3.0]);
        assert!((avg.0[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn l2_distance() {
        let a = ParamVec(vec![0.0, 0.0]);
        let b = ParamVec(vec![3.0, 4.0]);
        assert!((a.l2_distance(&b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn large_average_parallel_path() {
        let n = 100_000;
        let a = ParamVec(vec![1.0; n]);
        let b = ParamVec(vec![3.0; n]);
        let avg = ParamVec::average(&[&a, &b]);
        assert!(avg.0.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }
}
