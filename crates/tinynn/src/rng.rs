//! Seeded RNG helpers.
//!
//! Every stochastic component in this workspace takes an explicit RNG (or
//! seed) so that experiments are reproducible run-to-run and so the
//! round-based and asynchronous simulators can be compared under identical
//! randomness.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fast, seedable RNG for simulation workloads (not cryptographic).
pub type Rng = SmallRng;

/// Construct the workspace-standard RNG from a `u64` seed.
pub fn seeded(seed: u64) -> Rng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Used to give each node / round / worker an independent, reproducible
/// stream: `derive(seed, node_id)` differs from `derive(seed, node_id + 1)`
/// in an avalanche fashion (SplitMix64 finalizer).
pub fn derive(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt as _;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(7);
        let mut b = seeded(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_spreads_streams() {
        let s = 1234;
        let a = derive(s, 0);
        let b = derive(s, 1);
        let c = derive(s, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // stable across calls
        assert_eq!(a, derive(s, 0));
    }
}
