//! The [`Layer`] trait: immutable forward/backward with an explicit cache.
//!
//! Layers never mutate themselves during a pass; everything a backward pass
//! needs is captured in the [`Cache`] returned by `forward`. This is what
//! allows several mini-batch chunks to run forward+backward concurrently
//! against a shared `&Sequential` (see [`crate::model`]).

use crate::tensor::Tensor;
use std::any::Any;

/// Opaque per-call state produced by [`Layer::forward`] and consumed by
/// [`Layer::backward`]. Each layer downcasts to its own concrete type.
pub struct Cache(Box<dyn Any + Send>);

impl Cache {
    /// Wrap a layer-specific cache value.
    pub fn new<T: Any + Send>(value: T) -> Self {
        Cache(Box::new(value))
    }

    /// An empty cache for stateless layers.
    pub fn none() -> Self {
        Cache(Box::new(()))
    }

    /// Downcast to the concrete cache type stored by the producing layer.
    ///
    /// # Panics
    /// Panics if the type does not match — that is a programming error in
    /// the layer pairing `forward`/`backward`.
    pub fn get<T: Any>(&self) -> &T {
        self.0
            .downcast_ref::<T>()
            .expect("layer cache downcast to wrong type")
    }

    /// Downcast if the cache holds a `T`, `None` otherwise (e.g. a layer
    /// whose inference-mode forward stored [`Cache::none`]).
    pub fn try_get<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

/// A differentiable network layer.
///
/// `forward` maps an input tensor to an output tensor and records whatever
/// intermediate state `backward` will need. `backward` receives the gradient
/// of the loss w.r.t. the layer output and returns the gradient w.r.t. the
/// input plus the gradients w.r.t. each parameter, in the same order as
/// [`Layer::params`].
pub trait Layer: Send + Sync {
    /// Human-readable layer name (used in summaries and error messages).
    fn name(&self) -> &'static str;

    /// Run the layer. `train` enables train-only behaviour such as dropout.
    fn forward(&self, x: &Tensor, train: bool) -> (Tensor, Cache);

    /// Backpropagate. Returns `(grad_input, grad_params)` where
    /// `grad_params[i]` matches `self.params()[i]` in shape and order.
    fn backward(&self, x: &Tensor, cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>);

    /// Borrow the layer's learnable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutably borrow the layer's learnable parameters, in the same order.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Total number of learnable scalars in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_roundtrip() {
        let c = Cache::new(vec![1u32, 2, 3]);
        assert_eq!(c.get::<Vec<u32>>(), &vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "downcast")]
    fn cache_wrong_type_panics() {
        let c = Cache::new(42u32);
        let _ = c.get::<String>();
    }

    #[test]
    fn cache_none_is_unit() {
        let c = Cache::none();
        let _ = c.get::<()>();
    }
}
