//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for tanh/sigmoid and
/// linear output layers.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let dist = Uniform::new_inclusive(-a, a).expect("valid uniform bounds");
    Tensor::from_fn(shape, |_| dist.sample(rng))
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`. The default
/// for ReLU networks.
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let dist = Normal::new(0.0f32, std).expect("valid normal params");
    Tensor::from_fn(shape, |_| dist.sample(rng))
}

/// Normal initialization with explicit standard deviation.
pub fn normal(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    let dist = Normal::new(0.0f32, std).expect("valid normal params");
    Tensor::from_fn(shape, |_| dist.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = seeded(1);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= a + 1e-6));
        // Not all identical
        assert!(t.as_slice().iter().any(|&v| v != t.as_slice()[0]));
    }

    #[test]
    fn he_normal_std_roughly_correct() {
        let mut rng = seeded(2);
        let fan_in = 128;
        let t = he_normal(&[fan_in, 256], fan_in, &mut rng);
        let n = t.len() as f32;
        let mean = t.sum() / n;
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let expect = 2.0 / fan_in as f32;
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = seeded(3);
        let t = normal(&[16], 0.0, &mut rng);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }
}
