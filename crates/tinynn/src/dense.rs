//! Fully-connected (affine) layer.

use crate::init;
use crate::layer::{Cache, Layer};
use crate::tensor::Tensor;
use rand::Rng;

/// A fully-connected layer computing `y = x · W + b` for `x: [B, in]`,
/// `W: [in, out]`, `b: [out]`.
///
/// When the input has rank 3 (`[B, T, in]`, e.g. per-timestep logits of a
/// language model) it is treated as `[B·T, in]`.
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Construct with explicit weights (mainly for tests).
    pub fn new(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "Dense weight must be rank 2");
        let in_dim = weight.shape()[0];
        let out_dim = weight.shape()[1];
        assert_eq!(bias.shape(), &[out_dim], "Dense bias shape mismatch");
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Xavier-uniform initialized layer (good default for output layers).
    pub fn xavier(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self::new(
            init::xavier_uniform(&[in_dim, out_dim], in_dim, out_dim, rng),
            Tensor::zeros(&[out_dim]),
        )
    }

    /// He-normal initialized layer (good default before ReLU).
    pub fn he(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self::new(
            init::he_normal(&[in_dim, out_dim], in_dim, rng),
            Tensor::zeros(&[out_dim]),
        )
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// View the input as a rank-2 `[rows, in_dim]` tensor.
    ///
    /// The *last* axis must equal `in_dim`: checking only divisibility of
    /// the total length silently accepted inputs like `[2, 8]` into a
    /// 4-wide layer, reinterpreting them as `[4, 4]`.
    fn as_rows(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape().last().copied(),
            Some(self.in_dim),
            "Dense: input {:?} must end in in_dim {}",
            x.shape(),
            self.in_dim
        );
        let rows = x.len() / self.in_dim;
        x.clone().reshape(vec![rows, self.in_dim])
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "Dense"
    }

    fn forward(&self, x: &Tensor, _train: bool) -> (Tensor, Cache) {
        let orig_shape = x.shape().to_vec();
        let x2 = self.as_rows(x);
        let mut y = x2.matmul(&self.weight);
        y.add_row_broadcast(&self.bias);
        // Preserve a leading batch structure: [..., in] -> [..., out]
        let mut out_shape = orig_shape;
        *out_shape.last_mut().expect("non-scalar input") = self.out_dim;
        (y.reshape(out_shape), Cache::none())
    }

    fn backward(&self, x: &Tensor, _cache: &Cache, grad_out: &Tensor) -> (Tensor, Vec<Tensor>) {
        let x2 = self.as_rows(x);
        let rows = x2.shape()[0];
        let g2 = grad_out.clone().reshape(vec![rows, self.out_dim]);
        // dL/dW = xᵀ g, dL/db = Σ_rows g, dL/dx = g Wᵀ
        let grad_w = x2.matmul_at(&g2);
        let grad_b = g2.sum_rows();
        let grad_x = g2.matmul_bt(&self.weight);
        (grad_x.reshape(x.shape().to_vec()), vec![grad_w, grad_b])
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn forward_matches_manual_affine() {
        // W = [[1,0],[0,1],[1,1]], b = [0.5, -0.5]
        let w = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let b = Tensor::from_vec(vec![2], vec![0.5, -0.5]);
        let layer = Dense::new(w, b);
        let x = Tensor::from_vec(vec![1, 3], vec![1., 2., 3.]);
        let (y, _) = layer.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[4.5, 4.5]);
    }

    #[test]
    fn forward_rank3_keeps_time_axis() {
        let mut rng = seeded(0);
        let layer = Dense::xavier(4, 3, &mut rng);
        let x = Tensor::from_fn(&[2, 5, 4], |i| i as f32 * 0.01);
        let (y, _) = layer.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5, 3]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = seeded(1);
        let layer = Dense::xavier(4, 3, &mut rng);
        let x = Tensor::from_fn(&[2, 4], |i| i as f32 * 0.1);
        let (y, cache) = layer.forward(&x, true);
        let g = Tensor::filled(y.shape(), 1.0);
        let (gx, gp) = layer.backward(&x, &cache, &g);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gp[0].shape(), &[4, 3]);
        assert_eq!(gp[1].shape(), &[3]);
    }

    #[test]
    #[should_panic(expected = "must end in in_dim")]
    fn rejects_input_whose_last_axis_is_not_in_dim() {
        // [2, 8] has 16 elements — divisible by in_dim=4 — but its feature
        // axis is 8; the old divisibility check silently accepted this.
        let layer = Dense::new(Tensor::zeros(&[4, 3]), Tensor::zeros(&[3]));
        let x = Tensor::zeros(&[2, 8]);
        let _ = layer.forward(&x, false);
    }

    #[test]
    fn param_count() {
        let mut rng = seeded(2);
        let layer = Dense::xavier(10, 7, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
    }

    #[test]
    fn bias_gradient_sums_rows() {
        let w = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2]);
        let layer = Dense::new(w, b);
        let x = Tensor::from_vec(vec![3, 2], vec![0.0; 6]);
        let (_, cache) = layer.forward(&x, true);
        let g = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let (_, gp) = layer.backward(&x, &cache, &g);
        assert_eq!(gp[1].as_slice(), &[9., 12.]);
    }
}
