//! Blocked, packed GEMM: the single matmul kernel behind every tinynn layer.
//!
//! One code path serves the plain (`A·B`), A-transposed (`Aᵀ·B`) and
//! B-transposed (`A·Bᵀ`) products: the transpose flags only change how
//! operands are *packed*, never how the inner kernel runs. The loop nest is
//! the classic three-level cache blocking (BLIS/GotoBLAS shape):
//!
//! - `NC`-wide column slabs of the output (L3-ish),
//! - `KC`-deep slices of the shared dimension, with the corresponding
//!   `KC × NC` slab of B packed once into k-major panels of `NR` columns,
//! - `MC`-tall row blocks, with the `MC × KC` slab of A packed into k-major
//!   panels of `MR` rows (L2-ish),
//! - an `MR × NR` register-tile microkernel written so the autovectorizer
//!   turns the `NR`-wide inner loop into SIMD lanes.
//!
//! **Determinism.** Every output element accumulates its `k` products in
//! strictly ascending order: the `KC` blocks advance in ascending `k` and the
//! microkernel loads the partially-accumulated tile from `out`, adds the
//! block's products in ascending `k`, and stores it back. Rust/LLVM does not
//! contract `a*b + c` into an FMA or reassociate float adds without explicit
//! fast-math, so the blocked kernel is **bit-identical** to the scalar
//! textbook loop (`acc = 0; for p { acc += a[i][p] * b[p][j] }`) retained in
//! the `reference` module below. The differential proptests in
//! `tests/properties.rs` pin this.
//!
//! **Parallelism.** Large products split the output into `MC`-row blocks
//! dispatched on the rayon pool; each block owns a disjoint slice of `out`,
//! so the result is independent of thread count and scheduling. Small
//! products (below [`PAR_GEMM_THRESHOLD`] multiply-adds) stay serial —
//! training-sized GEMMs are left serial so batch-chunk data parallelism in
//! `model.rs` owns the cores.

use rayon::prelude::*;

/// Row-block height packed per A panel set (also the parallel grain).
pub const MC: usize = 64;
/// Depth of one packed slice of the shared dimension.
pub const KC: usize = 256;
/// Column-slab width packed per B panel set.
pub const NC: usize = 128;
/// Microkernel register-tile rows.
pub const MR: usize = 4;
/// Microkernel register-tile columns (two SSE lanes of f32).
pub const NR: usize = 8;

/// Minimum `m·n·k` multiply-adds before row blocks go to the thread pool.
///
/// Kept at 64³ so evaluation-sized products parallelize while per-chunk
/// training GEMMs stay serial under the batch-chunk parallelism in
/// `Sequential::loss_and_grads_chunked` (nested pool regions would serialize
/// anyway, but staying below the threshold also skips the dispatch cost).
pub const PAR_GEMM_THRESHOLD: usize = 64 * 64 * 64;

/// A logical `rows × cols` operand over row-major storage; `trans` means the
/// storage is the transpose (`cols × rows`) and indexing swaps.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    trans: bool,
}

impl<'a> MatRef<'a> {
    fn new(data: &'a [f32], rows: usize, cols: usize, trans: bool) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        MatRef {
            data,
            rows,
            cols,
            trans,
        }
    }

    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        if self.trans {
            self.data[c * self.rows + r]
        } else {
            self.data[r * self.cols + c]
        }
    }
}

#[inline(always)]
fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Pack the `kc × nc` slab of B starting at `(pc, jc)` into k-major panels
/// of `NR` columns, zero-padding the ragged last panel.
fn pack_b(b: &MatRef<'_>, pc: usize, jc: usize, kc: usize, nc: usize, bpack: &mut Vec<f32>) {
    let panels = ceil_div(nc, NR);
    bpack.clear();
    bpack.resize(panels * kc * NR, 0.0);
    for panel in 0..panels {
        let j0 = panel * NR;
        let width = NR.min(nc - j0);
        let dst = &mut bpack[panel * kc * NR..(panel + 1) * kc * NR];
        for p in 0..kc {
            for c in 0..width {
                dst[p * NR + c] = b.at(pc + p, jc + j0 + c);
            }
        }
    }
}

/// Pack the `mc × kc` slab of A starting at `(ic, pc)` into k-major panels
/// of `MR` rows, zero-padding the ragged last panel.
fn pack_a(a: &MatRef<'_>, ic: usize, pc: usize, mc: usize, kc: usize, apack: &mut Vec<f32>) {
    let panels = ceil_div(mc, MR);
    apack.clear();
    apack.resize(panels * kc * MR, 0.0);
    for panel in 0..panels {
        let i0 = panel * MR;
        let height = MR.min(mc - i0);
        let dst = &mut apack[panel * kc * MR..(panel + 1) * kc * MR];
        for p in 0..kc {
            for r in 0..height {
                dst[p * MR + r] = a.at(ic + i0 + r, pc + p);
            }
        }
    }
}

/// `MR × NR` register tile: `c[r][j] += Σ_p ap[p][r] · bp[p][j]`, ascending
/// `p`. The `NR`-wide inner loop is the autovectorizer target; each output
/// lane keeps its own serial accumulation chain, so no reassociation occurs.
#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32; MR * NR]) {
    debug_assert!(ap.len() >= kc * MR);
    debug_assert!(bp.len() >= kc * NR);
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for r in 0..MR {
            let ar = a[r];
            let row = &mut c[r * NR..r * NR + NR];
            for (cv, &bv) in row.iter_mut().zip(b) {
                *cv += ar * bv;
            }
        }
    }
}

/// Process one `mc`-row block of the output against the packed B slab:
/// pack the block's A panels, then run the microkernel over every tile,
/// loading and storing partially-accumulated output values.
#[allow(clippy::too_many_arguments)]
fn process_row_block(
    a: &MatRef<'_>,
    out_rows: &mut [f32],
    n: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bpack: &[f32],
    apack: &mut Vec<f32>,
) {
    pack_a(a, ic, pc, mc, kc, apack);
    let b_panels = ceil_div(nc, NR);
    let a_panels = ceil_div(mc, MR);
    let mut tile = [0.0f32; MR * NR];
    for bp_idx in 0..b_panels {
        let j0 = bp_idx * NR;
        let width = NR.min(nc - j0);
        let bp = &bpack[bp_idx * kc * NR..(bp_idx + 1) * kc * NR];
        for ap_idx in 0..a_panels {
            let i0 = ap_idx * MR;
            let height = MR.min(mc - i0);
            let ap = &apack[ap_idx * kc * MR..(ap_idx + 1) * kc * MR];
            // Load the partial accumulators for this tile (zero-padded at
            // the ragged edges so padded lanes never touch real output).
            tile.fill(0.0);
            for r in 0..height {
                let src = &out_rows[(i0 + r) * n + jc + j0..(i0 + r) * n + jc + j0 + width];
                tile[r * NR..r * NR + width].copy_from_slice(src);
            }
            microkernel(kc, ap, bp, &mut tile);
            for r in 0..height {
                let dst = &mut out_rows[(i0 + r) * n + jc + j0..(i0 + r) * n + jc + j0 + width];
                dst.copy_from_slice(&tile[r * NR..r * NR + width]);
            }
        }
    }
}

/// Single-entry blocked/packed GEMM: `out[m×n] = op(A) · op(B)` where
/// `op(X)` is `Xᵀ` when the matching flag is set. `a` holds `m×k` values
/// (`k×m` when `ta`), `b` holds `k×n` (`n×k` when `tb`); `out` is
/// overwritten. Bit-identical to [`reference::matmul`] for every shape and
/// flag combination, and to itself at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    out: &mut [f32],
) {
    out.fill(0.0);
    gemm_accum(m, n, k, a, ta, b, tb, out);
}

/// Like [`gemm`] but accumulating: `out += op(A) · op(B)`. Each output
/// element's chain starts from its existing value and adds the `k` products
/// in ascending order, so `fill(bias)` followed by `gemm_accum` reproduces
/// the classic `acc = bias; acc += …` loop bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn gemm_accum(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm: A storage is not m*k = {m}*{k}");
    assert_eq!(b.len(), k * n, "gemm: B storage is not k*n = {k}*{n}");
    assert_eq!(
        out.len(),
        m * n,
        "gemm: output storage is not m*n = {m}*{n}"
    );
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a = if ta {
        MatRef::new(a, m, k, true)
    } else {
        MatRef::new(a, m, k, false)
    };
    let b = if tb {
        MatRef::new(b, k, n, true)
    } else {
        MatRef::new(b, k, n, false)
    };
    let parallel = m > MC && m * n * k >= PAR_GEMM_THRESHOLD;
    let mut bpack = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&b, pc, jc, kc, nc, &mut bpack);
            if parallel {
                let bp = &bpack;
                let a_ref = &a;
                out.par_chunks_mut(MC * n)
                    .enumerate()
                    .for_each(|(blk, rows)| {
                        let ic = blk * MC;
                        let mc = rows.len() / n;
                        let mut apack = Vec::new();
                        process_row_block(a_ref, rows, n, ic, mc, pc, kc, jc, nc, bp, &mut apack);
                    });
            } else {
                let mut apack = Vec::new();
                for (blk, rows) in out.chunks_mut(MC * n).enumerate() {
                    let ic = blk * MC;
                    let mc = rows.len() / n;
                    process_row_block(&a, rows, n, ic, mc, pc, kc, jc, nc, &bpack, &mut apack);
                }
            }
        }
    }
}

/// Textbook scalar kernels, retained as the differential-test oracle for the
/// blocked path. Never used on a hot path.
pub mod reference {
    /// `out[m×n] = op(A)·op(B)` via the naive triple loop: for each element,
    /// `acc = 0; acc += a·b` in ascending `k`. The blocked kernel must match
    /// this bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        ta: bool,
        b: &[f32],
        tb: bool,
        out: &mut [f32],
    ) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        let at = |r: usize, c: usize| if ta { a[c * m + r] } else { a[r * k + c] };
        let bt = |r: usize, c: usize| if tb { b[c * k + r] } else { b[r * n + c] };
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += at(i, p) * bt(p, j);
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// Accumulating variant: `out[i][j] += Σ_p a·b` with the chain starting
    /// from the existing `out` value, matching [`super::gemm_accum`].
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_accum(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        ta: bool,
        b: &[f32],
        tb: bool,
        out: &mut [f32],
    ) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        let at = |r: usize, c: usize| if ta { a[c * m + r] } else { a[r * k + c] };
        let bt = |r: usize, c: usize| if tb { b[c * k + r] } else { b[r * n + c] };
        for i in 0..m {
            for j in 0..n {
                let mut acc = out[i * n + j];
                for p in 0..k {
                    acc += at(i, p) * bt(p, j);
                }
                out[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        // Small deterministic LCG; values in roughly [-1, 1].
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as i32 as f32) / (i32::MAX as f32)
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize, ta: bool, tb: bool) {
        let a = fill(m as u64 * 31 + k as u64, m * k);
        let b = fill(n as u64 * 17 + k as u64 + 7, k * n);
        let mut blocked = vec![f32::NAN; m * n];
        let mut naive = vec![f32::NAN; m * n];
        gemm(m, n, k, &a, ta, &b, tb, &mut blocked);
        reference::matmul(m, n, k, &a, ta, &b, tb, &mut naive);
        for (i, (x, y)) in blocked.iter().zip(&naive).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "element {i} differs for {m}x{n}x{k} ta={ta} tb={tb}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (MR, NR, KC),
            (MR + 1, NR + 3, KC + 5),
            (MC + 7, NC + 9, KC + 11),
            (130, 2, 300),
            (2, 130, 300),
            (65, 129, 257),
        ] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true)] {
                check(m, n, k, ta, tb);
            }
        }
    }

    #[test]
    fn empty_dims_yield_zero_filled_or_empty_output() {
        let mut out = vec![f32::NAN; 6];
        gemm(2, 3, 0, &[], false, &[], false, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
        let mut empty: Vec<f32> = Vec::new();
        gemm(0, 0, 4, &[], false, &[], false, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn accumulate_extends_the_chain_from_existing_values() {
        let (m, n, k) = (9, 11, 13);
        let a = fill(3, m * k);
        let b = fill(5, k * n);
        let bias = fill(7, m * n);
        let mut blocked = bias.clone();
        let mut naive = bias.clone();
        gemm_accum(m, n, k, &a, false, &b, false, &mut blocked);
        reference::matmul_accum(m, n, k, &a, false, &b, false, &mut naive);
        for (x, y) in blocked.iter().zip(&naive) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parallel_sized_product_matches_naive_bitwise() {
        // Above PAR_GEMM_THRESHOLD with m > MC: exercises the pooled path.
        check(3 * MC + 1, 96, 100, false, false);
        check(3 * MC + 1, 96, 100, true, false);
        check(3 * MC + 1, 96, 100, false, true);
    }
}
