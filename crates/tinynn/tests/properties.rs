//! Property-based tests of the tensor/parameter machinery.

use proptest::prelude::*;
use tinynn::{gemm, ParamVec, Tensor};

/// Random rank-2 tensor strategy: dims in 1..=8, finite values.
fn mat(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(vec![r, c], v))
    })
}

/// GEMM shape strategy biased toward block-boundary pathologies: each dim
/// drawn from hostile values (1, primes, exact block multiples, ±1 around
/// them) as well as a uniform range — so packed-edge handling, tall/skinny
/// and single-element cases are all hit every run.
fn gemm_dim() -> impl Strategy<Value = usize> {
    (0usize..11, 1usize..=80).prop_map(|(pick, uniform)| {
        const HOSTILE: [usize; 10] = [1, 2, 3, 5, 7, 13, 31, 63, 64, 65];
        if pick < HOSTILE.len() {
            HOSTILE[pick]
        } else {
            uniform
        }
    })
}

fn gemm_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (gemm_dim(), gemm_dim(), gemm_dim())
}

/// Assert two GEMM outputs agree to ≤1 ulp per element (they are expected
/// to be bit-identical; the ulp slack documents the contract without
/// over-pinning).
fn assert_ulp_close(got: &[f32], want: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let ulp = (g.to_bits() as i64 - w.to_bits() as i64).abs();
        prop_assert!(
            g == w || ulp <= 1,
            "element {i}: {g} vs {w} ({ulp} ulps apart)"
        );
    }
    Ok(())
}

/// Blocked GEMM with no transposes: `gemm` output must match the retained
/// naive reference bit-for-bit on hostile shapes.
#[test]
fn gemm_empty_and_degenerate_shapes_no_panic() {
    // (m, n, k) with zeros and singletons: must not panic, must agree with
    // the reference (k = 0 means every output is exactly +0.0).
    for &(m, n, k) in &[
        (0usize, 0usize, 0usize),
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 1, 1),
        (1, 64, 1),
        (64, 1, 256),
    ] {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.53).cos()).collect();
        let mut got = vec![f32::NAN; m * n];
        let mut want = vec![f32::NAN; m * n];
        gemm::gemm(m, n, k, &a, false, &b, false, &mut got);
        gemm::reference::matmul(m, n, k, &a, false, &b, false, &mut want);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "shape ({m},{n},{k})"
        );
        if k == 0 && m * n > 0 {
            assert!(got.iter().all(|v| v.to_bits() == 0), "k=0 must zero-fill");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked/packed GEMM agrees with the naive reference on all three
    /// used transpose variants (plus both-transposed, reachable through the
    /// public API), across block-boundary shapes. Exact bitwise agreement
    /// is the design goal; ≤1 ulp is the asserted contract.
    #[test]
    fn gemm_blocked_matches_naive_reference(
        dims in gemm_dims(),
        seed in any::<u64>(),
    ) {
        let (m, n, k) = dims;
        let mut rng = tinynn::rng::seeded(seed);
        use rand::RngExt as _;
        let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-3.0f32..3.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-3.0f32..3.0)).collect();
        for &(ta, tb) in &[(false, false), (false, true), (true, false), (true, true)] {
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            gemm::gemm(m, n, k, &a, ta, &b, tb, &mut got);
            gemm::reference::matmul(m, n, k, &a, ta, &b, tb, &mut want);
            assert_ulp_close(&got, &want)?;
        }
    }

    /// The accumulating entry point chains onto pre-filled output exactly
    /// like the naive accumulating reference.
    #[test]
    fn gemm_accum_matches_naive_reference(
        dims in gemm_dims(),
        seed in any::<u64>(),
    ) {
        let (m, n, k) = dims;
        let mut rng = tinynn::rng::seeded(seed);
        use rand::RngExt as _;
        let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-3.0f32..3.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-3.0f32..3.0)).collect();
        let init: Vec<f32> = (0..m * n).map(|_| rng.random_range(-3.0f32..3.0)).collect();
        let mut got = init.clone();
        let mut want = init;
        gemm::gemm_accum(m, n, k, &a, false, &b, false, &mut got);
        gemm::reference::matmul_accum(m, n, k, &a, false, &b, false, &mut want);
        assert_ulp_close(&got, &want)?;
    }

    /// (A·B)·C == A·(B·C) up to f32 noise, on compatible shapes.
    #[test]
    fn matmul_associative(
        a in mat(6),
        bv in prop::collection::vec(-10.0f32..10.0, 36),
        cv in prop::collection::vec(-10.0f32..10.0, 36),
    ) {
        let k = a.shape()[1];
        let b = Tensor::from_vec(vec![k, 6], bv[..k * 6].to_vec());
        let c = Tensor::from_vec(vec![6, 4], cv[..24].to_vec());
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    /// matmul_bt(a, b) == a · bᵀ computed via explicit transpose.
    #[test]
    fn matmul_bt_consistent(a in mat(6), bv in prop::collection::vec(-5.0f32..5.0, 48)) {
        let k = a.shape()[1];
        let n = 4;
        let b = Tensor::from_vec(vec![n, k], bv[..n * k].to_vec());
        // explicit transpose
        let mut bt = vec![0.0f32; k * n];
        for i in 0..n {
            for j in 0..k {
                bt[j * n + i] = b.as_slice()[i * k + j];
            }
        }
        let bt = Tensor::from_vec(vec![k, n], bt);
        let fast = a.matmul_bt(&b);
        let slow = a.matmul(&bt);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// matmul_at(a, b) == aᵀ · b computed via explicit transpose.
    #[test]
    fn matmul_at_consistent(bv in prop::collection::vec(-5.0f32..5.0, 60)) {
        let (k, m, n) = (5, 3, 4);
        let a = Tensor::from_vec(vec![k, m], bv[..k * m].to_vec());
        let b = Tensor::from_vec(vec![k, n], bv[k * m..k * m + k * n].to_vec());
        let mut at = vec![0.0f32; m * k];
        for i in 0..k {
            for j in 0..m {
                at[j * k + i] = a.as_slice()[i * m + j];
            }
        }
        let at = Tensor::from_vec(vec![m, k], at);
        let fast = a.matmul_at(&b);
        let slow = at.matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// slice_batch concatenation reconstructs the tensor.
    #[test]
    fn slice_batch_partition(a in mat(8), cut in 0usize..8) {
        let rows = a.shape()[0];
        let cut = cut.min(rows);
        let head = a.slice_batch(0, cut);
        let tail = a.slice_batch(cut, rows);
        let mut joined = head.as_slice().to_vec();
        joined.extend_from_slice(tail.as_slice());
        prop_assert_eq!(joined, a.as_slice().to_vec());
    }

    /// softmax-CE loss is non-negative and its gradient rows sum to ~0.
    #[test]
    fn ce_loss_gradient_rows_sum_zero(
        logits in mat(6),
        tseed in any::<u64>(),
    ) {
        let (rows, classes) = (logits.shape()[0], logits.shape()[1]);
        let targets: Vec<u32> = (0..rows).map(|i| ((tseed as usize + i) % classes) as u32).collect();
        let (loss, grad) = tinynn::loss::softmax_cross_entropy(&logits, &targets);
        prop_assert!(loss >= 0.0);
        for i in 0..rows {
            let s: f32 = grad.as_slice()[i * classes..(i + 1) * classes].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    /// Full-precision wire codec roundtrips arbitrary payload sizes.
    #[test]
    fn wire_roundtrip(v in prop::collection::vec(-1e5f32..1e5, 0..300)) {
        let p = ParamVec(v);
        prop_assert_eq!(tinynn::wire::decode(&tinynn::wire::encode(&p)).unwrap(), p);
    }

    /// Quantized codec: error bounded by half a step of the value range.
    #[test]
    fn quantized_error_bound(v in prop::collection::vec(-50f32..50.0, 1..300)) {
        let p = ParamVec(v.clone());
        let dec = tinynn::wire::quantized::decode(&tinynn::wire::quantized::encode(&p)).unwrap();
        let lo = v.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let bound = (hi - lo) / 510.0 + 1e-4;
        for (a, b) in p.as_slice().iter().zip(dec.as_slice()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    /// weighted_average with equal weights equals average.
    #[test]
    fn weighted_equals_plain_for_equal_weights(
        a in prop::collection::vec(-10f32..10.0, 1..64),
        b in prop::collection::vec(-10f32..10.0, 1..64),
    ) {
        let n = a.len().min(b.len());
        let pa = ParamVec(a[..n].to_vec());
        let pb = ParamVec(b[..n].to_vec());
        let plain = ParamVec::average(&[&pa, &pb]);
        let weighted = ParamVec::weighted_average(&[&pa, &pb], &[3.0, 3.0]);
        for (x, y) in plain.as_slice().iter().zip(weighted.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Parameter flatten/assign roundtrips through a fresh model.
    #[test]
    fn param_roundtrip_preserves_prediction(seed in any::<u64>(), x in prop::collection::vec(-2f32..2.0, 6)) {
        let mut rng = tinynn::rng::seeded(seed);
        let src = tinynn::zoo::mlp(6, &[5], 3, &mut rng);
        let mut dst = tinynn::zoo::mlp(6, &[5], 3, &mut tinynn::rng::seeded(seed ^ 1));
        ParamVec::from_model(&src).assign_to(&mut dst);
        let xt = Tensor::from_vec(vec![1, 6], x);
        let a = src.predict(&xt);
        let b = dst.predict(&xt);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
