//! Property-based tests of the aggregation rules.

use fedavg::aggregate::{coordinate_median, krum_scores, trimmed_mean, Aggregator};
use proptest::prelude::*;
use tinynn::ParamVec;

fn updates(flat: &[f32], n: usize) -> Vec<ParamVec> {
    let dim = flat.len() / n;
    (0..n)
        .map(|i| ParamVec(flat[i * dim..(i + 1) * dim].to_vec()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Krum returns exactly one of its inputs.
    #[test]
    fn krum_selects_an_input(flat in prop::collection::vec(-100f32..100.0, 20..60)) {
        let n = 5;
        let dim = flat.len() / n;
        prop_assume!(dim >= 1);
        let vs = updates(&flat[..n * dim], n);
        let refs: Vec<&ParamVec> = vs.iter().collect();
        let out = Aggregator::Krum { f: 1 }.aggregate(&refs, &[1.0; 5]);
        prop_assert!(vs.contains(&out), "krum must pick an existing update");
    }

    /// Coordinate-wise rules stay inside the coordinate-wise envelope.
    #[test]
    fn robust_rules_stay_in_envelope(flat in prop::collection::vec(-100f32..100.0, 24..72)) {
        let n = 6;
        let dim = flat.len() / n;
        prop_assume!(dim >= 1);
        let vs = updates(&flat[..n * dim], n);
        let refs: Vec<&ParamVec> = vs.iter().collect();
        let med = coordinate_median(&refs);
        let tm = trimmed_mean(&refs, 0.2);
        for c in 0..dim {
            let col: Vec<f32> = vs.iter().map(|v| v.as_slice()[c]).collect();
            let lo = col.iter().cloned().fold(f32::INFINITY, f32::min) - 1e-4;
            let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max) + 1e-4;
            prop_assert!(med.as_slice()[c] >= lo && med.as_slice()[c] <= hi);
            prop_assert!(tm.as_slice()[c] >= lo && tm.as_slice()[c] <= hi);
        }
    }

    /// Krum scores are permutation-equivariant: relabeling the updates
    /// permutes the scores the same way.
    #[test]
    fn krum_scores_permutation_equivariant(
        flat in prop::collection::vec(-50f32..50.0, 30),
        swap in (0usize..6, 0usize..6),
    ) {
        let vs = updates(&flat, 6);
        let refs: Vec<&ParamVec> = vs.iter().collect();
        let base = krum_scores(&refs, 1);
        let mut perm = vs.clone();
        perm.swap(swap.0, swap.1);
        let refs2: Vec<&ParamVec> = perm.iter().collect();
        let scored = krum_scores(&refs2, 1);
        let mut expect = base.clone();
        expect.swap(swap.0, swap.1);
        for (a, b) in scored.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// All rules agree on identical inputs: aggregate == the common value.
    #[test]
    fn unanimous_inputs_pass_through(v in prop::collection::vec(-10f32..10.0, 1..16)) {
        let p = ParamVec(v);
        let refs = vec![&p; 6];
        let w = [1.0f32; 6];
        for rule in [
            Aggregator::Mean,
            Aggregator::Krum { f: 1 },
            Aggregator::MultiKrum { f: 1, m: 3 },
            Aggregator::Median,
            Aggregator::TrimmedMean { beta: 0.2 },
        ] {
            let out = rule.aggregate(&refs, &w);
            for (a, b) in out.as_slice().iter().zip(p.as_slice()) {
                prop_assert!((a - b).abs() < 1e-5, "{rule:?}: {a} vs {b}");
            }
        }
    }
}
