//! Local-training primitives shared by FedAvg and the learning tangle.

use feddata::{ClientData, FederatedDataset};
use rand::RngExt;
use tinynn::{ParamVec, Sequential, Sgd, Tensor};

/// Gather rows of `x` (leading axis) by index.
pub fn gather_rows(x: &Tensor, idx: &[usize]) -> Tensor {
    let stride: usize = x.shape()[1..].iter().product();
    let mut out = Vec::with_capacity(idx.len() * stride);
    for &i in idx {
        out.extend_from_slice(&x.as_slice()[i * stride..(i + 1) * stride]);
    }
    let mut shape = x.shape().to_vec();
    shape[0] = idx.len();
    Tensor::from_vec(shape, out)
}

/// Gather the target rows corresponding to sample indices, accounting for
/// sequence tasks where each sample carries several target rows.
fn gather_targets(y: &[u32], idx: &[usize], rows_per_sample: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(idx.len() * rows_per_sample);
    for &i in idx {
        out.extend_from_slice(&y[i * rows_per_sample..(i + 1) * rows_per_sample]);
    }
    out
}

/// Knobs for [`local_train_with`]. `chunks > 1` splits each mini-batch into
/// per-worker gradient chunks combined by a fixed-order tree reduction; the
/// result is a function of `chunks` only, so `parallel` (execution strategy)
/// never changes the trained weights.
#[derive(Debug, Clone, Copy)]
pub struct TrainOpts {
    /// Number of local epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Gradient-accumulation chunks per batch (1 = single-shot backward).
    pub chunks: usize,
    /// Execute chunks on the worker pool; bit-identical to serial.
    pub parallel: bool,
}

impl TrainOpts {
    /// Single-shot backward per batch, matching the original `local_train`.
    pub fn single(epochs: usize, lr: f32, batch_size: usize) -> Self {
        Self {
            epochs,
            lr,
            batch_size,
            chunks: 1,
            parallel: false,
        }
    }
}

/// Run `epochs` epochs of mini-batch SGD on a client's training data,
/// starting from the parameters already loaded in `model`. Mutates `model`
/// in place and returns the final average training loss of the last epoch.
///
/// This is the `Train(w, epochs, lr)` step of the paper's Algorithm 2.
pub fn local_train(
    model: &mut Sequential,
    client: &ClientData,
    epochs: usize,
    lr: f32,
    batch_size: usize,
    rng: &mut impl RngExt,
) -> f32 {
    local_train_with(
        model,
        client,
        TrainOpts::single(epochs, lr, batch_size),
        rng,
    )
}

/// [`local_train`] with explicit chunked/parallel gradient options.
pub fn local_train_with(
    model: &mut Sequential,
    client: &ClientData,
    opts: TrainOpts,
    rng: &mut impl RngExt,
) -> f32 {
    let n = client.train_len();
    if n == 0 {
        return 0.0;
    }
    let rows_per_sample = client.train_y.len() / n;
    let mut sgd = Sgd::new(opts.lr);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut last_epoch_loss = 0.0;
    for _ in 0..opts.epochs.max(1) {
        // Fisher-Yates shuffle per epoch.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let mut loss_sum = 0.0f32;
        let mut batches = 0;
        for chunk in idx.chunks(opts.batch_size.max(1)) {
            let xb = gather_rows(&client.train_x, chunk);
            let yb = gather_targets(&client.train_y, chunk, rows_per_sample);
            let (loss, grads) = if opts.chunks > 1 {
                model.loss_and_grads_chunked(&xb, &yb, opts.chunks, opts.parallel)
            } else {
                model.loss_and_grads(&xb, &yb)
            };
            sgd.step(model, &grads);
            loss_sum += loss;
            batches += 1;
        }
        last_epoch_loss = loss_sum / batches.max(1) as f32;
    }
    last_epoch_loss
}

/// Evaluate a parameter vector on the pooled held-out data of `clients`.
/// Returns `(loss, accuracy)`. `model` is scratch space defining the
/// architecture; its parameters are overwritten.
pub fn evaluate_params(
    model: &mut Sequential,
    params: &ParamVec,
    clients: &[&ClientData],
) -> (f32, f32) {
    params.assign_to(model);
    let mut loss_sum = 0.0f64;
    let mut hit_sum = 0.0f64;
    let mut rows = 0usize;
    for c in clients {
        if c.test_len() == 0 {
            continue;
        }
        let (loss, acc) = model.evaluate(&c.test_x, &c.test_y);
        let r = c.test_y.len();
        loss_sum += loss as f64 * r as f64;
        hit_sum += acc as f64 * r as f64;
        rows += r;
    }
    if rows == 0 {
        return (0.0, 0.0);
    }
    (
        (loss_sum / rows as f64) as f32,
        (hit_sum / rows as f64) as f32,
    )
}

/// Pick a random `frac` of all clients for evaluation (at least one), the
/// paper's "test datasets of a random selection of 10% of all nodes".
pub fn sample_eval_clients<'a>(
    data: &'a FederatedDataset,
    frac: f32,
    rng: &mut impl RngExt,
) -> Vec<&'a ClientData> {
    let n = data.num_clients();
    let k = (((n as f32) * frac).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.into_iter().map(|i| &data.clients[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::blobs::{self, BlobsConfig};
    use tinynn::rng::seeded;

    #[test]
    fn gather_rows_picks_and_orders() {
        let x = Tensor::from_fn(&[4, 2], |i| i as f32);
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g.shape(), &[2, 2]);
        assert_eq!(g.as_slice(), &[4., 5., 0., 1.]);
    }

    #[test]
    fn local_train_reduces_loss() {
        let ds = blobs::generate(
            &BlobsConfig {
                users: 1,
                samples_per_user: (60, 60),
                label_skew_alpha: None,
                noise_std: 0.5,
                ..BlobsConfig::default()
            },
            1,
        );
        let c = &ds.clients[0];
        let mut rng = seeded(0);
        let mut model = tinynn::zoo::mlp(8, &[16], 4, &mut rng);
        let (loss0, _) = model.evaluate(&c.train_x, &c.train_y);
        let mut train_rng = seeded(1);
        for _ in 0..10 {
            local_train(&mut model, c, 1, 0.2, 16, &mut train_rng);
        }
        let (loss1, _) = model.evaluate(&c.train_x, &c.train_y);
        assert!(loss1 < loss0 * 0.7, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn chunked_parallel_training_bitwise_equals_serial() {
        // Whole-loop determinism: shuffled epochs of chunked SGD must land on
        // byte-identical weights whether chunks run on the pool or inline.
        let ds = blobs::generate(
            &BlobsConfig {
                users: 1,
                samples_per_user: (40, 40),
                ..BlobsConfig::default()
            },
            7,
        );
        let c = &ds.clients[0];
        let run = |parallel: bool| {
            let mut rng = seeded(9);
            let mut model = tinynn::zoo::mlp(8, &[16], 4, &mut rng);
            let mut train_rng = seeded(11);
            let opts = TrainOpts {
                epochs: 2,
                lr: 0.1,
                batch_size: 16,
                chunks: 4,
                parallel,
            };
            let loss = local_train_with(&mut model, c, opts, &mut train_rng);
            (loss, ParamVec::from_model(&model))
        };
        let (loss_p, w_p) = run(true);
        let (loss_s, w_s) = run(false);
        assert_eq!(loss_p.to_bits(), loss_s.to_bits());
        assert_eq!(w_p.0.len(), w_s.0.len());
        for (i, (a, b)) in w_p.0.iter().zip(&w_s.0).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "weight {i} diverged");
        }
    }

    #[test]
    fn evaluate_params_weighted_by_rows() {
        let ds = blobs::generate(&BlobsConfig::default(), 2);
        let mut rng = seeded(3);
        let mut model = tinynn::zoo::mlp(8, &[16], 4, &mut rng);
        let params = ParamVec::from_model(&model);
        let clients: Vec<&ClientData> = ds.clients.iter().collect();
        let (loss, acc) = evaluate_params(&mut model, &params, &clients);
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(evaluate_params(&mut model, &params, &[]), (0.0, 0.0));
    }

    #[test]
    fn sample_eval_clients_fraction() {
        let ds = blobs::generate(&BlobsConfig::default(), 4);
        let mut rng = seeded(5);
        let sel = sample_eval_clients(&ds, 0.1, &mut rng);
        assert_eq!(sel.len(), 2); // 10% of 20
        let sel = sample_eval_clients(&ds, 0.0, &mut rng);
        assert_eq!(sel.len(), 1, "at least one");
        let sel = sample_eval_clients(&ds, 2.0, &mut rng);
        assert_eq!(sel.len(), 20, "capped at all");
    }
}
