//! Robust aggregation rules for the centralized baseline.
//!
//! The paper's related-work section (§II-A) points at median-based
//! byzantine-fault-tolerant aggregation — in particular Krum (Blanchard et
//! al.) — as the standard server-side poisoning defense, and notes its
//! weakness on non-IID data. These rules let the FedAvg baseline be run
//! with the same defenses the paper compares against conceptually.

use tinynn::ParamVec;

/// Server-side aggregation rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Aggregator {
    /// Sample-count-weighted mean — classic FedAvg.
    Mean,
    /// Krum: select the single update whose summed squared distance to its
    /// `n − f − 2` nearest neighbours is smallest. Tolerates up to `f`
    /// byzantine clients.
    Krum {
        /// Assumed maximum number of byzantine updates per round.
        f: usize,
    },
    /// Multi-Krum: average the `m` best-scoring updates under the Krum
    /// criterion.
    MultiKrum {
        /// Assumed maximum number of byzantine updates per round.
        f: usize,
        /// Number of selected updates to average.
        m: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean: drop the `beta` fraction of extreme
    /// values on each side per coordinate, average the rest.
    TrimmedMean {
        /// Fraction trimmed from each side, in `[0, 0.5)`.
        beta: f32,
    },
}

impl Aggregator {
    /// Aggregate a round of client updates. `weights` (local sample
    /// counts) are only used by [`Aggregator::Mean`]; the robust rules are
    /// unweighted, as in the literature.
    ///
    /// # Panics
    /// Panics if `params` is empty, lengths mismatch, or the rule's
    /// preconditions fail (e.g. Krum with `n ≤ f + 2`).
    pub fn aggregate(&self, params: &[&ParamVec], weights: &[f32]) -> ParamVec {
        assert!(!params.is_empty(), "cannot aggregate zero updates");
        match *self {
            Aggregator::Mean => ParamVec::weighted_average(params, weights),
            Aggregator::Krum { f } => {
                let scores = krum_scores(params, f);
                let best = argmin(&scores);
                params[best].clone()
            }
            Aggregator::MultiKrum { f, m } => {
                let m = m.clamp(1, params.len());
                let scores = krum_scores(params, f);
                let mut order: Vec<usize> = (0..params.len()).collect();
                order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
                let selected: Vec<&ParamVec> = order[..m].iter().map(|&i| params[i]).collect();
                ParamVec::average(&selected)
            }
            Aggregator::Median => coordinate_median(params),
            Aggregator::TrimmedMean { beta } => trimmed_mean(params, beta),
        }
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

/// Krum scores: for each update, the sum of its `n − f − 2` smallest
/// squared distances to the other updates.
pub fn krum_scores(params: &[&ParamVec], f: usize) -> Vec<f64> {
    let n = params.len();
    assert!(n > f + 2, "Krum requires n > f + 2 (got n = {n}, f = {f})");
    let keep = n - f - 2;
    // Pairwise squared distances.
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = params[i]
                .as_slice()
                .iter()
                .zip(params[j].as_slice())
                .map(|(a, b)| {
                    let x = (a - b) as f64;
                    x * x
                })
                .sum::<f64>();
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| d[i * n + j]).collect();
            row.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            row[..keep.min(row.len())].iter().sum()
        })
        .collect()
}

/// Coordinate-wise median of the updates.
pub fn coordinate_median(params: &[&ParamVec]) -> ParamVec {
    let dim = params[0].len();
    for p in params {
        assert_eq!(p.len(), dim, "parameter dimension mismatch");
    }
    let n = params.len();
    let mut out = Vec::with_capacity(dim);
    let mut col = vec![0.0f32; n];
    for c in 0..dim {
        for (k, p) in params.iter().enumerate() {
            col[k] = p.as_slice()[c];
        }
        col.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let med = if n % 2 == 1 {
            col[n / 2]
        } else {
            0.5 * (col[n / 2 - 1] + col[n / 2])
        };
        out.push(med);
    }
    ParamVec(out)
}

/// Coordinate-wise `beta`-trimmed mean.
pub fn trimmed_mean(params: &[&ParamVec], beta: f32) -> ParamVec {
    assert!((0.0..0.5).contains(&beta), "beta must be in [0, 0.5)");
    let dim = params[0].len();
    for p in params {
        assert_eq!(p.len(), dim, "parameter dimension mismatch");
    }
    let n = params.len();
    let trim = ((n as f32) * beta).floor() as usize;
    assert!(2 * trim < n, "trimming removes every update");
    let mut out = Vec::with_capacity(dim);
    let mut col = vec![0.0f32; n];
    for c in 0..dim {
        for (k, p) in params.iter().enumerate() {
            col[k] = p.as_slice()[c];
        }
        col.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let kept = &col[trim..n - trim];
        out.push(kept.iter().sum::<f32>() / kept.len() as f32);
    }
    ParamVec(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates() -> Vec<ParamVec> {
        // Five benign updates near [1, 1] plus one wild outlier.
        vec![
            ParamVec(vec![1.0, 1.0]),
            ParamVec(vec![1.1, 0.9]),
            ParamVec(vec![0.9, 1.1]),
            ParamVec(vec![1.05, 1.0]),
            ParamVec(vec![0.95, 1.0]),
            ParamVec(vec![100.0, -100.0]),
        ]
    }

    fn refs(v: &[ParamVec]) -> Vec<&ParamVec> {
        v.iter().collect()
    }

    #[test]
    fn mean_is_pulled_by_outlier() {
        let v = updates();
        let w = vec![1.0; 6];
        let mean = Aggregator::Mean.aggregate(&refs(&v), &w);
        assert!(mean.as_slice()[0] > 10.0, "mean should be dragged away");
    }

    #[test]
    fn krum_rejects_outlier() {
        let v = updates();
        let w = vec![1.0; 6];
        let krum = Aggregator::Krum { f: 1 }.aggregate(&refs(&v), &w);
        assert!(
            (krum.as_slice()[0] - 1.0).abs() < 0.2,
            "krum picked {:?}",
            krum.as_slice()
        );
    }

    #[test]
    fn multi_krum_averages_benign_cluster() {
        let v = updates();
        let w = vec![1.0; 6];
        let mk = Aggregator::MultiKrum { f: 1, m: 3 }.aggregate(&refs(&v), &w);
        assert!((mk.as_slice()[0] - 1.0).abs() < 0.2);
        assert!((mk.as_slice()[1] - 1.0).abs() < 0.2);
    }

    #[test]
    fn median_robust_to_minority() {
        let v = updates();
        let w = vec![1.0; 6];
        let med = Aggregator::Median.aggregate(&refs(&v), &w);
        assert!((med.as_slice()[0] - 1.0).abs() < 0.15);
        assert!((med.as_slice()[1] - 1.0).abs() < 0.15);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let v = updates();
        let w = vec![1.0; 6];
        let tm = Aggregator::TrimmedMean { beta: 0.2 }.aggregate(&refs(&v), &w);
        assert!((tm.as_slice()[0] - 1.0).abs() < 0.15, "{:?}", tm.as_slice());
    }

    #[test]
    fn median_even_count_interpolates() {
        let v = vec![ParamVec(vec![0.0]), ParamVec(vec![2.0])];
        let med = coordinate_median(&refs(&v));
        assert_eq!(med.as_slice(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "n > f + 2")]
    fn krum_needs_enough_updates() {
        let v = vec![
            ParamVec(vec![0.0]),
            ParamVec(vec![1.0]),
            ParamVec(vec![2.0]),
        ];
        krum_scores(&refs(&v), 1);
    }

    #[test]
    fn krum_scores_rank_outlier_last() {
        let v = updates();
        let scores = krum_scores(&refs(&v), 1);
        let worst = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(worst, 5, "outlier should have the worst Krum score");
    }
}
