//! The FedAvg server loop.

use crate::aggregate::Aggregator;
use crate::train::{evaluate_params, local_train, sample_eval_clients};
use feddata::FederatedDataset;
use rand::RngExt;
use rand_distr_shim::sample_noise;
use rayon::prelude::*;
use std::collections::HashSet;
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// Standard-normal noise vector (the malicious client payload), kept in a
/// private helper so the server loop stays readable.
mod rand_distr_shim {
    use rand::RngExt;
    use tinynn::ParamVec;

    pub fn sample_noise(dim: usize, rng: &mut impl RngExt) -> ParamVec {
        // Box–Muller, to avoid a rand_distr dependency in this crate.
        let mut out = Vec::with_capacity(dim);
        while out.len() < dim {
            let u1: f32 = rng.random_range(f32::EPSILON..1.0);
            let u2: f32 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            out.push(r * theta.cos());
            if out.len() < dim {
                out.push(r * theta.sin());
            }
        }
        ParamVec(out)
    }
}

/// FedAvg hyperparameters (paper Table I values: FEMNIST lr 0.06,
/// Shakespeare lr 0.8, one local epoch).
#[derive(Clone, Debug)]
pub struct FedAvgConfig {
    /// Clients sampled per round.
    pub nodes_per_round: usize,
    /// Local SGD epochs per selected client.
    pub local_epochs: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Master seed for client sampling and local shuffles.
    pub seed: u64,
    /// Server-side aggregation rule (plain FedAvg uses the weighted mean;
    /// Krum/median/trimmed-mean enable the §II-A BFT defenses).
    pub aggregator: Aggregator,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self {
            nodes_per_round: 10,
            local_epochs: 1,
            lr: 0.06,
            batch_size: 16,
            seed: 0,
            aggregator: Aggregator::Mean,
        }
    }
}

/// Statistics of one federated round.
#[derive(Clone, Copy, Debug)]
pub struct RoundStats {
    /// Round index (1-based after the first call).
    pub round: u64,
    /// Mean local training loss over the sampled clients.
    pub mean_train_loss: f32,
    /// Clients that participated.
    pub participants: usize,
}

/// A federated-averaging run over a fixed dataset and model architecture.
///
/// The model builder is invoked once to create the shared architecture and
/// initial global parameters; per-client working copies are rebuilt from
/// the builder so that rounds can run clients in parallel.
pub struct FedAvg<'a> {
    data: &'a FederatedDataset,
    cfg: FedAvgConfig,
    build: Box<dyn Fn() -> Sequential + Sync + 'a>,
    global: ParamVec,
    round: u64,
    poisoners: HashSet<usize>,
}

impl<'a> FedAvg<'a> {
    /// Create a run. `build` must return the same architecture every time
    /// (it may differ in initialization; the global model starts from one
    /// fresh build).
    pub fn new(
        data: &'a FederatedDataset,
        cfg: FedAvgConfig,
        build: impl Fn() -> Sequential + Sync + 'a,
    ) -> Self {
        let global = ParamVec::from_model(&build());
        Self {
            data,
            cfg,
            build: Box::new(build),
            global,
            round: 0,
            poisoners: HashSet::new(),
        }
    }

    /// Declare the given client indices malicious: whenever sampled, they
    /// submit standard-normal noise instead of a trained update (the same
    /// indiscriminate attack the tangle faces in Fig. 5). Used to compare
    /// the server-side BFT aggregators against the tangle's defense.
    pub fn with_random_poisoners(mut self, indices: impl IntoIterator<Item = usize>) -> Self {
        self.set_random_poisoners(indices);
        self
    }

    /// Set (or replace) the malicious client set mid-run — e.g. to attack
    /// only after a benign pre-training phase, as the paper's §V-B does.
    pub fn set_random_poisoners(&mut self, indices: impl IntoIterator<Item = usize>) {
        self.poisoners = indices.into_iter().collect();
    }

    /// Current global parameters.
    pub fn global(&self) -> &ParamVec {
        &self.global
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// Run one synchronous round: sample clients, local-train each from the
    /// global model (in parallel), aggregate weighted by sample count.
    pub fn round(&mut self) -> RoundStats {
        self.round += 1;
        let mut rng = seeded(derive(self.cfg.seed, self.round));
        let n = self.data.num_clients();
        let k = self.cfg.nodes_per_round.clamp(1, n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        let results: Vec<(ParamVec, f32, f32)> = idx
            .par_iter()
            .map(|&ci| {
                let client = &self.data.clients[ci];
                let mut local_rng = seeded(derive(self.cfg.seed, (self.round << 20) ^ ci as u64));
                if self.poisoners.contains(&ci) {
                    let noise = sample_noise(self.global.len(), &mut local_rng);
                    return (noise, client.train_len() as f32, 0.0);
                }
                let mut model = (self.build)();
                self.global.assign_to(&mut model);
                let loss = local_train(
                    &mut model,
                    client,
                    self.cfg.local_epochs,
                    self.cfg.lr,
                    self.cfg.batch_size,
                    &mut local_rng,
                );
                (
                    ParamVec::from_model(&model),
                    client.train_len() as f32,
                    loss,
                )
            })
            .collect();
        let params: Vec<&ParamVec> = results.iter().map(|(p, _, _)| p).collect();
        let weights: Vec<f32> = results.iter().map(|(_, w, _)| *w).collect();
        self.global = self.cfg.aggregator.aggregate(&params, &weights);
        let mean_train_loss = results.iter().map(|(_, _, l)| l).sum::<f32>() / results.len() as f32;
        RoundStats {
            round: self.round,
            mean_train_loss,
            participants: results.len(),
        }
    }

    /// Evaluate the global model on the pooled held-out data of a random
    /// `frac` of all clients (the paper uses 10%). Deterministic per
    /// `(seed, round, eval_seed)`.
    pub fn evaluate(&self, frac: f32, eval_seed: u64) -> (f32, f32) {
        let mut rng = seeded(derive(self.cfg.seed, 0xE7A1_0000 ^ eval_seed));
        let clients = sample_eval_clients(self.data, frac, &mut rng);
        let mut model = (self.build)();
        evaluate_params(&mut model, &self.global, &clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::blobs::{self, BlobsConfig};

    fn dataset() -> FederatedDataset {
        blobs::generate(
            &BlobsConfig {
                users: 12,
                samples_per_user: (30, 40),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            42,
        )
    }

    #[test]
    fn fedavg_converges_on_blobs() {
        let ds = dataset();
        let mut fa = FedAvg::new(
            &ds,
            FedAvgConfig {
                nodes_per_round: 6,
                lr: 0.2,
                seed: 1,
                ..FedAvgConfig::default()
            },
            || tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(7)),
        );
        let (_, acc0) = fa.evaluate(1.0, 0);
        for _ in 0..25 {
            fa.round();
        }
        let (_, acc1) = fa.evaluate(1.0, 0);
        assert!(
            acc1 > acc0 + 0.25,
            "fedavg should improve markedly: {acc0} -> {acc1}"
        );
        assert!(acc1 > 0.7, "final accuracy too low: {acc1}");
    }

    #[test]
    fn round_stats_track_participants() {
        let ds = dataset();
        let mut fa = FedAvg::new(
            &ds,
            FedAvgConfig {
                nodes_per_round: 5,
                seed: 2,
                ..FedAvgConfig::default()
            },
            || tinynn::zoo::mlp(8, &[8], 4, &mut tinynn::rng::seeded(3)),
        );
        let s = fa.round();
        assert_eq!(s.round, 1);
        assert_eq!(s.participants, 5);
        assert!(s.mean_train_loss > 0.0);
        assert_eq!(fa.rounds_done(), 1);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let ds = dataset();
        let run = |seed: u64| {
            let mut fa = FedAvg::new(
                &ds,
                FedAvgConfig {
                    nodes_per_round: 4,
                    seed,
                    lr: 0.1,
                    ..FedAvgConfig::default()
                },
                || tinynn::zoo::mlp(8, &[8], 4, &mut tinynn::rng::seeded(9)),
            );
            for _ in 0..3 {
                fa.round();
            }
            fa.global().clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).as_slice(), run(6).as_slice());
    }

    #[test]
    fn mean_aggregation_collapses_under_poisoners_but_krum_survives() {
        let ds = dataset();
        let run = |aggregator: crate::Aggregator| {
            let mut fa = FedAvg::new(
                &ds,
                FedAvgConfig {
                    nodes_per_round: 8,
                    lr: 0.2,
                    seed: 11,
                    aggregator,
                    ..FedAvgConfig::default()
                },
                || tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(7)),
            )
            .with_random_poisoners([0usize, 1]); // 2 of 12 clients malicious
            for _ in 0..20 {
                fa.round();
            }
            fa.evaluate(1.0, 0).1
        };
        let mean_acc = run(crate::Aggregator::Mean);
        let krum_acc = run(crate::Aggregator::MultiKrum { f: 2, m: 4 });
        assert!(
            krum_acc > 0.6,
            "multi-krum should survive 2 poisoners: {krum_acc}"
        );
        assert!(
            krum_acc > mean_acc,
            "robust aggregation should beat the poisoned mean: {krum_acc} vs {mean_acc}"
        );
    }

    #[test]
    fn median_aggregation_learns() {
        let ds = dataset();
        let mut fa = FedAvg::new(
            &ds,
            FedAvgConfig {
                nodes_per_round: 6,
                lr: 0.2,
                seed: 13,
                aggregator: crate::Aggregator::Median,
                ..FedAvgConfig::default()
            },
            || tinynn::zoo::mlp(8, &[16], 4, &mut tinynn::rng::seeded(7)),
        );
        for _ in 0..25 {
            fa.round();
        }
        let (_, acc) = fa.evaluate(1.0, 0);
        assert!(acc > 0.6, "median-aggregated fedavg should learn: {acc}");
    }

    #[test]
    fn oversized_nodes_per_round_clamps() {
        let ds = dataset();
        let mut fa = FedAvg::new(
            &ds,
            FedAvgConfig {
                nodes_per_round: 1000,
                seed: 3,
                ..FedAvgConfig::default()
            },
            || tinynn::zoo::mlp(8, &[8], 4, &mut tinynn::rng::seeded(1)),
        );
        assert_eq!(fa.round().participants, 12);
    }
}
