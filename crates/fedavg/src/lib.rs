//! # fedavg — the centralized federated-averaging baseline
//!
//! The paper benchmarks the learning tangle against classic federated
//! averaging (McMahan et al.): a central server samples a fraction of
//! clients each round, ships them the global model, lets each run a few
//! epochs of local SGD, and aggregates the returned parameters weighted by
//! local sample counts.
//!
//! The crate also hosts the *local training primitives* shared by the
//! baseline and the learning tangle — both systems train the same models on
//! the same `feddata` clients; only the coordination differs.

pub mod aggregate;
pub mod server;
pub mod train;

pub use aggregate::Aggregator;
pub use server::{FedAvg, FedAvgConfig, RoundStats};
pub use train::{
    evaluate_params, gather_rows, local_train, local_train_with, sample_eval_clients, TrainOpts,
};
