//! Memoized model evaluation for the round hot path.
//!
//! Algorithm 2 makes local validation the inner loop of everything: each
//! node evaluates the reference model, every sampled candidate tip
//! (§III-E), and — with `accuracy_bias` — every transaction in the ledger,
//! on its held-out data, every round. The same transactions are
//! re-evaluated by the same node across rounds with unchanged parameters
//! and unchanged validation data, so the loss/accuracy pair is a pure
//! function of `(transaction, node dataset)` — as long as the node's view
//! of history has not been replaced.
//!
//! [`EvalCache`] memoizes those pairs per node. Every entry is guarded by
//! the chained history signature (`Tangle::history_sig`) of the prefix
//! that determines the evaluated parameters: a hit is served only when the
//! stored signature matches the current view's, so a diverged or regrown
//! history (checkpoint restore, gossip repair in a different arrival
//! order) can never serve a stale loss. The signature covers ledger
//! *structure*, not payloads — a regrown replica can agree structurally
//! while carrying swapped payloads at the same local ids — so owners of
//! replica-backed caches (the gossip learner) additionally clear the
//! cache outright on crash/restore (see `Network::restarts`).
//!
//! [`ScratchPool`] removes the other fixed cost of `node_step`: instead of
//! rebuilding a fresh `Sequential` per node per round, workers check
//! models out of a shared pool and `ParamVec::assign_to` overwrites every
//! parameter before use (layers keep no other state between calls), so
//! reuse is bit-identical to rebuilding.
//!
//! Cache behaviour is observable through the `eval_cache.hits` /
//! `eval_cache.misses` / `eval_cache.evictions` /
//! `eval_cache.invalidations` counters — metrics registry only, never the
//! JSONL event stream, which stays byte-deterministic with the cache on
//! or off.

use std::collections::HashMap;
use tangle_ledger::TxId;
use tinynn::Sequential;

/// Default per-node entry capacity. Sized for the experiment-scale runs
/// (thousands of transactions per ledger): one entry per transaction a
/// node has ever validated, plus reference combinations.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 8192;

/// High bit distinguishing hashed reference-set keys from plain
/// transaction-id keys (which keep bit 63 clear).
const REF_TAG: u64 = 1 << 63;

/// SplitMix64 finalizer (same avalanche as the ledger's signature fold).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cache key for one transaction's evaluation on one of the node's
/// datasets. `data_tag` discriminates the dataset (0 = clean local data,
/// 1 = poisoned replacement data) so a node that switches behaviour
/// mid-run cannot alias entries across datasets.
pub fn tx_key(id: TxId, data_tag: u64) -> u64 {
    u64::from(id.0) | (data_tag << 48)
}

/// Cache key for the averaged reference model built from `ids`. Hashed
/// (the id set is variable-length) and tagged into its own key space.
pub fn reference_key(ids: &[TxId], data_tag: u64) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64 ^ data_tag;
    for id in ids {
        h = splitmix(h ^ u64::from(id.0));
    }
    h | REF_TAG
}

#[derive(Clone, Copy)]
struct Entry {
    /// Chained history signature of the prefix that determines the
    /// evaluated parameters; a mismatch at probe time drops the entry.
    sig: u64,
    loss: f32,
    acc: f32,
    /// Last-touch tick for LRU eviction.
    tick: u64,
}

/// A per-node memo of `(transaction / reference) → (loss, accuracy)` on
/// that node's held-out data, guarded by history signatures and bounded
/// by LRU eviction. See the module docs for the invalidation rule.
pub struct EvalCache {
    entries: HashMap<u64, Entry>,
    cap: usize,
    tick: u64,
}

impl EvalCache {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Self {
            entries: HashMap::new(),
            cap: cap.max(1),
            tick: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probe for `key` under history signature `sig`.
    ///
    /// A stored entry whose signature differs from `sig` belongs to a
    /// replaced history: it is dropped (counted under
    /// `eval_cache.invalidations`) and the probe is a miss. Hits refresh
    /// the entry's LRU tick.
    pub fn get(
        &mut self,
        key: u64,
        sig: u64,
        telemetry: &lt_telemetry::Telemetry,
    ) -> Option<(f32, f32)> {
        match self.entries.get_mut(&key) {
            Some(e) if e.sig == sig => {
                self.tick += 1;
                e.tick = self.tick;
                telemetry.count("eval_cache.hits", 1);
                Some((e.loss, e.acc))
            }
            Some(_) => {
                self.entries.remove(&key);
                telemetry.count("eval_cache.invalidations", 1);
                telemetry.count("eval_cache.misses", 1);
                None
            }
            None => {
                telemetry.count("eval_cache.misses", 1);
                None
            }
        }
    }

    /// Store `(loss, acc)` for `key` under history signature `sig`,
    /// evicting the least-recently-used eighth of the cache when full
    /// (batch eviction keeps the amortized cost O(1) without an intrusive
    /// LRU list; the order is deterministic, by tick).
    pub fn insert(
        &mut self,
        key: u64,
        sig: u64,
        loss: f32,
        acc: f32,
        telemetry: &lt_telemetry::Telemetry,
    ) {
        if self.entries.len() >= self.cap && !self.entries.contains_key(&key) {
            let mut by_age: Vec<(u64, u64)> =
                self.entries.iter().map(|(&k, e)| (e.tick, k)).collect();
            by_age.sort_unstable();
            let drop = (self.cap / 8).max(1);
            for &(_, k) in by_age.iter().take(drop) {
                self.entries.remove(&k);
            }
            telemetry.count("eval_cache.evictions", drop as u64);
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                sig,
                loss,
                acc,
                tick: self.tick,
            },
        );
    }

    /// Drop every entry — the owner knows the backing history was replaced
    /// wholesale (e.g. a gossip peer crashed and restored). Counted under
    /// `eval_cache.invalidations`, one per dropped entry.
    pub fn invalidate_all(&mut self, telemetry: &lt_telemetry::Telemetry) {
        let n = self.entries.len();
        if n > 0 {
            telemetry.count("eval_cache.invalidations", n as u64);
        }
        self.entries.clear();
    }
}

/// Maximum idle models retained by a [`ScratchPool`]; beyond the worker
/// count there is nothing to reuse.
const MAX_POOLED: usize = 64;

/// A shared pool of scratch [`Sequential`] models of one architecture.
///
/// `node_step` needs a mutable model to evaluate candidates and train on,
/// but every use starts with `ParamVec::assign_to`, which overwrites all
/// parameters — and layers carry no other state between calls (forward
/// activations live in explicit per-call caches). Checking a model out of
/// the pool is therefore bit-identical to building a fresh one, at zero
/// allocation cost after warm-up.
pub struct ScratchPool<'a> {
    build: Box<dyn Fn() -> Sequential + Sync + 'a>,
    free: parking_lot::Mutex<Vec<Sequential>>,
}

impl<'a> ScratchPool<'a> {
    /// A pool that manufactures models with `build` on demand.
    pub fn new(build: Box<dyn Fn() -> Sequential + Sync + 'a>) -> Self {
        Self {
            build,
            free: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Construct a model outside the pool (for callers that need the raw
    /// architecture, e.g. dataset-wide evaluation helpers).
    pub fn fresh(&self) -> Sequential {
        (self.build)()
    }

    /// Check a scratch model out (reused if available, built otherwise).
    /// Callers must assign parameters before use.
    pub fn take(&self) -> Sequential {
        self.free.lock().pop().unwrap_or_else(|| (self.build)())
    }

    /// Return a model to the pool.
    pub fn put(&self, model: Sequential) {
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            free.push(model);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_telemetry::Telemetry;

    fn tel() -> Telemetry {
        Telemetry::new(lt_telemetry::NoopSink)
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let tel = tel();
        let mut c = EvalCache::new(16);
        let key = tx_key(TxId(3), 0);
        assert_eq!(c.get(key, 77, &tel), None);
        c.insert(key, 77, 0.5, 0.9, &tel);
        assert_eq!(c.get(key, 77, &tel), Some((0.5, 0.9)));
        assert_eq!(tel.counter_value("eval_cache.hits"), 1);
        assert_eq!(tel.counter_value("eval_cache.misses"), 1);
    }

    #[test]
    fn signature_mismatch_invalidates() {
        let tel = tel();
        let mut c = EvalCache::new(16);
        let key = tx_key(TxId(3), 0);
        c.insert(key, 77, 0.5, 0.9, &tel);
        // Same key, different history: the entry must die, not be served.
        assert_eq!(c.get(key, 78, &tel), None);
        assert_eq!(tel.counter_value("eval_cache.invalidations"), 1);
        // And it is really gone, even for the original signature.
        assert_eq!(c.get(key, 77, &tel), None);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let tel = tel();
        let mut c = EvalCache::new(8);
        for i in 0..8u32 {
            c.insert(tx_key(TxId(i), 0), 1, i as f32, 0.0, &tel);
        }
        // Touch entry 0 so it is the most recently used.
        assert!(c.get(tx_key(TxId(0), 0), 1, &tel).is_some());
        c.insert(tx_key(TxId(99), 0), 1, 9.0, 0.0, &tel);
        assert_eq!(tel.counter_value("eval_cache.evictions"), 1);
        assert!(c.len() <= 8);
        // The freshly touched entry survived; the oldest (1) did not.
        assert!(c.get(tx_key(TxId(0), 0), 1, &tel).is_some());
        assert!(c.get(tx_key(TxId(1), 0), 1, &tel).is_none());
    }

    #[test]
    fn invalidate_all_clears_and_counts() {
        let tel = tel();
        let mut c = EvalCache::new(16);
        c.insert(tx_key(TxId(1), 0), 1, 0.1, 0.2, &tel);
        c.insert(tx_key(TxId(2), 0), 1, 0.3, 0.4, &tel);
        c.invalidate_all(&tel);
        assert!(c.is_empty());
        assert_eq!(tel.counter_value("eval_cache.invalidations"), 2);
    }

    #[test]
    fn key_spaces_are_disjoint() {
        // Transaction keys keep bit 63 clear; reference keys set it.
        assert_eq!(tx_key(TxId(u32::MAX), 1) >> 63, 0);
        assert_eq!(reference_key(&[TxId(0)], 0) >> 63, 1);
        // Dataset tags separate entries for the same transaction.
        assert_ne!(tx_key(TxId(5), 0), tx_key(TxId(5), 1));
        assert_ne!(
            reference_key(&[TxId(1), TxId(2)], 0),
            reference_key(&[TxId(2), TxId(1)], 0),
            "reference keys are order-sensitive (choose_reference output is ranked)"
        );
    }

    #[test]
    fn scratch_pool_reuses_models() {
        let mut built = 0usize;
        let counter = std::sync::Mutex::new(&mut built);
        // Count constructions through a side channel.
        let pool = ScratchPool::new(Box::new(|| {
            **counter.lock().unwrap() += 1;
            tinynn::zoo::mlp(4, &[3], 2, &mut tinynn::rng::seeded(1))
        }));
        let a = pool.take();
        pool.put(a);
        let _b = pool.take(); // reused, not rebuilt
        drop(pool);
        assert_eq!(built, 1);
    }
}
