//! Sub-tangle clustering analysis (paper §VI outlook).
//!
//! The paper suggests that biasing the random walk by local model
//! performance "could lead to clusters of federated nodes with similar
//! data working on separate sub-tangles". This module quantifies that
//! effect: given an assignment of nodes to data clusters, it measures how
//! strongly approval edges stay within clusters (*homophily*) compared to
//! what random mixing would produce.

use crate::node::ModelParams;
use tangle_ledger::Tangle;

/// Homophily statistics of a ledger under a node→cluster assignment.
#[derive(Clone, Copy, Debug)]
pub struct Homophily {
    /// Fraction of (issuer, parent-issuer) approval edges whose endpoints
    /// share a cluster. Edges touching the genesis (no issuer) are skipped.
    pub observed: f32,
    /// Expected same-cluster fraction if parents were chosen independently
    /// of clusters (computed from the per-cluster transaction mass).
    pub expected: f32,
    /// Number of edges counted.
    pub edges: usize,
}

impl Homophily {
    /// `observed − expected`: > 0 means sub-tangle formation.
    pub fn lift(&self) -> f32 {
        self.observed - self.expected
    }
}

/// Measure approval homophily. `cluster_of[node_id]` assigns every node to
/// a cluster; transactions with unknown issuers (the genesis) are ignored.
pub fn edge_homophily(tangle: &Tangle<ModelParams>, cluster_of: &[usize]) -> Homophily {
    let issuer_cluster = |issuer: u64| -> Option<usize> {
        let i = issuer as usize;
        if issuer == u64::MAX || i >= cluster_of.len() {
            None
        } else {
            Some(cluster_of[i])
        }
    };
    let mut same = 0usize;
    let mut edges = 0usize;
    // Per-cluster transaction mass, for the null model.
    let num_clusters = cluster_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut mass = vec![0usize; num_clusters];
    let mut mass_total = 0usize;
    for tx in tangle.transactions() {
        if let Some(c) = issuer_cluster(tx.issuer) {
            mass[c] += 1;
            mass_total += 1;
        }
    }
    for tx in tangle.transactions() {
        let Some(child_cluster) = issuer_cluster(tx.issuer) else {
            continue;
        };
        for p in &tx.parents {
            let Some(parent_cluster) = issuer_cluster(tangle.get(*p).issuer) else {
                continue;
            };
            edges += 1;
            if child_cluster == parent_cluster {
                same += 1;
            }
        }
    }
    let expected = if mass_total == 0 {
        0.0
    } else {
        mass.iter()
            .map(|&m| {
                let f = m as f32 / mass_total as f32;
                f * f
            })
            .sum::<f32>()
    };
    Homophily {
        observed: if edges == 0 {
            0.0
        } else {
            same as f32 / edges as f32
        },
        expected,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tinynn::ParamVec;

    fn payload() -> ModelParams {
        Arc::new(ParamVec(vec![0.0]))
    }

    /// Build a tangle where issuers 0,1 (cluster 0) only approve each
    /// other, likewise 2,3 (cluster 1).
    fn segregated() -> Tangle<ModelParams> {
        let mut t = Tangle::new(payload());
        let g = t.genesis();
        let a = t.add_meta(payload(), vec![g], 0, 1).unwrap();
        let b = t.add_meta(payload(), vec![a], 1, 2).unwrap();
        let _ = t.add_meta(payload(), vec![b], 0, 3).unwrap();
        let c = t.add_meta(payload(), vec![g], 2, 1).unwrap();
        let d = t.add_meta(payload(), vec![c], 3, 2).unwrap();
        let _ = t.add_meta(payload(), vec![d], 2, 3).unwrap();
        t
    }

    #[test]
    fn perfect_segregation_has_high_lift() {
        let t = segregated();
        let h = edge_homophily(&t, &[0, 0, 1, 1]);
        assert_eq!(h.edges, 4); // genesis edges skipped
        assert_eq!(h.observed, 1.0);
        assert!((h.expected - 0.5).abs() < 1e-6);
        assert!(h.lift() > 0.4);
    }

    #[test]
    fn mixed_edges_reduce_observed() {
        let mut t = segregated();
        // cross-cluster transaction: issuer 0 approves issuer 3's tip
        let tips = t.tips();
        t.add_meta(payload(), tips, 0, 4).unwrap();
        let h = edge_homophily(&t, &[0, 0, 1, 1]);
        assert!(h.observed < 1.0);
        assert!(h.edges > 4);
    }

    #[test]
    fn single_cluster_is_trivially_homophilous() {
        let t = segregated();
        let h = edge_homophily(&t, &[0, 0, 0, 0]);
        assert_eq!(h.observed, 1.0);
        assert!((h.expected - 1.0).abs() < 1e-6);
        assert!(h.lift().abs() < 1e-6);
    }

    #[test]
    fn genesis_only_tangle_has_no_edges() {
        let t: Tangle<ModelParams> = Tangle::new(payload());
        let h = edge_homophily(&t, &[0, 1]);
        assert_eq!(h.edges, 0);
        assert_eq!(h.observed, 0.0);
    }
}
