//! Differential-privacy noise on published parameters.
//!
//! The paper (§III-D) points to differential privacy — "essentially adds
//! noise to client updates" — as the standard mitigation for linkability
//! and reconstruction attacks on published models. This module implements
//! the Gaussian mechanism on the published *update* (the delta between the
//! trained parameters and the averaged parent base): the delta's L2 norm is
//! clipped to `clip_norm` and `N(0, σ²)` noise is added per coordinate.

use rand::RngExt;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use tinynn::ParamVec;

/// Gaussian-mechanism configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DpConfig {
    /// Maximum L2 norm of the published update.
    pub clip_norm: f32,
    /// Standard deviation of the per-coordinate Gaussian noise.
    pub sigma: f32,
}

/// Apply the mechanism: clip `params − base` to `clip_norm`, add noise,
/// and return `base + noised_delta`.
pub fn privatize(
    params: &ParamVec,
    base: &ParamVec,
    cfg: &DpConfig,
    rng: &mut impl RngExt,
) -> ParamVec {
    assert_eq!(params.len(), base.len(), "parameter dimension mismatch");
    let mut delta: Vec<f32> = params
        .as_slice()
        .iter()
        .zip(base.as_slice())
        .map(|(p, b)| p - b)
        .collect();
    let norm = delta.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > cfg.clip_norm && norm > 0.0 {
        let s = cfg.clip_norm / norm;
        for v in &mut delta {
            *v *= s;
        }
    }
    if cfg.sigma > 0.0 {
        let noise = Normal::new(0.0f32, cfg.sigma).expect("valid sigma");
        for v in &mut delta {
            *v += noise.sample(rng);
        }
    }
    ParamVec(
        base.as_slice()
            .iter()
            .zip(&delta)
            .map(|(b, d)| b + d)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::rng::seeded;

    #[test]
    fn clipping_bounds_update_norm() {
        let base = ParamVec(vec![0.0; 4]);
        let params = ParamVec(vec![10.0, 0.0, 0.0, 0.0]);
        let cfg = DpConfig {
            clip_norm: 1.0,
            sigma: 0.0,
        };
        let mut rng = seeded(1);
        let out = privatize(&params, &base, &cfg, &mut rng);
        let norm = out.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn small_updates_pass_unclipped() {
        let base = ParamVec(vec![1.0; 3]);
        let params = ParamVec(vec![1.1, 1.0, 0.9]);
        let cfg = DpConfig {
            clip_norm: 10.0,
            sigma: 0.0,
        };
        let mut rng = seeded(2);
        let out = privatize(&params, &base, &cfg, &mut rng);
        for (a, b) in out.as_slice().iter().zip(params.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let base = ParamVec(vec![0.0; 1000]);
        let params = ParamVec(vec![0.0; 1000]);
        let cfg = DpConfig {
            clip_norm: 1.0,
            sigma: 0.1,
        };
        let mut rng = seeded(3);
        let out = privatize(&params, &base, &cfg, &mut rng);
        let n = out.len() as f32;
        let var = out.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
        assert!((var - 0.01).abs() < 0.005, "noise variance {var}");
    }

    #[test]
    fn zero_sigma_zero_clip_edge() {
        let base = ParamVec(vec![0.0; 2]);
        let params = ParamVec(vec![0.0; 2]);
        let cfg = DpConfig {
            clip_norm: 1.0,
            sigma: 0.0,
        };
        let mut rng = seeded(4);
        let out = privatize(&params, &base, &cfg, &mut rng);
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }
}
