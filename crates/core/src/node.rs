//! The per-node algorithm: reference selection (Algorithm 1), tip
//! selection with optional local validation (§III-E), local training, and
//! the publish gate (Algorithm 2).

use crate::config::SimConfig;
use crate::eval_cache::{reference_key, tx_key, EvalCache, ScratchPool};
use fedavg::{local_train_with, TrainOpts};
use feddata::ClientData;
use rand::RngExt;
use rand_distr::{Distribution, Normal};
use rayon::prelude::*;
use std::sync::Arc;
use tangle_ledger::walk::RandomWalk;
use tangle_ledger::{AnalysisCache, Tangle, TangleAnalysis, TangleRead, TxId};
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// Payload carried by learning-tangle transactions: a shared, immutable
/// full set of model parameters.
pub type ModelParams = Arc<ParamVec>;

/// What a node *is* — honest, or one of the paper's two adversaries,
/// activated from a given round ("after 200 rounds of benign training, the
/// adversarial nodes generate poisoning transactions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Always follows Algorithm 2 faithfully.
    Honest,
    /// From `from_round` on, publishes standard-normal random parameters
    /// every time it is selected (indiscriminate attack, Fig. 5).
    RandomPoisoner {
        /// First round of malicious behaviour.
        from_round: u64,
    },
    /// From `from_round` on, trains on a dataset consisting entirely of
    /// `src`-class samples labelled `dst` (targeted attack, Fig. 6).
    LabelFlipper {
        /// First round of malicious behaviour.
        from_round: u64,
        /// True class of the poisoned samples.
        src: u32,
        /// Label the attacker assigns to them.
        dst: u32,
    },
    /// From `from_round` on, trains on its own data *plus* trigger-stamped
    /// copies labelled `target` — a backdoor attack (the "different
    /// classes of poisoning attacks" the paper's outlook asks for,
    /// following its reference \[29\]).
    Backdoor {
        /// First round of malicious behaviour.
        from_round: u64,
        /// Class the trigger should activate.
        target: u32,
    },
}

/// Behaviour a node exhibits in a particular round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Behaviour {
    /// Algorithm 2 on clean local data.
    Honest,
    /// Publish random noise.
    RandomNoise,
    /// Algorithm 2 on the flipped dataset.
    FlippedTraining,
}

/// A network participant: private local data plus a behaviour kind.
pub struct Node {
    /// Stable node id (also recorded as transaction issuer).
    pub id: usize,
    /// The node's clean local dataset.
    pub data: ClientData,
    /// Replacement dataset used once a [`NodeKind::LabelFlipper`] activates.
    pub poisoned_data: Option<ClientData>,
    /// The node's kind.
    pub kind: NodeKind,
}

impl Node {
    /// An honest node over `data`.
    pub fn honest(id: usize, data: ClientData) -> Self {
        Self {
            id,
            data,
            poisoned_data: None,
            kind: NodeKind::Honest,
        }
    }

    /// Which behaviour the node exhibits in `round`.
    pub fn behaviour(&self, round: u64) -> Behaviour {
        match self.kind {
            NodeKind::Honest => Behaviour::Honest,
            NodeKind::RandomPoisoner { from_round } => {
                if round >= from_round {
                    Behaviour::RandomNoise
                } else {
                    Behaviour::Honest
                }
            }
            NodeKind::LabelFlipper { from_round, .. } | NodeKind::Backdoor { from_round, .. } => {
                if round >= from_round {
                    Behaviour::FlippedTraining
                } else {
                    Behaviour::Honest
                }
            }
        }
    }

    /// Is the node behaving maliciously in `round`?
    pub fn is_malicious(&self, round: u64) -> bool {
        self.behaviour(round) != Behaviour::Honest
    }
}

/// Everything nodes share within one round: the tangle snapshot analysis,
/// the confidence estimate, and the consensus reference model.
///
/// The paper's training is round-based, with "published transactions from a
/// given round ... only visible to the nodes participating in the next
/// round" — so one context serves all nodes of a round.
pub struct RoundContext<'a, T: TangleRead<Payload = ModelParams> = Tangle<ModelParams>> {
    /// The tangle as of the start of the round — either the full ledger or
    /// a zero-copy [`tangle_ledger::TangleView`] prefix of it (the
    /// delayed-network path).
    pub tangle: &'a T,
    /// Cumulative weights and ratings of the snapshot.
    pub analysis: TangleAnalysis,
    /// Per-transaction walk confidence.
    pub confidence: Vec<f32>,
    /// The top `reference_avg` transactions by `confidence × rating`.
    pub reference_ids: Vec<TxId>,
    /// Their averaged parameters — the current consensus model.
    pub reference: ParamVec,
    /// The round being played.
    pub round: u64,
    /// Walk configuration used for all tip selection this round.
    pub walk: RandomWalk,
    /// Per-transaction depths, present when windowed tip selection is on.
    pub depths: Option<Vec<u32>>,
    /// The configured window (mirrors `hyper.window`).
    pub window: Option<u32>,
    /// Observability handle shared by every node this round (disabled by
    /// default, see [`lt_telemetry::Telemetry`]).
    pub telemetry: lt_telemetry::Telemetry,
}

impl<'a, T: TangleRead<Payload = ModelParams> + Sync> RoundContext<'a, T> {
    /// Build the shared context for `round` (Algorithm 1 happens here).
    pub fn build(tangle: &'a T, cfg: &SimConfig, round: u64, seed: u64) -> Self {
        Self::build_observed(
            tangle,
            cfg,
            round,
            seed,
            lt_telemetry::Telemetry::disabled(),
        )
    }

    /// Like [`Self::build`], threading an observability handle through the
    /// analysis, confidence sampling, and all later tip selection.
    pub fn build_observed(
        tangle: &'a T,
        cfg: &SimConfig,
        round: u64,
        seed: u64,
        telemetry: lt_telemetry::Telemetry,
    ) -> Self {
        let analysis = TangleAnalysis::compute_observed(tangle, &telemetry);
        let depths = cfg
            .hyper
            .window
            .map(|_| tangle_ledger::analysis::depths(tangle));
        Self::from_analysis(tangle, analysis, depths, cfg, round, seed, telemetry)
    }

    /// Like [`Self::build_observed`], serving the weight/rating/depth DPs
    /// from `cache` instead of recomputing them. The cache is refreshed
    /// against `tangle` first (incremental catch-up, or a counted rebuild
    /// when it is stale — see [`AnalysisCache::refresh_observed`]), so the
    /// context is bit-identical to a freshly built one; only the cost
    /// changes, from `O(V²/64)` to `O(appended cones)`.
    pub fn build_with_cache(
        tangle: &'a T,
        cache: &mut AnalysisCache,
        cfg: &SimConfig,
        round: u64,
        seed: u64,
        telemetry: lt_telemetry::Telemetry,
    ) -> Self {
        cache.refresh_observed(tangle, &telemetry);
        let analysis = cache.analysis();
        let depths = cfg.hyper.window.map(|_| cache.depths().to_vec());
        Self::from_analysis(tangle, analysis, depths, cfg, round, seed, telemetry)
    }

    /// Algorithm 1 over an already-computed analysis: confidence sampling,
    /// reference selection, and reference-model averaging.
    fn from_analysis(
        tangle: &'a T,
        analysis: TangleAnalysis,
        depths: Option<Vec<u32>>,
        cfg: &SimConfig,
        round: u64,
        seed: u64,
        telemetry: lt_telemetry::Telemetry,
    ) -> Self {
        let walk = RandomWalk::new(cfg.hyper.alpha);
        let samples = cfg.hyper.confidence_samples.max(1);
        let confidence = match cfg.hyper.confidence_mode {
            crate::config::ConfidenceMode::WalkHit => {
                analysis.walk_confidence_observed(tangle, &walk, samples, seed, &telemetry)
            }
            crate::config::ConfidenceMode::Approval => {
                let _span = telemetry.span("tangle.confidence_us");
                telemetry.count("tangle.confidence_walks", samples as u64);
                analysis.approval_confidence(tangle, &walk, samples, seed)
            }
        };
        let reference_ids = analysis.choose_reference(&confidence, cfg.hyper.reference_avg.max(1));
        let payloads: Vec<&ParamVec> = reference_ids
            .iter()
            .map(|id| tangle.get(*id).payload.as_ref())
            .collect();
        let reference = ParamVec::average(&payloads);
        Self {
            tangle,
            analysis,
            confidence,
            reference_ids,
            reference,
            round,
            walk,
            depths,
            window: cfg.hyper.window,
            telemetry,
        }
    }

    /// Sample one tip by weighted random walk using the cached weights.
    /// Starts from the genesis, or from a depth-window particle when
    /// windowed selection is configured (§IV).
    pub fn sample_tip(&self, rng: &mut dyn rand::Rng) -> TxId {
        match (self.window, &self.depths) {
            (Some(w), Some(depths)) => tangle_ledger::walk::WindowedWalk::new(self.walk, w)
                .select_tip_observed(
                    self.tangle,
                    &self.analysis.cumulative_weight,
                    depths,
                    rng,
                    &self.telemetry,
                ),
            _ => self.walk.select_tip_observed(
                self.tangle,
                &self.analysis.cumulative_weight,
                rng,
                &self.telemetry,
            ),
        }
    }

    /// Sample `k` tips as a batch of independent walks. One draw from
    /// `rng` seeds the batch; walk `i` then runs on its own RNG stream
    /// derived from that seed, so the output is identical whether the
    /// walks run serially or as a rayon batch — `parallel` (usually
    /// `hyper.parallel_walks`) only picks the execution strategy.
    pub fn sample_tips(&self, k: usize, rng: &mut dyn rand::Rng, parallel: bool) -> Vec<TxId> {
        let base = rng.random::<u64>();
        let one = |i: usize| self.sample_tip(&mut seeded(derive(base, i as u64)));
        if parallel {
            (0..k).into_par_iter().map(one).collect()
        } else {
            (0..k).map(one).collect()
        }
    }
}

/// A transaction a node wants to publish at the end of the round.
#[derive(Clone, Debug)]
pub struct Publish {
    /// Issuing node id.
    pub node: usize,
    /// New model parameters.
    pub params: ParamVec,
    /// The approved parent tips.
    pub parents: Vec<TxId>,
}

/// Per-node outcome of one round, for statistics.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// The publish request, if the node's gate passed.
    pub publish: Option<Publish>,
    /// Local validation loss of the freshly trained model (None for the
    /// random poisoner, which does not train).
    pub new_loss: Option<f32>,
    /// Local validation loss of the reference model.
    pub reference_loss: Option<f32>,
}

/// Evaluate `params` on a client's held-out data, returning the loss.
fn validation_loss(model: &mut Sequential, params: &ParamVec, data: &ClientData) -> f32 {
    eval_params(model, params, data).0
}

/// Evaluate `params` on a client's held-out data, returning `(loss,
/// accuracy)` — the pair an [`EvalCache`] memoizes.
fn eval_params(model: &mut Sequential, params: &ParamVec, data: &ClientData) -> (f32, f32) {
    params.assign_to(model);
    model.evaluate(&data.test_x, &data.test_y)
}

/// Execute one node-round (the paper's Algorithm 2, §III-E variant when
/// `tip_validation` is on).
///
/// `build` constructs scratch models of the shared architecture; `rng`
/// drives this node's walks and batch shuffles. This is the uncached,
/// unpooled convenience entry point; the simulators call
/// [`node_step_pooled`] with a shared [`ScratchPool`] and an optional
/// per-node [`EvalCache`].
pub fn node_step<T: TangleRead<Payload = ModelParams> + Sync>(
    node: &Node,
    ctx: &RoundContext<'_, T>,
    build: &(dyn Fn() -> Sequential + Sync),
    cfg: &SimConfig,
    rng: &mut impl RngExt,
) -> StepOutcome {
    let scratch = ScratchPool::new(Box::new(build));
    node_step_pooled(node, ctx, &scratch, cfg, rng, None)
}

/// [`node_step`] with shared scratch models and optional evaluation
/// memoization. Bit-identical to the plain path: evaluations are pure in
/// the parameters and the node's data, scratch models are fully
/// overwritten before use, and cache probes consume no randomness — the
/// cache only changes what is *recomputed*, never what is computed.
pub fn node_step_pooled<T: TangleRead<Payload = ModelParams> + Sync>(
    node: &Node,
    ctx: &RoundContext<'_, T>,
    scratch: &ScratchPool<'_>,
    cfg: &SimConfig,
    rng: &mut impl RngExt,
    cache: Option<&mut EvalCache>,
) -> StepOutcome {
    match node.behaviour(ctx.round) {
        Behaviour::RandomNoise => random_poison_step(node, ctx, cfg, rng),
        Behaviour::Honest => honest_step(node, &node.data, 0, ctx, scratch, cfg, rng, cache),
        Behaviour::FlippedTraining => {
            let data = node
                .poisoned_data
                .as_ref()
                .expect("data poisoner constructed with poisoned data");
            honest_step(node, data, 1, ctx, scratch, cfg, rng, cache)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn honest_step<T: TangleRead<Payload = ModelParams> + Sync>(
    node: &Node,
    data: &ClientData,
    data_tag: u64,
    ctx: &RoundContext<'_, T>,
    scratch: &ScratchPool<'_>,
    cfg: &SimConfig,
    rng: &mut impl RngExt,
    mut cache: Option<&mut EvalCache>,
) -> StepOutcome {
    let hyper = &cfg.hyper;
    let mut model = scratch.take();

    // Reference loss, memoized on (ranked reference id set, history
    // signature up to the newest reference transaction).
    let reference_loss = match cache.as_deref_mut() {
        Some(c) => {
            let max_id = ctx
                .reference_ids
                .iter()
                .copied()
                .max()
                .unwrap_or_else(|| ctx.tangle.genesis());
            let sig = ctx.tangle.history_sig(max_id.index() + 1);
            let key = reference_key(&ctx.reference_ids, data_tag);
            match c.get(key, sig, &ctx.telemetry) {
                Some((loss, _)) => loss,
                None => {
                    let (loss, acc) = eval_params(&mut model, &ctx.reference, data);
                    c.insert(key, sig, loss, acc, &ctx.telemetry);
                    loss
                }
            }
        }
        None => validation_loss(&mut model, &ctx.reference, data),
    };

    // Tip selection: `sample_size` walks; with validation on, keep the
    // locally best `num_tips` distinct candidates, else the first walks.
    // With `accuracy_bias` enabled (§VI outlook) the walk is additionally
    // biased by each model's accuracy on this node's local data.
    let bias: Option<Vec<f64>> = (hyper.accuracy_bias > 0.0).then(|| {
        match cache.as_deref_mut() {
            None => ctx
                .tangle
                .transactions()
                .iter()
                .map(|tx| {
                    tx.payload.assign_to(&mut model);
                    let (_, acc) = model.evaluate(&data.test_x, &data.test_y);
                    hyper.accuracy_bias * acc as f64
                })
                .collect(),
            Some(c) => {
                // Probe every transaction; evaluate only the misses, in
                // parallel over pooled scratch models (evaluation draws no
                // randomness, so the split cannot perturb the run).
                let n = ctx.tangle.len();
                let mut accs = vec![0.0f64; n];
                let mut misses: Vec<TxId> = Vec::new();
                for i in 0..n as u32 {
                    let id = TxId(i);
                    let sig = ctx.tangle.history_sig(i as usize + 1);
                    match c.get(tx_key(id, data_tag), sig, &ctx.telemetry) {
                        Some((_, acc)) => accs[i as usize] = acc as f64,
                        None => misses.push(id),
                    }
                }
                let evals: Vec<(TxId, f32, f32)> = misses
                    .par_iter()
                    .map(|&id| {
                        let mut m = scratch.take();
                        let (loss, acc) = eval_params(&mut m, &ctx.tangle.get(id).payload, data);
                        scratch.put(m);
                        (id, loss, acc)
                    })
                    .collect();
                for &(id, loss, acc) in &evals {
                    let sig = ctx.tangle.history_sig(id.index() + 1);
                    c.insert(tx_key(id, data_tag), sig, loss, acc, &ctx.telemetry);
                    accs[id.index()] = acc as f64;
                }
                accs.into_iter().map(|a| hyper.accuracy_bias * a).collect()
            }
        }
    });
    let samples: Vec<TxId> =
        match &bias {
            None => ctx.sample_tips(
                hyper.sample_size.max(hyper.num_tips),
                rng,
                hyper.parallel_walks,
            ),
            // The biased walk is a small-network research mode; its per-walk
            // weight table makes batching pointless, so it stays serial.
            Some(b) => (0..hyper.sample_size.max(hyper.num_tips))
                .map(|_| {
                    tangle_ledger::walk::BiasedRandomWalk::new(hyper.alpha, b)
                        .select_tip_with_weights(ctx.tangle, &ctx.analysis.cumulative_weight, rng)
                })
                .collect(),
        };
    let parents: Vec<TxId> = if hyper.tip_validation {
        let mut distinct = samples.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut scored: Vec<(f32, TxId)> = match cache {
            None => distinct
                .into_iter()
                .map(|tip| {
                    let loss = validation_loss(&mut model, &ctx.tangle.get(tip).payload, data);
                    (loss, tip)
                })
                .collect(),
            Some(c) => {
                // Probe first, evaluate the unique misses in parallel, and
                // reassemble in `distinct` order so the stable sort below
                // breaks loss ties exactly as the uncached path does.
                let mut losses: Vec<Option<f32>> = vec![None; distinct.len()];
                let mut misses: Vec<(usize, TxId)> = Vec::new();
                for (slot, &tip) in distinct.iter().enumerate() {
                    let sig = ctx.tangle.history_sig(tip.index() + 1);
                    match c.get(tx_key(tip, data_tag), sig, &ctx.telemetry) {
                        Some((loss, _)) => losses[slot] = Some(loss),
                        None => misses.push((slot, tip)),
                    }
                }
                let evals: Vec<(usize, TxId, f32, f32)> = misses
                    .par_iter()
                    .map(|&(slot, tip)| {
                        let mut m = scratch.take();
                        let (loss, acc) = eval_params(&mut m, &ctx.tangle.get(tip).payload, data);
                        scratch.put(m);
                        (slot, tip, loss, acc)
                    })
                    .collect();
                for &(slot, tip, loss, acc) in &evals {
                    let sig = ctx.tangle.history_sig(tip.index() + 1);
                    c.insert(tx_key(tip, data_tag), sig, loss, acc, &ctx.telemetry);
                    losses[slot] = Some(loss);
                }
                distinct
                    .into_iter()
                    .zip(losses)
                    .map(|(tip, loss)| (loss.expect("every candidate scored"), tip))
                    .collect()
            }
        };
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite losses"));
        scored
            .into_iter()
            .take(hyper.num_tips.max(1))
            .map(|(_, t)| t)
            .collect()
    } else {
        samples.into_iter().take(hyper.num_tips.max(1)).collect()
    };

    // Average the parent models — duplicates count twice, matching the
    // paper's w_avg = ½w₁ + ½w₂ for possibly-identical tips.
    let payloads: Vec<&ParamVec> = parents
        .iter()
        .map(|id| ctx.tangle.get(*id).payload.as_ref())
        .collect();
    let avg = ParamVec::average(&payloads);

    // Train locally from the averaged base.
    avg.assign_to(&mut model);
    {
        let _span = ctx.telemetry.span("node.local_train_us");
        local_train_with(
            &mut model,
            data,
            TrainOpts {
                epochs: cfg.local_epochs,
                lr: cfg.lr,
                batch_size: cfg.batch_size,
                chunks: cfg.train_chunks,
                parallel: cfg.train_parallel,
            },
            rng,
        );
    }
    let new_params = ParamVec::from_model(&model);
    let (new_loss, _) = model.evaluate(&data.test_x, &data.test_y);
    scratch.put(model);

    // Publish gate: only emit if we beat the consensus reference locally.
    let publish = (new_loss < reference_loss).then_some(Publish {
        node: node.id,
        params: new_params,
        parents,
    });
    StepOutcome {
        publish,
        new_loss: Some(new_loss),
        reference_loss: Some(reference_loss),
    }
}

fn random_poison_step<T: TangleRead<Payload = ModelParams> + Sync>(
    node: &Node,
    ctx: &RoundContext<'_, T>,
    cfg: &SimConfig,
    rng: &mut impl RngExt,
) -> StepOutcome {
    // "adversarial nodes simply submit model parameters generated by a
    // standard normal distribution" (Fig. 5). Parents are selected by the
    // ordinary walk so the junk attaches where honest traffic attaches.
    let normal = Normal::new(0.0f32, 1.0).expect("valid normal");
    let dim = ctx.reference.len();
    let params = ParamVec((0..dim).map(|_| normal.sample(rng)).collect());
    let parents: Vec<TxId> =
        ctx.sample_tips(cfg.hyper.num_tips.max(1), rng, cfg.hyper.parallel_walks);
    StepOutcome {
        publish: Some(Publish {
            node: node.id,
            params,
            parents,
        }),
        new_loss: None,
        reference_loss: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::blobs::{self, BlobsConfig};
    use tinynn::rng::seeded;

    fn build() -> Sequential {
        tinynn::zoo::mlp(8, &[12], 4, &mut seeded(7))
    }

    fn dataset() -> feddata::FederatedDataset {
        blobs::generate(
            &BlobsConfig {
                users: 6,
                samples_per_user: (20, 30),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            9,
        )
    }

    fn genesis_tangle() -> Tangle<ModelParams> {
        Tangle::new(Arc::new(ParamVec::from_model(&build())))
    }

    #[test]
    fn behaviour_activation() {
        let ds = dataset();
        let mut n = Node::honest(0, ds.clients[0].clone());
        assert_eq!(n.behaviour(1000), Behaviour::Honest);
        n.kind = NodeKind::RandomPoisoner { from_round: 10 };
        assert_eq!(n.behaviour(9), Behaviour::Honest);
        assert_eq!(n.behaviour(10), Behaviour::RandomNoise);
        assert!(n.is_malicious(10));
        assert!(!n.is_malicious(9));
    }

    #[test]
    fn round_context_reference_is_genesis_initially() {
        let tangle = genesis_tangle();
        let cfg = SimConfig::default();
        let ctx = RoundContext::build(&tangle, &cfg, 1, 1);
        assert_eq!(ctx.reference_ids, vec![tangle.genesis()]);
        assert_eq!(
            &ctx.reference,
            tangle.get(tangle.genesis()).payload.as_ref()
        );
    }

    #[test]
    fn honest_node_publishes_when_it_improves() {
        // With a genesis-only tangle the reference is the random init, so a
        // locally trained model should usually beat it and be published.
        let ds = dataset();
        let tangle = genesis_tangle();
        let cfg = SimConfig {
            lr: 0.2,
            local_epochs: 3,
            ..SimConfig::default()
        };
        let ctx = RoundContext::build(&tangle, &cfg, 1, 2);
        let node = Node::honest(0, ds.clients[0].clone());
        let mut rng = seeded(11);
        let out = node_step(&node, &ctx, &build, &cfg, &mut rng);
        let publish = out
            .publish
            .expect("training from random init should improve");
        // Both sampled tips are necessarily the genesis (duplicates are
        // kept here; the ledger collapses them at insertion).
        assert_eq!(publish.parents, vec![tangle.genesis(), tangle.genesis()]);
        assert_eq!(publish.node, 0);
        assert!(out.new_loss.unwrap() < out.reference_loss.unwrap());
    }

    #[test]
    fn random_poisoner_always_publishes_noise() {
        let ds = dataset();
        let tangle = genesis_tangle();
        let cfg = SimConfig::default();
        let ctx = RoundContext::build(&tangle, &cfg, 5, 3);
        let node = Node {
            id: 1,
            data: ds.clients[1].clone(),
            poisoned_data: None,
            kind: NodeKind::RandomPoisoner { from_round: 0 },
        };
        let mut rng = seeded(12);
        let out = node_step(&node, &ctx, &build, &cfg, &mut rng);
        let p = out.publish.expect("poisoner always publishes");
        assert_eq!(p.params.len(), ctx.reference.len());
        assert!(out.new_loss.is_none());
        // noise is not all zeros
        assert!(p.params.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn tip_validation_avoids_poison_tips() {
        // Tangle: genesis + one good (trained) tip + one noise tip.
        // With validation on and sample_size high, the node should select
        // the good tip (twice) and never approve the poison.
        let ds = dataset();
        let mut tangle = genesis_tangle();
        // good tip: genesis params actually trained a bit
        let mut model = build();
        let mut rng = seeded(20);
        fedavg::local_train(&mut model, &ds.clients[2], 3, 0.2, 8, &mut rng);
        let good = tangle
            .add(
                Arc::new(ParamVec::from_model(&model)),
                vec![tangle.genesis()],
            )
            .unwrap();
        let noise = tangle
            .add(
                Arc::new(ParamVec(vec![5.0; ctx_dim(&tangle)])),
                vec![tangle.genesis()],
            )
            .unwrap();
        let cfg = SimConfig {
            hyper: crate::TangleHyperParams {
                sample_size: 12,
                tip_validation: true,
                num_tips: 2,
                ..crate::TangleHyperParams::basic()
            },
            ..SimConfig::default()
        };
        let ctx = RoundContext::build(&tangle, &cfg, 1, 4);
        let node = Node::honest(3, ds.clients[3].clone());
        let mut rng = seeded(21);
        let out = node_step(&node, &ctx, &build, &cfg, &mut rng);
        // Selected parents must be ranked best-first: good before noise if
        // both sampled; the top choice must never be the noise tip.
        if let Some(p) = out.publish {
            assert_ne!(p.parents[0], noise, "noise tip ranked first");
            assert_eq!(p.parents[0], good);
        }
    }

    fn ctx_dim(tangle: &Tangle<ModelParams>) -> usize {
        tangle.get(tangle.genesis()).payload.len()
    }

    #[test]
    fn accuracy_bias_steers_walk_toward_good_models() {
        // Same fork as the validation test, but the defense is OFF and the
        // §VI accuracy-biased walk is ON: the walk itself should avoid the
        // noise branch.
        let ds = dataset();
        let mut tangle = genesis_tangle();
        let mut model = build();
        let mut rng = seeded(30);
        fedavg::local_train(&mut model, &ds.clients[2], 3, 0.2, 8, &mut rng);
        let good = tangle
            .add(
                Arc::new(ParamVec::from_model(&model)),
                vec![tangle.genesis()],
            )
            .unwrap();
        let noise = tangle
            .add(
                Arc::new(ParamVec(vec![5.0; ctx_dim(&tangle)])),
                vec![tangle.genesis()],
            )
            .unwrap();
        let cfg = SimConfig {
            hyper: crate::TangleHyperParams {
                num_tips: 1,
                sample_size: 1,
                accuracy_bias: 1000.0,
                alpha: 1.0,
                ..crate::TangleHyperParams::basic()
            },
            lr: 0.2,
            local_epochs: 2,
            ..SimConfig::default()
        };
        let ctx = RoundContext::build(&tangle, &cfg, 1, 6);
        let node = Node::honest(4, ds.clients[4].clone());
        // Which tip is better *on this node's local data*? The biased walk
        // should favour that one (this is the point of the §VI bias: local
        // performance, enabling per-cluster sub-tangles).
        let mut scratch = build();
        let mut local_acc = |id: tangle_ledger::TxId| {
            tangle.get(id).payload.assign_to(&mut scratch);
            scratch.evaluate(&node.data.test_x, &node.data.test_y).1
        };
        let (acc_good, acc_noise) = (local_acc(good), local_acc(noise));
        let winner = if acc_good >= acc_noise { good } else { noise };
        let mut winner_hits = 0;
        let mut total = 0;
        for s in 0..10 {
            let mut rng = seeded(100 + s);
            let out = node_step(&node, &ctx, &build, &cfg, &mut rng);
            if let Some(p) = out.publish {
                total += 1;
                if p.parents[0] == winner {
                    winner_hits += 1;
                }
            }
        }
        assert!(total > 0, "node never published");
        assert!(
            winner_hits * 2 > total,
            "biased walk should mostly pick the locally better tip \
             (good {acc_good:.2} vs noise {acc_noise:.2}): {winner_hits}/{total}"
        );
    }
}
