//! # learning-tangle — tangle-based decentralized federated learning
//!
//! The paper's contribution: a network of nodes that collaboratively train
//! a model **without any central aggregator** by publishing model snapshots
//! into a [tangle](tangle_ledger) (a DAG ledger) and letting approval double
//! as model validation.
//!
//! Every participating node (paper Algorithm 2):
//! 1. derives the current **reference model** from the tangle consensus
//!    (Algorithm 1: maximize `confidence × rating`, optionally averaging the
//!    top *n*),
//! 2. selects parent tips by weighted random walk — optionally sampling
//!    many candidates and keeping the locally best-validating ones (the
//!    §III-E poisoning defense),
//! 3. averages the parents' parameters, trains on its private non-IID data,
//! 4. publishes the result **iff** it beats the reference model on local
//!    validation data — thereby approving its parents.
//!
//! Modules:
//! * [`config`] — hyperparameters ([`TangleHyperParams`], [`SimConfig`]).
//! * [`node`] — the per-node algorithm and its building blocks.
//! * [`attack`] — the paper's adversaries: random-noise poisoning and
//!   targeted label flipping (§III-E / §V-B).
//! * [`sim`] — the round-based simulator used for all paper experiments.
//! * [`async_sim`] — an asynchronous, thread-per-worker simulator
//!   (the paper's §VI outlook of a "distributed implementation").
//! * [`metrics`] — accuracy / misclassification series and Table II
//!   helpers.
//! * [`dp`] — optional differential-privacy noise on published updates
//!   (§III-D mitigation).

pub mod async_sim;
pub mod attack;
pub mod cluster;
pub mod config;
pub mod dp;
pub mod eval_cache;
pub mod metrics;
pub mod node;
pub mod persist;
pub mod privacy;
pub mod sim;

pub use attack::{assign_malicious, AttackKind};
pub use config::{ConfidenceMode, NetworkModel, SimConfig, TangleHyperParams};
pub use eval_cache::{tx_key, EvalCache, ScratchPool, DEFAULT_EVAL_CACHE_CAPACITY};
pub use metrics::{rounds_to_reach, MetricsLog};
pub use node::{Node, NodeKind, RoundContext};
pub use sim::{eval_pool_indices, RoundStats, Simulation};
