//! Adversary construction: declare a fraction of the population malicious
//! (paper §V-B: p ∈ {0.1, 0.2, 0.25, 0.3}), activated after a benign
//! pre-training phase.

use crate::node::{Node, NodeKind};
use feddata::poison::label_flip_client;
use feddata::ClientData;
use rand::RngExt;
use tinynn::rng::seeded;

/// The two poisoning attacks evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// Indiscriminate: publish standard-normal random parameters (Fig. 5).
    RandomNoise,
    /// Targeted: train on `src`-class samples labelled `dst` (Fig. 6,
    /// paper instance: 3 → 8).
    LabelFlip {
        /// True class of the mislabeled samples.
        src: u32,
        /// Label assigned by the attacker.
        dst: u32,
    },
    /// Backdoor: train on clean data plus trigger-stamped copies labelled
    /// `target` (the paper outlook's "different classes of poisoning
    /// attacks"; requires image data `[N, C, H, W]`).
    Backdoor {
        /// Class the trigger activates.
        target: u32,
        /// Side length of the corner trigger patch.
        patch: usize,
    },
}

/// Select `⌊fraction · n⌋` (at least 1 when `fraction > 0`) random nodes
/// and turn them into attackers of `kind`, active from `from_round`.
///
/// For [`AttackKind::LabelFlip`], each attacker's dataset is replaced using
/// `flip_source`; pass [`default_flip_source`] to carve the mislabeled set
/// out of the node's own data, or a custom closure (e.g. fabricating
/// source-class samples with `feddata::femnist::class_samples`).
///
/// Returns the chosen node indices.
pub fn assign_malicious(
    nodes: &mut [Node],
    fraction: f64,
    from_round: u64,
    kind: AttackKind,
    seed: u64,
    flip_source: impl Fn(&Node) -> Option<ClientData>,
) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let n = nodes.len();
    let mut count = (fraction * n as f64).floor() as usize;
    if fraction > 0.0 {
        count = count.max(1);
    }
    let mut rng = seeded(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx.truncate(count);
    for &i in &idx {
        match kind {
            AttackKind::RandomNoise => {
                nodes[i].kind = NodeKind::RandomPoisoner { from_round };
            }
            AttackKind::LabelFlip { src, dst } => {
                let poisoned = flip_source(&nodes[i]).unwrap_or_else(|| {
                    // Fallback: the attacker relabels everything it owns.
                    let mut d = nodes[i].data.clone();
                    d.train_y.iter_mut().for_each(|y| *y = dst);
                    d.test_y.iter_mut().for_each(|y| *y = dst);
                    d
                });
                nodes[i].poisoned_data = Some(poisoned);
                nodes[i].kind = NodeKind::LabelFlipper {
                    from_round,
                    src,
                    dst,
                };
            }
            AttackKind::Backdoor { target, patch } => {
                nodes[i].poisoned_data = Some(feddata::poison::backdoor_client(
                    &nodes[i].data,
                    target,
                    patch,
                    1.0,
                ));
                nodes[i].kind = NodeKind::Backdoor { from_round, target };
            }
        }
    }
    idx.sort_unstable();
    idx
}

/// The default label-flip source: keep the node's own `src`-class samples,
/// relabelled `dst` (paper §III-E).
pub fn default_flip_source(src: u32, dst: u32) -> impl Fn(&Node) -> Option<ClientData> {
    move |node: &Node| label_flip_client(&node.data, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::blobs::{self, BlobsConfig};

    fn nodes() -> Vec<Node> {
        let ds = blobs::generate(
            &BlobsConfig {
                users: 10,
                ..BlobsConfig::default()
            },
            3,
        );
        ds.clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect()
    }

    #[test]
    fn fraction_counts() {
        let mut ns = nodes();
        let chosen = assign_malicious(&mut ns, 0.3, 5, AttackKind::RandomNoise, 1, |_| None);
        assert_eq!(chosen.len(), 3);
        for &i in &chosen {
            assert_eq!(ns[i].kind, NodeKind::RandomPoisoner { from_round: 5 });
        }
        let honest = ns.iter().filter(|n| n.kind == NodeKind::Honest).count();
        assert_eq!(honest, 7);
    }

    #[test]
    fn zero_fraction_selects_nobody() {
        let mut ns = nodes();
        let chosen = assign_malicious(&mut ns, 0.0, 5, AttackKind::RandomNoise, 1, |_| None);
        assert!(chosen.is_empty());
    }

    #[test]
    fn small_positive_fraction_selects_at_least_one() {
        let mut ns = nodes();
        let chosen = assign_malicious(&mut ns, 0.01, 5, AttackKind::RandomNoise, 1, |_| None);
        assert_eq!(chosen.len(), 1);
    }

    #[test]
    fn label_flip_installs_poisoned_data() {
        let mut ns = nodes();
        let kind = AttackKind::LabelFlip { src: 0, dst: 3 };
        let chosen = assign_malicious(&mut ns, 0.2, 7, kind, 2, default_flip_source(0, 3));
        assert_eq!(chosen.len(), 2);
        for &i in &chosen {
            let d = ns[i].poisoned_data.as_ref().expect("poisoned data set");
            assert!(d.train_y.iter().all(|&y| y == 3));
            assert!(d.test_y.iter().all(|&y| y == 3));
        }
    }

    #[test]
    fn fallback_relabels_everything() {
        let mut ns = nodes();
        // Source class 99 does not exist, so every flipper hits the fallback.
        let kind = AttackKind::LabelFlip { src: 99, dst: 1 };
        let chosen = assign_malicious(&mut ns, 0.2, 7, kind, 4, default_flip_source(99, 1));
        for &i in &chosen {
            let d = ns[i].poisoned_data.as_ref().unwrap();
            assert_eq!(d.train_len(), ns[i].data.train_len());
            assert!(d.train_y.iter().all(|&y| y == 1));
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let mut a = nodes();
        let mut b = nodes();
        let ka = assign_malicious(&mut a, 0.3, 1, AttackKind::RandomNoise, 9, |_| None);
        let kb = assign_malicious(&mut b, 0.3, 1, AttackKind::RandomNoise, 9, |_| None);
        assert_eq!(ka, kb);
    }
}
