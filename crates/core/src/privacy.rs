//! Linkability analysis (paper §III-D).
//!
//! The paper leaves open "the relatedness of transactions published by the
//! same participant": if updates from one node look alike, an attacker can
//! link anonymous transactions back to a participant (Orekondy et al., the
//! paper's reference \[6\]). This module operationalizes that question:
//!
//! * [`linkability_report`] measures how much more similar same-issuer
//!   publications are than cross-issuer ones, and
//! * [`linkability_attack_accuracy`] runs the attack itself — assign each
//!   transaction to the issuer of its most similar predecessor — and
//!   reports how often it is right.
//!
//! Applying [`crate::dp`] noise before publishing is the mitigation the
//! paper points to; the report quantifies how much it helps.

use crate::node::ModelParams;
use tangle_ledger::Tangle;
use tinynn::ParamVec;

/// Cosine similarity between two parameter vectors.
pub fn cosine(a: &ParamVec, b: &ParamVec) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        dot += (x as f64) * (y as f64);
        na += (x as f64) * (x as f64);
        nb += (y as f64) * (y as f64);
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())) as f32
}

/// Similarity statistics of a ledger's publications.
#[derive(Clone, Copy, Debug)]
pub struct LinkabilityReport {
    /// Mean cosine similarity between *consecutive publications of the
    /// same issuer* (the linkability signal).
    pub same_issuer_mean: f32,
    /// Mean cosine similarity between publications of *different issuers*
    /// adjacent in ledger order (the background level).
    pub cross_issuer_mean: f32,
    /// Number of same-issuer pairs measured.
    pub same_pairs: usize,
    /// Number of cross-issuer pairs measured.
    pub cross_pairs: usize,
}

impl LinkabilityReport {
    /// `same − cross`: > 0 means same-issuer updates are distinguishable.
    pub fn signal(&self) -> f32 {
        self.same_issuer_mean - self.cross_issuer_mean
    }
}

/// Measure raw-parameter linkability. Uses the *update* (difference to the
/// averaged parents) rather than the full parameters — full parameter
/// vectors are dominated by the shared consensus and would look similar
/// for everyone.
pub fn linkability_report(tangle: &Tangle<ModelParams>) -> LinkabilityReport {
    let updates = updates_by_tx(tangle);
    let mut same = Vec::new();
    let mut cross = Vec::new();
    // Consecutive publications per issuer.
    let mut last_of_issuer: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    let mut prev_any: Option<(u64, usize)> = None;
    for (i, (issuer, upd)) in updates.iter().enumerate() {
        if upd.is_none() {
            continue;
        }
        if let Some(&j) = last_of_issuer.get(issuer) {
            if let (Some(a), Some(b)) = (&updates[j].1, upd) {
                same.push(cosine(a, b));
            }
        }
        if let Some((prev_issuer, j)) = prev_any {
            if prev_issuer != *issuer {
                if let (Some(a), Some(b)) = (&updates[j].1, upd) {
                    cross.push(cosine(a, b));
                }
            }
        }
        last_of_issuer.insert(*issuer, i);
        prev_any = Some((*issuer, i));
    }
    let mean = |v: &[f32]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    };
    LinkabilityReport {
        same_issuer_mean: mean(&same),
        cross_issuer_mean: mean(&cross),
        same_pairs: same.len(),
        cross_pairs: cross.len(),
    }
}

/// Run the linkability attack: for every transaction whose issuer has
/// published before, guess that its issuer is the issuer of the most
/// similar *earlier* update. Returns `(accuracy, decisions)`; chance level
/// is roughly `1 / distinct_issuers`.
pub fn linkability_attack_accuracy(tangle: &Tangle<ModelParams>) -> (f32, usize) {
    let updates = updates_by_tx(tangle);
    let mut hits = 0usize;
    let mut total = 0usize;
    for i in 1..updates.len() {
        let (truth, Some(upd)) = (&updates[i].0, &updates[i].1) else {
            continue;
        };
        // Only score transactions whose issuer appeared before (otherwise
        // the attack cannot possibly be right).
        let seen_before = updates[..i]
            .iter()
            .any(|(iss, u)| iss == truth && u.is_some());
        if !seen_before {
            continue;
        }
        let mut best: Option<(f32, u64)> = None;
        for (iss, u) in &updates[..i] {
            if let Some(u) = u {
                let s = cosine(upd, u);
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, *iss));
                }
            }
        }
        if let Some((_, guessed)) = best {
            total += 1;
            if guessed == *truth {
                hits += 1;
            }
        }
    }
    (
        if total == 0 {
            0.0
        } else {
            hits as f32 / total as f32
        },
        total,
    )
}

/// Per transaction: `(issuer, update)` where the update is the difference
/// to the averaged parents (None for the genesis).
fn updates_by_tx(tangle: &Tangle<ModelParams>) -> Vec<(u64, Option<ParamVec>)> {
    tangle
        .transactions()
        .iter()
        .map(|tx| {
            if tx.parents.is_empty() {
                return (tx.issuer, None);
            }
            let parents: Vec<&ParamVec> = tx
                .parents
                .iter()
                .map(|p| tangle.get(*p).payload.as_ref())
                .collect();
            let base = ParamVec::average(&parents);
            let delta = ParamVec(
                tx.payload
                    .as_slice()
                    .iter()
                    .zip(base.as_slice())
                    .map(|(a, b)| a - b)
                    .collect(),
            );
            (tx.issuer, Some(delta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cosine_basics() {
        let a = ParamVec(vec![1.0, 0.0]);
        let b = ParamVec(vec![2.0, 0.0]);
        let c = ParamVec(vec![0.0, 1.0]);
        let d = ParamVec(vec![-1.0, 0.0]);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine(&a, &c).abs() < 1e-6);
        assert!((cosine(&a, &d) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&a, &ParamVec(vec![0.0, 0.0])), 0.0);
    }

    /// Two issuers with characteristic update directions: the report must
    /// find strong same-issuer similarity, and the attack must link them.
    #[test]
    fn distinct_signatures_are_linkable() {
        let mut t = Tangle::new(Arc::new(ParamVec(vec![0.0, 0.0])));
        let dirs = [(1.0f32, 0.1f32), (0.1, 1.0)]; // issuer 0, issuer 1
        let mut cur = vec![0.0f32, 0.0];
        for step in 0..8u64 {
            let issuer = (step % 2) as usize;
            cur[0] += dirs[issuer].0;
            cur[1] += dirs[issuer].1;
            let tips = t.tips();
            t.add_meta(Arc::new(ParamVec(cur.clone())), tips, issuer as u64, step)
                .unwrap();
        }
        let report = linkability_report(&t);
        assert!(report.same_pairs > 0 && report.cross_pairs > 0);
        assert!(
            report.signal() > 0.2,
            "distinct directions should be linkable: {report:?}"
        );
        let (acc, n) = linkability_attack_accuracy(&t);
        assert!(n > 0);
        assert!(acc > 0.6, "attack should beat 2-issuer chance: {acc}");
    }

    /// Identical update directions are not linkable: the signal collapses.
    #[test]
    fn identical_behaviour_is_not_linkable() {
        let mut t = Tangle::new(Arc::new(ParamVec(vec![0.0, 0.0])));
        let mut cur = vec![0.0f32, 0.0];
        for step in 0..8u64 {
            cur[0] += 1.0; // everyone moves the same way
            let tips = t.tips();
            t.add_meta(Arc::new(ParamVec(cur.clone())), tips, step % 2, step)
                .unwrap();
        }
        let report = linkability_report(&t);
        assert!(
            report.signal().abs() < 0.05,
            "identical updates should not be linkable: {report:?}"
        );
    }

    #[test]
    fn genesis_only_ledger_is_trivial() {
        let t: Tangle<ModelParams> = Tangle::new(Arc::new(ParamVec(vec![1.0])));
        let r = linkability_report(&t);
        assert_eq!(r.same_pairs, 0);
        assert_eq!(linkability_attack_accuracy(&t), (0.0, 0));
    }
}
