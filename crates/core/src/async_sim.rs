//! Asynchronous (round-free) simulation.
//!
//! The tangle needs no rounds — the paper only introduces them to compare
//! against FedAvg (§IV) and names a "distributed implementation ...
//! benchmarked in a simulation environment" as future work (§VI). This
//! module provides that: worker threads independently pick nodes, snapshot
//! the shared ledger, run Algorithm 2 against their snapshot, and publish
//! through a write lock — so nodes genuinely act on *stale* views, like
//! real network participants.

use crate::config::SimConfig;
use crate::node::RoundContext;
use crate::node::{node_step, ModelParams, Node};
use crossbeam::channel;
use parking_lot::RwLock;
use rand::RngExt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tangle_ledger::Tangle;
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// One publication event, as observed on the asynchronous network.
#[derive(Clone, Copy, Debug)]
pub struct PublishEvent {
    /// Worker thread that processed the step.
    pub worker: usize,
    /// Node that published.
    pub node: usize,
    /// Ledger size right after the publication.
    pub tangle_len: usize,
    /// Size of the snapshot the node acted on (staleness =
    /// `tangle_len − snapshot_len − 1`).
    pub snapshot_len: usize,
}

/// Result of an asynchronous run.
pub struct AsyncRun {
    /// The final ledger.
    pub tangle: Tangle<ModelParams>,
    /// All publications in commit order.
    pub events: Vec<PublishEvent>,
    /// Steps whose publish gate rejected the trained model.
    pub discarded: usize,
}

/// Run `workers` concurrent participants until the ledger holds at least
/// `target_transactions` transactions (including the genesis).
///
/// Node behaviour activation (`from_round`) is interpreted against the
/// *snapshot length* rather than a round number. With `workers == 1` the
/// run is fully deterministic for a given seed.
pub fn run_async(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    workers: usize,
    target_transactions: usize,
) -> AsyncRun {
    run_async_observed(
        nodes,
        cfg,
        build,
        workers,
        target_transactions,
        lt_telemetry::Telemetry::disabled(),
    )
}

/// Like [`run_async`], additionally recording per-publication
/// [`lt_telemetry::AsyncPublishEvent`]s plus `async.published` /
/// `async.discarded` counters into `telemetry`.
pub fn run_async_observed(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    workers: usize,
    target_transactions: usize,
    telemetry: lt_telemetry::Telemetry,
) -> AsyncRun {
    assert!(workers >= 1, "need at least one worker");
    let genesis = Arc::new(ParamVec::from_model(&build()));
    let ledger = RwLock::new(Tangle::new(genesis));
    let done = AtomicBool::new(false);
    let (tx_events, rx_events) = channel::unbounded::<PublishEvent>();
    let (tx_disc, rx_disc) = channel::unbounded::<()>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let ledger = &ledger;
            let done = &done;
            let build = &build;
            let tx_events = tx_events.clone();
            let tx_disc = tx_disc.clone();
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                let mut rng = seeded(derive(cfg.seed, 0xA11C ^ w as u64));
                let mut step = 0u64;
                while !done.load(Ordering::Relaxed) {
                    step += 1;
                    let ni = rng.random_range(0..nodes.len());
                    // Snapshot under a read lock, then work lock-free.
                    let snapshot = ledger.read().clone();
                    let snapshot_len = snapshot.len();
                    let vround = snapshot_len as u64;
                    let ctx = RoundContext::build_observed(
                        &snapshot,
                        cfg,
                        vround,
                        derive(cfg.seed, (w as u64) << 40 | step),
                        telemetry.clone(),
                    );
                    let mut node_rng = seeded(derive(
                        cfg.seed,
                        ((w as u64) << 48) ^ (step << 8) ^ ni as u64,
                    ));
                    let out = node_step(&nodes[ni], &ctx, build, cfg, &mut node_rng);
                    match out.publish {
                        Some(p) => {
                            let mut guard = ledger.write();
                            // Parents exist in the snapshot, which is a
                            // prefix of the live ledger (append-only).
                            guard
                                .add_meta(Arc::new(p.params), p.parents, ni as u64, vround)
                                .expect("snapshot is a prefix of the ledger");
                            let len = guard.len();
                            drop(guard);
                            let _ = tx_events.send(PublishEvent {
                                worker: w,
                                node: ni,
                                tangle_len: len,
                                snapshot_len,
                            });
                            telemetry.count("async.published", 1);
                            telemetry.emit(|| {
                                lt_telemetry::Event::AsyncPublish(lt_telemetry::AsyncPublishEvent {
                                    worker: w as u64,
                                    node: ni as u64,
                                    tangle_len: len as u64,
                                    snapshot_len: snapshot_len as u64,
                                })
                            });
                            if len >= target_transactions {
                                done.store(true, Ordering::Relaxed);
                            }
                        }
                        None => {
                            telemetry.count("async.discarded", 1);
                            let _ = tx_disc.send(());
                        }
                    }
                }
            });
        }
        drop(tx_events);
        drop(tx_disc);
    });

    let events: Vec<PublishEvent> = rx_events.try_iter().collect();
    let discarded = rx_disc.try_iter().count();
    AsyncRun {
        tangle: ledger.into_inner(),
        events,
        discarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TangleHyperParams;
    use feddata::blobs::{self, BlobsConfig};
    use tinynn::rng::seeded as tseed;

    fn nodes() -> Vec<Node> {
        let ds = blobs::generate(
            &BlobsConfig {
                users: 8,
                samples_per_user: (24, 30),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            13,
        );
        ds.clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect()
    }

    fn build() -> Sequential {
        tinynn::zoo::mlp(8, &[12], 4, &mut tseed(5))
    }

    fn cfg() -> SimConfig {
        SimConfig {
            nodes_per_round: 4,
            lr: 0.15,
            batch_size: 8,
            seed: 21,
            hyper: TangleHyperParams {
                confidence_samples: 6,
                ..TangleHyperParams::basic()
            },
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_worker_reaches_target_deterministically() {
        let ns = nodes();
        let a = run_async(&ns, &cfg(), build, 1, 12);
        let b = run_async(&ns, &cfg(), build, 1, 12);
        assert!(a.tangle.len() >= 12);
        assert_eq!(a.tangle.len(), b.tangle.len());
        assert_eq!(a.events.len(), b.events.len());
        // commit order identical under one worker
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.tangle_len, y.tangle_len);
        }
    }

    #[test]
    fn multi_worker_reaches_target() {
        let ns = nodes();
        let run = run_async(&ns, &cfg(), build, 3, 15);
        assert!(run.tangle.len() >= 15);
        // every event recorded a consistent snapshot
        for e in &run.events {
            assert!(e.snapshot_len < e.tangle_len);
        }
    }

    #[test]
    fn events_track_all_publications() {
        let ns = nodes();
        let run = run_async(&ns, &cfg(), build, 2, 10);
        // genesis + events = ledger size (no other writer exists)
        assert_eq!(run.events.len() + 1, run.tangle.len());
    }
}
