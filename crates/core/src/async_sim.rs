//! Asynchronous (round-free) simulation.
//!
//! The tangle needs no rounds — the paper only introduces them to compare
//! against FedAvg (§IV) and names a "distributed implementation ...
//! benchmarked in a simulation environment" as future work (§VI). This
//! module provides that: worker threads independently pick nodes, snapshot
//! the shared ledger, run Algorithm 2 against their snapshot, and publish
//! through a write lock — so nodes genuinely act on *stale* views, like
//! real network participants.

use crate::config::SimConfig;
use crate::eval_cache::{EvalCache, ScratchPool, DEFAULT_EVAL_CACHE_CAPACITY};
use crate::node::RoundContext;
use crate::node::{node_step_pooled, ModelParams, Node};
use crossbeam::channel;
use parking_lot::RwLock;
use rand::RngExt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tangle_ledger::Tangle;
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// One publication event, as observed on the asynchronous network.
#[derive(Clone, Copy, Debug)]
pub struct PublishEvent {
    /// Worker thread that processed the step.
    pub worker: usize,
    /// Node that published.
    pub node: usize,
    /// Ledger size right after the publication.
    pub tangle_len: usize,
    /// Size of the snapshot the node acted on (staleness =
    /// `tangle_len − snapshot_len − 1`).
    pub snapshot_len: usize,
}

/// Result of an asynchronous run.
pub struct AsyncRun {
    /// The final ledger.
    pub tangle: Tangle<ModelParams>,
    /// All publications in commit order.
    pub events: Vec<PublishEvent>,
    /// Steps whose publish gate rejected the trained model.
    pub discarded: usize,
    /// Steps whose finished work was thrown away because the worker was
    /// killed by a [`WorkerFaultPlan`] (the crash-mid-step analogue of
    /// the gossip network's peer churn).
    pub killed: usize,
}

/// Deterministic worker-fault schedule for the asynchronous simulator —
/// the [`run_async`] mirror of the gossip network's crash/restart churn.
#[derive(Clone, Debug, Default)]
pub struct WorkerFaultPlan {
    /// `(worker, local step)` pairs: the worker dies right as it finishes
    /// that local step, so the completed training result is discarded
    /// (counted in [`AsyncRun::killed`]), and the worker respawns with a
    /// fresh RNG stream. Local steps start at 1 and keep counting across
    /// respawns, so a pair can fire at most once.
    pub kills: Vec<(usize, u64)>,
}

/// Performance knobs for the asynchronous executor. Every setting is a
/// pure optimization: toggling it changes cost, never observable results.
#[derive(Clone, Copy, Debug)]
pub struct AsyncTuning {
    /// Memoize node evaluations (per worker, per node) across steps.
    pub eval_cache: bool,
    /// Capacity of each evaluation cache.
    pub eval_cache_cap: usize,
}

impl Default for AsyncTuning {
    fn default() -> Self {
        Self {
            eval_cache: true,
            eval_cache_cap: DEFAULT_EVAL_CACHE_CAPACITY,
        }
    }
}

/// Run `workers` concurrent participants until the ledger holds at least
/// `target_transactions` transactions (including the genesis).
///
/// Node behaviour activation (`from_round`) is interpreted against the
/// *snapshot length* rather than a round number. With `workers == 1` the
/// run is fully deterministic for a given seed.
pub fn run_async(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    workers: usize,
    target_transactions: usize,
) -> AsyncRun {
    run_async_observed(
        nodes,
        cfg,
        build,
        workers,
        target_transactions,
        lt_telemetry::Telemetry::disabled(),
    )
}

/// Like [`run_async`], additionally recording per-publication
/// [`lt_telemetry::AsyncPublishEvent`]s plus `async.published` /
/// `async.discarded` counters into `telemetry`.
pub fn run_async_observed(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    workers: usize,
    target_transactions: usize,
    telemetry: lt_telemetry::Telemetry,
) -> AsyncRun {
    run_async_faulty(
        nodes,
        cfg,
        build,
        workers,
        target_transactions,
        telemetry,
        &WorkerFaultPlan::default(),
    )
}

/// Like [`run_async_observed`], with scheduled worker kills: a killed
/// worker's completed step is discarded as lost work (`fault.worker_kill`,
/// [`AsyncRun::killed`]) and the worker immediately respawns on a fresh,
/// deterministically derived RNG stream (`fault.worker_respawn`). An
/// empty plan behaves exactly like [`run_async_observed`].
#[allow(clippy::too_many_arguments)]
pub fn run_async_faulty(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    workers: usize,
    target_transactions: usize,
    telemetry: lt_telemetry::Telemetry,
    faults: &WorkerFaultPlan,
) -> AsyncRun {
    run_async_faulty_tuned(
        nodes,
        cfg,
        build,
        workers,
        target_transactions,
        telemetry,
        faults,
        &AsyncTuning::default(),
    )
}

/// Like [`run_async_faulty`], with explicit [`AsyncTuning`]. With
/// `workers == 1` the run is bit-identical for any tuning — the
/// differential tests pin this.
#[allow(clippy::too_many_arguments)]
pub fn run_async_faulty_tuned(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    workers: usize,
    target_transactions: usize,
    telemetry: lt_telemetry::Telemetry,
    faults: &WorkerFaultPlan,
    tuning: &AsyncTuning,
) -> AsyncRun {
    assert!(workers >= 1, "need at least one worker");
    let genesis = Arc::new(ParamVec::from_model(&build()));
    // One scratch-model pool shared by all workers; params are fully
    // assigned before every use so sharing is invisible.
    let scratch = ScratchPool::new(Box::new(&build));
    let ledger = RwLock::new(Tangle::new(genesis));
    let done = AtomicBool::new(false);
    let (tx_events, rx_events) = channel::unbounded::<PublishEvent>();
    let (tx_disc, rx_disc) = channel::unbounded::<()>();
    let (tx_kill, rx_kill) = channel::unbounded::<()>();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let ledger = &ledger;
            let done = &done;
            let scratch = &scratch;
            let tx_events = tx_events.clone();
            let tx_disc = tx_disc.clone();
            let tx_kill = tx_kill.clone();
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                let mut rng = seeded(derive(cfg.seed, 0xA11C ^ w as u64));
                // Worker-local analysis cache: snapshots of the append-only
                // ledger only ever extend each other, so every step is an
                // incremental catch-up (kills don't invalidate it either).
                let mut cache = tangle_ledger::AnalysisCache::new(&*ledger.read());
                // Worker-local eval memoization, one cache per *node*
                // (losses depend on the node's own held-out data, so
                // caches can never be shared across nodes). Snapshots of
                // the append-only ledger share one signature chain, so
                // entries stay valid across snapshots and worker kills.
                let mut eval: Option<Vec<EvalCache>> = tuning.eval_cache.then(|| {
                    (0..nodes.len())
                        .map(|_| EvalCache::new(tuning.eval_cache_cap))
                        .collect()
                });
                let mut generation = 0u64;
                let mut step = 0u64;
                while !done.load(Ordering::Relaxed) {
                    step += 1;
                    let ni = rng.random_range(0..nodes.len());
                    // Snapshot under a read lock, then work lock-free.
                    let snapshot = ledger.read().clone();
                    let snapshot_len = snapshot.len();
                    let vround = snapshot_len as u64;
                    let ctx = RoundContext::build_with_cache(
                        &snapshot,
                        &mut cache,
                        cfg,
                        vround,
                        derive(cfg.seed, (w as u64) << 40 | step),
                        telemetry.clone(),
                    );
                    let mut node_rng = seeded(derive(
                        cfg.seed,
                        ((w as u64) << 48) ^ (step << 8) ^ ni as u64,
                    ));
                    let out = node_step_pooled(
                        &nodes[ni],
                        &ctx,
                        scratch,
                        cfg,
                        &mut node_rng,
                        eval.as_mut().map(|caches| &mut caches[ni]),
                    );
                    if faults.kills.iter().any(|&(kw, ks)| kw == w && ks == step) {
                        // The worker dies with its finished step in hand:
                        // the work is lost, the worker respawns on a new
                        // RNG stream.
                        let _ = tx_kill.send(());
                        telemetry.count("fault.worker_kill", 1);
                        telemetry.emit(|| {
                            lt_telemetry::Event::Fault(lt_telemetry::FaultEvent {
                                at: step,
                                peer: w as u64,
                                kind: "worker_kill".to_string(),
                            })
                        });
                        generation += 1;
                        rng = seeded(derive(cfg.seed, 0xA11C ^ w as u64 ^ (generation << 32)));
                        telemetry.count("fault.worker_respawn", 1);
                        telemetry.emit(|| {
                            lt_telemetry::Event::Fault(lt_telemetry::FaultEvent {
                                at: step,
                                peer: w as u64,
                                kind: "worker_respawn".to_string(),
                            })
                        });
                        continue;
                    }
                    match out.publish {
                        Some(p) => {
                            let mut guard = ledger.write();
                            // Parents exist in the snapshot, which is a
                            // prefix of the live ledger (append-only).
                            guard
                                .add_meta(Arc::new(p.params), p.parents, ni as u64, vround)
                                .expect("snapshot is a prefix of the ledger");
                            let len = guard.len();
                            drop(guard);
                            let _ = tx_events.send(PublishEvent {
                                worker: w,
                                node: ni,
                                tangle_len: len,
                                snapshot_len,
                            });
                            telemetry.count("async.published", 1);
                            telemetry.emit(|| {
                                lt_telemetry::Event::AsyncPublish(lt_telemetry::AsyncPublishEvent {
                                    worker: w as u64,
                                    node: ni as u64,
                                    tangle_len: len as u64,
                                    snapshot_len: snapshot_len as u64,
                                })
                            });
                            if len >= target_transactions {
                                done.store(true, Ordering::Relaxed);
                            }
                        }
                        None => {
                            telemetry.count("async.discarded", 1);
                            let _ = tx_disc.send(());
                        }
                    }
                }
            });
        }
        drop(tx_events);
        drop(tx_disc);
        drop(tx_kill);
    });

    let events: Vec<PublishEvent> = rx_events.try_iter().collect();
    let discarded = rx_disc.try_iter().count();
    let killed = rx_kill.try_iter().count();
    AsyncRun {
        tangle: ledger.into_inner(),
        events,
        discarded,
        killed,
    }
}

/// Scriptable activation-order hook for the asynchronous executor: a
/// single worker processes `script` as consecutive virtual rounds (round
/// `r` activates `script[r-1]`, in order), deriving context seeds and
/// per-node RNG streams with the **same formulas as
/// [`crate::Simulation::round`]** and holding all of a round's
/// publications until its barrier — while still going through the
/// asynchronous machinery (snapshot under a read lock, per-worker
/// [`AnalysisCache`](tangle_ledger::AnalysisCache), publication under a
/// write lock).
///
/// This is the degenerate differential case of the conformance harness:
/// driven through the same schedule, this executor must produce
/// byte-identical [`RoundStats`](crate::RoundStats), ledger structure, and
/// telemetry events to the round-based simulator (pinned by
/// `crates/core/tests/async_equivalence.rs`). Any divergence means the
/// snapshot/lock/cache path changed observable semantics.
pub fn run_async_scripted(
    nodes: &[Node],
    cfg: &SimConfig,
    build: impl Fn() -> Sequential + Sync,
    script: &[Vec<usize>],
    telemetry: lt_telemetry::Telemetry,
) -> (AsyncRun, Vec<crate::sim::RoundStats>) {
    use lt_telemetry::{Event, ReferenceEntry, RoundEvent, StepEvent};
    let genesis = Arc::new(ParamVec::from_model(&build()));
    let scratch = ScratchPool::new(Box::new(&build));
    let ledger = RwLock::new(Tangle::new(genesis));
    let mut cache = tangle_ledger::AnalysisCache::new(&*ledger.read());
    let mut eval: Vec<EvalCache> = (0..nodes.len())
        .map(|_| EvalCache::new(DEFAULT_EVAL_CACHE_CAPACITY))
        .collect();
    let mut events: Vec<PublishEvent> = Vec::new();
    let mut discarded = 0usize;
    let mut stats = Vec::with_capacity(script.len());
    for (r, idx) in script.iter().enumerate() {
        let round = (r + 1) as u64;
        assert!(!idx.is_empty(), "a scripted round must activate a node");
        let tel = telemetry.clone();
        let mut phases = tel.phases();
        let mut reference_entries: Vec<ReferenceEntry> = Vec::new();
        let snapshot = ledger.read().clone();
        let snapshot_len = snapshot.len();
        let ctx_seed = derive(cfg.seed, round ^ 0xC0FF_EE00);
        let ctx = phases.measure("analysis", || {
            RoundContext::build_with_cache(&snapshot, &mut cache, cfg, round, ctx_seed, tel.clone())
        });
        if tel.enabled() {
            reference_entries = ctx
                .reference_ids
                .iter()
                .map(|id| ReferenceEntry {
                    tx: id.index() as u32,
                    confidence: ctx.confidence[id.index()],
                    rating: ctx.analysis.rating[id.index()],
                })
                .collect();
        }
        let outcomes: Vec<(usize, crate::node::StepOutcome)> = phases.measure("step", || {
            idx.iter()
                .map(|&ni| {
                    let mut node_rng = seeded(derive(cfg.seed, (round << 24) ^ ni as u64));
                    let out = node_step_pooled(
                        &nodes[ni],
                        &ctx,
                        &scratch,
                        cfg,
                        &mut node_rng,
                        Some(&mut eval[ni]),
                    );
                    (ni, out)
                })
                .collect()
        });
        drop(ctx);
        // Round barrier: commit every accepted publication through the
        // write lock, exactly like the free-running workers do.
        let mut published = 0;
        let mut malicious_published = 0;
        let mut rejected = 0u64;
        phases.measure("publish", || {
            for (ni, out) in outcomes {
                let mut accepted = false;
                let mut parents: Vec<u32> = Vec::new();
                match out.publish {
                    None => {
                        rejected += 1;
                        discarded += 1;
                    }
                    Some(p) => {
                        if nodes[ni].is_malicious(round) {
                            malicious_published += 1;
                        }
                        parents = p.parents.iter().map(|id| id.index() as u32).collect();
                        let mut guard = ledger.write();
                        guard
                            .add_meta(Arc::new(p.params), p.parents, ni as u64, round)
                            .expect("parents come from a snapshot prefix");
                        let len = guard.len();
                        drop(guard);
                        events.push(PublishEvent {
                            worker: 0,
                            node: ni,
                            tangle_len: len,
                            snapshot_len,
                        });
                        published += 1;
                        accepted = true;
                    }
                }
                tel.emit(|| {
                    Event::Step(StepEvent {
                        round,
                        node: ni as u64,
                        accepted,
                        parents,
                        new_loss: out.new_loss,
                        reference_loss: out.reference_loss,
                    })
                });
            }
        });
        let guard = ledger.read();
        let tips = guard.tip_count();
        let tangle_len = guard.len() as u64;
        drop(guard);
        tel.count("sim.published", published as u64);
        tel.count("sim.rejected", rejected);
        if tel.enabled() {
            let walk_count = tel.counter_value("tangle.walks");
            let (_, walk_len_sum) = tel.histogram_totals("tangle.walk_len");
            let phase_us = phases.finish();
            tel.emit(|| {
                Event::Round(RoundEvent {
                    round,
                    sampled: idx.len() as u64,
                    published: published as u64,
                    rejected,
                    malicious_published: malicious_published as u64,
                    lost_publications: 0,
                    tip_count: tips as u64,
                    tangle_len,
                    reference: reference_entries,
                    walk_count,
                    walk_len_sum,
                    phase_us,
                })
            });
        }
        stats.push(crate::sim::RoundStats {
            round,
            sampled: idx.len(),
            published,
            malicious_published,
            tips,
        });
    }
    (
        AsyncRun {
            tangle: ledger.into_inner(),
            events,
            discarded,
            killed: 0,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TangleHyperParams;
    use feddata::blobs::{self, BlobsConfig};
    use tinynn::rng::seeded as tseed;

    fn nodes() -> Vec<Node> {
        let ds = blobs::generate(
            &BlobsConfig {
                users: 8,
                samples_per_user: (24, 30),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            13,
        );
        ds.clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect()
    }

    fn build() -> Sequential {
        tinynn::zoo::mlp(8, &[12], 4, &mut tseed(5))
    }

    fn cfg() -> SimConfig {
        SimConfig {
            nodes_per_round: 4,
            lr: 0.15,
            batch_size: 8,
            train_chunks: 1,
            train_parallel: true,
            seed: 21,
            hyper: TangleHyperParams {
                confidence_samples: 6,
                ..TangleHyperParams::basic()
            },
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_worker_reaches_target_deterministically() {
        let ns = nodes();
        let a = run_async(&ns, &cfg(), build, 1, 12);
        let b = run_async(&ns, &cfg(), build, 1, 12);
        assert!(a.tangle.len() >= 12);
        assert_eq!(a.tangle.len(), b.tangle.len());
        assert_eq!(a.events.len(), b.events.len());
        // commit order identical under one worker
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.tangle_len, y.tangle_len);
        }
    }

    #[test]
    fn multi_worker_reaches_target() {
        let ns = nodes();
        let run = run_async(&ns, &cfg(), build, 3, 15);
        assert!(run.tangle.len() >= 15);
        // every event recorded a consistent snapshot
        for e in &run.events {
            assert!(e.snapshot_len < e.tangle_len);
        }
    }

    #[test]
    fn events_track_all_publications() {
        let ns = nodes();
        let run = run_async(&ns, &cfg(), build, 2, 10);
        // genesis + events = ledger size (no other writer exists)
        assert_eq!(run.events.len() + 1, run.tangle.len());
    }

    #[test]
    fn eval_cache_on_and_off_are_bit_identical_single_worker() {
        // With one worker the async run is fully deterministic, so the
        // eval cache must be invisible: same ledger structure, same commit
        // order, byte-identical telemetry JSONL (eval_cache.* counters
        // never reach the event stream).
        let ns = nodes();
        let mut c = cfg();
        c.hyper.tip_validation = true;
        c.hyper.sample_size = 6;
        // The bias path probes every transaction per step, so a node's
        // second activation is guaranteed to hit its cache.
        c.hyper.accuracy_bias = 0.5;
        let dir = std::env::temp_dir();
        let run = |eval: bool, path: &std::path::Path| {
            let sink = lt_telemetry::JsonlSink::create(path).expect("create jsonl");
            let tel = lt_telemetry::Telemetry::new(sink);
            let out = run_async_faulty_tuned(
                &ns,
                &c,
                build,
                1,
                14,
                tel.clone(),
                &WorkerFaultPlan::default(),
                &AsyncTuning {
                    eval_cache: eval,
                    ..AsyncTuning::default()
                },
            );
            if eval {
                assert!(
                    tel.counter_value("eval_cache.hits") > 0,
                    "the memoized run must serve hits"
                );
            } else {
                assert_eq!(tel.counter_value("eval_cache.hits"), 0);
            }
            let structure: Vec<(u64, Vec<u32>)> = out
                .tangle
                .transactions()
                .iter()
                .map(|tx| {
                    (
                        tx.issuer,
                        tx.parents.iter().map(|p| p.index() as u32).collect(),
                    )
                })
                .collect();
            let order: Vec<(usize, usize)> =
                out.events.iter().map(|e| (e.node, e.tangle_len)).collect();
            let bytes = std::fs::read(path).expect("read jsonl");
            let _ = std::fs::remove_file(path);
            (structure, order, bytes)
        };
        let on = run(true, &dir.join("lt_async_eval_on.jsonl"));
        let off = run(false, &dir.join("lt_async_eval_off.jsonl"));
        assert_eq!(on.0, off.0, "ledger structure must match");
        assert_eq!(on.1, off.1, "commit order must match");
        assert!(!on.2.is_empty());
        assert_eq!(on.2, off.2, "telemetry JSONL must be byte-identical");
    }

    #[test]
    fn parallel_training_on_and_off_are_bit_identical_single_worker() {
        // Same guarantee as the sync sim: pooled gradient chunks are a
        // pure execution strategy, so a single-worker async run lands on
        // the same ledger and commit order with `train_parallel` on or off.
        let ns = nodes();
        let mut c = cfg();
        c.train_chunks = 4;
        let run = |parallel: bool| {
            let mut c = c.clone();
            c.train_parallel = parallel;
            let out = run_async(&ns, &c, build, 1, 14);
            let structure: Vec<(u64, Vec<u32>)> = out
                .tangle
                .transactions()
                .iter()
                .map(|tx| {
                    (
                        tx.issuer,
                        tx.parents.iter().map(|p| p.index() as u32).collect(),
                    )
                })
                .collect();
            let order: Vec<(usize, usize)> =
                out.events.iter().map(|e| (e.node, e.tangle_len)).collect();
            (structure, order)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0, off.0, "ledger structure must match");
        assert_eq!(on.1, off.1, "commit order must match");
    }

    #[test]
    fn worker_kills_discard_finished_work_deterministically() {
        let ns = nodes();
        let plan = WorkerFaultPlan {
            kills: vec![(0, 2), (0, 5)],
        };
        let run = |plan: &WorkerFaultPlan| {
            run_async_faulty(
                &ns,
                &cfg(),
                build,
                1,
                10,
                lt_telemetry::Telemetry::disabled(),
                plan,
            )
        };
        let a = run(&plan);
        assert_eq!(a.killed, 2, "both scheduled kills must fire");
        // killed steps published nothing, so the invariant still holds
        assert_eq!(a.events.len() + 1, a.tangle.len());
        assert!(a.tangle.len() >= 10);
        // same plan, same trace
        let b = run(&plan);
        assert_eq!(a.tangle.len(), b.tangle.len());
        assert_eq!(a.killed, b.killed);
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.tangle_len, y.tangle_len);
        }
    }

    #[test]
    fn empty_fault_plan_matches_unfaulted_run() {
        let ns = nodes();
        let plain = run_async(&ns, &cfg(), build, 1, 10);
        let faulty = run_async_faulty(
            &ns,
            &cfg(),
            build,
            1,
            10,
            lt_telemetry::Telemetry::disabled(),
            &WorkerFaultPlan::default(),
        );
        assert_eq!(faulty.killed, 0);
        assert_eq!(plain.tangle.len(), faulty.tangle.len());
        for (x, y) in plain.events.iter().zip(&faulty.events) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.tangle_len, y.tangle_len);
        }
    }

    #[test]
    fn kills_are_observable_in_telemetry() {
        let ns = nodes();
        let tel = lt_telemetry::Telemetry::new(lt_telemetry::NoopSink);
        let run = run_async_faulty(
            &ns,
            &cfg(),
            build,
            1,
            8,
            tel.clone(),
            &WorkerFaultPlan {
                kills: vec![(0, 3)],
            },
        );
        assert_eq!(run.killed, 1);
        assert_eq!(tel.counter_value("fault.worker_kill"), 1);
        assert_eq!(tel.counter_value("fault.worker_respawn"), 1);
    }
}
