//! Hyperparameters of the learning tangle.

use serde::{Deserialize, Serialize};

/// How transaction confidence is estimated from the Monte-Carlo walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfidenceMode {
    /// The paper's §III-A procedure: count how often each transaction is
    /// *hit on the walk path* and divide by the sampling rounds.
    WalkHit,
    /// IOTA's convention: the fraction of sampled tips whose past cone
    /// (directly or indirectly) approves the transaction. Dominates
    /// WalkHit pointwise and is less noisy off the main walk path.
    Approval,
}

/// Tangle-learning hyperparameters (the quantities swept in the paper's
/// Table II and fixed for the attack experiments in §V-B).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TangleHyperParams {
    /// `n`: number of tips averaged as the training base and approved by
    /// the published transaction (paper: 2, optimized: 3).
    pub num_tips: usize,
    /// Number of random-walk samples drawn when choosing candidate tips.
    /// With [`Self::tip_validation`] enabled, candidates are validated on
    /// local data and the best `num_tips` are kept (§III-E). Without it,
    /// the first `num_tips` walks are used directly (basic Algorithm 2).
    pub sample_size: usize,
    /// Number of top `confidence × rating` transactions averaged into the
    /// reference model (paper Table II: 1, 2, 10 or 50).
    pub reference_avg: usize,
    /// Monte-Carlo walks used to estimate transaction confidence (the paper
    /// sets this to the number of active nodes per round).
    pub confidence_samples: usize,
    /// Randomness parameter α of the weighted random walk.
    pub alpha: f64,
    /// Confidence estimator (paper's walk-hit counting vs IOTA's
    /// approval-based convention).
    pub confidence_mode: ConfidenceMode,
    /// Enable the §III-E defense: validate each sampled candidate tip's
    /// model locally and average the best-performing ones.
    pub tip_validation: bool,
    /// Windowed tip selection (§IV): start walks from particles whose
    /// depth lies in `[w, 2w]` instead of the genesis, as the original
    /// tangle authors propose for scalability. `None` = walk from genesis
    /// (the paper prototype's behaviour).
    pub window: Option<u32>,
    /// §VI outlook: weight the random walk by local model performance.
    /// When > 0, each node evaluates every transaction's model on its local
    /// validation data and adds `accuracy_bias · accuracy` (in
    /// cumulative-weight units) to the walk weights. Expensive — intended
    /// for small networks / the sub-tangle clustering study.
    pub accuracy_bias: f64,
    /// Run each node's `sample_size` tip-selection walks as a rayon batch
    /// instead of a serial loop. Every walk draws from its own RNG stream
    /// derived from the node RNG, so the result is bit-identical either
    /// way (pinned by the determinism tests) — the flag only chooses the
    /// execution strategy.
    pub parallel_walks: bool,
}

impl TangleHyperParams {
    /// The paper's basic configuration: "2 selected tips and a single model
    /// chosen as consensus model", no candidate validation.
    pub fn basic() -> Self {
        Self {
            num_tips: 2,
            sample_size: 2,
            reference_avg: 1,
            confidence_samples: 35,
            alpha: 0.05,
            confidence_mode: ConfidenceMode::WalkHit,
            tip_validation: false,
            window: None,
            accuracy_bias: 0.0,
            parallel_walks: true,
        }
    }

    /// The paper's hyperparameter-optimized configuration: "nodes selected
    /// 3 tips and used a reference model averaged from 10 models".
    pub fn optimized() -> Self {
        Self {
            num_tips: 3,
            sample_size: 3,
            reference_avg: 10,
            confidence_samples: 35,
            alpha: 0.05,
            confidence_mode: ConfidenceMode::WalkHit,
            tip_validation: false,
            window: None,
            accuracy_bias: 0.0,
            parallel_walks: true,
        }
    }

    /// The §V-B attack-experiment configuration: sampling rounds for both
    /// consensus and parent selection equal to the active nodes per round,
    /// with local candidate validation enabled.
    pub fn robust(nodes_per_round: usize) -> Self {
        Self {
            num_tips: 2,
            sample_size: nodes_per_round,
            reference_avg: 10,
            confidence_samples: nodes_per_round,
            alpha: 0.05,
            confidence_mode: ConfidenceMode::WalkHit,
            tip_validation: true,
            window: None,
            accuracy_bias: 0.0,
            parallel_walks: true,
        }
    }
}

/// Simulated network conditions (the paper's §VI outlook: "considering
/// faults introduced by real-world network conditions").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Maximum propagation delay in rounds: each participating node sees
    /// the ledger as of `d` rounds ago, `d ~ U(0..=max_delay_rounds)`
    /// (0 = the usual one-round visibility barrier).
    pub max_delay_rounds: u64,
    /// Probability that a node's publication is lost in transit and never
    /// reaches the ledger.
    pub publish_loss: f64,
}

/// Full simulation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Active (sampled) nodes per round.
    pub nodes_per_round: usize,
    /// Local SGD epochs per participation (paper Table I: 1).
    pub local_epochs: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Gradient-accumulation chunks per training batch (1 = single-shot
    /// backward). Chunking changes the float summation order once, but the
    /// result is a function of the chunk count alone — never of how the
    /// chunks are executed.
    pub train_chunks: usize,
    /// Run gradient chunks on the worker pool. Guaranteed bit-identical to
    /// serial execution (fixed-order tree reduction), so this is purely a
    /// wall-clock knob.
    pub train_parallel: bool,
    /// Fraction of nodes whose held-out data is pooled for evaluation
    /// (paper: 10%).
    pub eval_fraction: f32,
    /// Master seed: all node sampling, walks and shuffles derive from it.
    pub seed: u64,
    /// Tangle hyperparameters.
    pub hyper: TangleHyperParams,
    /// Optional lossy-network simulation; `None` = ideal network with the
    /// standard one-round visibility barrier.
    pub network: Option<NetworkModel>,
}

fn default_train_chunks() -> usize {
    1
}

fn default_train_parallel() -> bool {
    true
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes_per_round: 10,
            local_epochs: 1,
            lr: 0.06,
            batch_size: 16,
            train_chunks: default_train_chunks(),
            train_parallel: default_train_parallel(),
            eval_fraction: 0.1,
            seed: 0,
            hyper: TangleHyperParams::basic(),
            network: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let b = TangleHyperParams::basic();
        assert_eq!((b.num_tips, b.reference_avg), (2, 1));
        assert!(!b.tip_validation);
        let o = TangleHyperParams::optimized();
        assert_eq!((o.num_tips, o.reference_avg), (3, 10));
        let r = TangleHyperParams::robust(35);
        assert_eq!(r.sample_size, 35);
        assert_eq!(r.confidence_samples, 35);
        assert!(r.tip_validation);
    }

    #[test]
    fn config_serializes() {
        let cfg = SimConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes_per_round, cfg.nodes_per_round);
        assert_eq!(back.hyper.num_tips, cfg.hyper.num_tips);
    }
}
