//! The round-based learning-tangle simulator used for every paper
//! experiment.
//!
//! Training is organized in rounds for comparability with FedAvg (paper
//! §IV): each round samples `nodes_per_round` nodes, all of them see the
//! tangle *as of the end of the previous round*, run Algorithm 2
//! concurrently, and their publications are appended together at the round
//! barrier.

use crate::config::SimConfig;
use crate::dp::DpConfig;
use crate::eval_cache::{EvalCache, ScratchPool, DEFAULT_EVAL_CACHE_CAPACITY};
use crate::node::{node_step_pooled, ModelParams, Node, RoundContext};
use feddata::{ClientData, FederatedDataset};
use lt_telemetry::{Event, ReferenceEntry, RoundEvent, StepEvent, Telemetry};
use parking_lot::Mutex;
use rand::RngExt;
use rayon::prelude::*;
use std::sync::Arc;
use tangle_ledger::{AnalysisCache, Tangle, TangleView};
use tinynn::loss::predictions;
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// Statistics of one simulated round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// Round index (1-based).
    pub round: u64,
    /// Nodes sampled this round.
    pub sampled: usize,
    /// Transactions actually published.
    pub published: usize,
    /// Publications issued by nodes behaving maliciously this round.
    pub malicious_published: usize,
    /// Tip count after the round.
    pub tips: usize,
}

/// Result of a consensus-model evaluation.
#[derive(Clone, Copy, Debug)]
pub struct EvalResult {
    /// Accuracy on the pooled clean held-out data of the sampled clients.
    pub accuracy: f32,
    /// Cross-entropy loss on the same pool.
    pub loss: f32,
    /// Fraction of the reference transactions issued by nodes that were
    /// malicious when they published.
    pub reference_poisoned_fraction: f32,
}

/// A complete learning-tangle run: population, ledger, and configuration.
pub struct Simulation<'a> {
    nodes: Vec<Node>,
    tangle: Tangle<ModelParams>,
    /// Scratch models of the shared architecture, reused across rounds and
    /// workers (params are fully assigned before every use).
    scratch: ScratchPool<'a>,
    cfg: SimConfig,
    dp: Option<DpConfig>,
    round: u64,
    /// `round_end_len[r]` = ledger size at the end of round `r`
    /// (`[0]` = 1, the genesis). Used to reconstruct stale views under the
    /// [`crate::config::NetworkModel`].
    round_end_len: Vec<usize>,
    /// Publications dropped by the lossy network so far.
    lost_publications: u64,
    /// Incremental analysis cache for the shared round context (`None` =
    /// recompute the batch DPs every round). Produces bit-identical runs
    /// either way; only the cost differs.
    cache: Option<AnalysisCache>,
    /// Per-node evaluation memoization (`None` = re-run every forward
    /// pass). Like the analysis cache this is a pure optimization: entries
    /// are keyed by the chained history signature, probes consume no
    /// randomness, and runs are bit-identical with it on or off.
    eval: Option<Vec<Mutex<EvalCache>>>,
    /// Observability handle; disabled (no-op) unless attached.
    telemetry: Telemetry,
}

/// One fresh eval cache per node.
fn fresh_eval_caches(n: usize) -> Vec<Mutex<EvalCache>> {
    (0..n)
        .map(|_| Mutex::new(EvalCache::new(DEFAULT_EVAL_CACHE_CAPACITY)))
        .collect()
}

impl<'a> Simulation<'a> {
    /// Create a simulation over a federated dataset. The genesis
    /// transaction carries one fresh model initialization — the shared
    /// starting point, like the initial model a FedAvg server distributes.
    pub fn new(
        data: FederatedDataset,
        cfg: SimConfig,
        build: impl Fn() -> Sequential + Sync + 'a,
    ) -> Self {
        let genesis = Arc::new(ParamVec::from_model(&build()));
        let nodes: Vec<Node> = data
            .clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect();
        let tangle = Tangle::new(genesis);
        Self {
            eval: Some(fresh_eval_caches(nodes.len())),
            nodes,
            cache: Some(AnalysisCache::new(&tangle)),
            tangle,
            scratch: ScratchPool::new(Box::new(build)),
            cfg,
            dp: None,
            round: 0,
            round_end_len: vec![1],
            lost_publications: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Publications dropped so far by the lossy-network model.
    pub fn lost_publications(&self) -> u64 {
        self.lost_publications
    }

    /// Attach an observability handle (builder style). Training rounds
    /// record metrics and emit [`Event`]s through it; evaluation helpers
    /// stay unobserved so counters reflect training work only.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach or replace the observability handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The current observability handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enable differential-privacy noise on all published parameters.
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Enable or disable the incremental analysis cache (on by default).
    /// Runs are bit-identical either way — the differential property tests
    /// pin cached weights/ratings/depths to the from-scratch DPs — so the
    /// only reason to disable it is to measure or test the fresh path.
    pub fn with_analysis_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| AnalysisCache::new(&self.tangle));
        self
    }

    /// Enable or disable per-node evaluation memoization (on by default).
    /// Runs are bit-identical either way — evaluations are pure in the
    /// parameters and data, and probes consume no randomness — so the only
    /// reason to disable it is to measure or test the uncached path.
    pub fn with_eval_cache(mut self, enabled: bool) -> Self {
        self.eval = enabled.then(|| fresh_eval_caches(self.nodes.len()));
        self
    }

    /// Resume from a persisted ledger (see [`crate::persist`]): the
    /// network keeps its full history; training continues from whatever
    /// consensus the saved tangle encodes. The restored transactions are
    /// attributed to one synthetic pre-resume round.
    ///
    /// # Panics
    /// Panics if the ledger's parameter dimension does not match the model
    /// architecture produced by `build`.
    pub fn resume(
        data: FederatedDataset,
        cfg: SimConfig,
        build: impl Fn() -> Sequential + Sync + 'a,
        tangle: Tangle<ModelParams>,
    ) -> Self {
        let expect = build().param_count();
        for tx in tangle.transactions() {
            assert_eq!(
                tx.payload.len(),
                expect,
                "persisted ledger does not match the model architecture"
            );
        }
        let nodes: Vec<Node> = data
            .clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect();
        let len = tangle.len();
        Self {
            eval: Some(fresh_eval_caches(nodes.len())),
            nodes,
            cache: Some(AnalysisCache::new(&tangle)),
            tangle,
            scratch: ScratchPool::new(Box::new(build)),
            cfg,
            dp: None,
            round: 1,
            round_end_len: vec![1, len],
            lost_publications: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The node population (e.g. for attack assignment).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// The node population, read-only.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The ledger.
    pub fn tangle(&self) -> &Tangle<ModelParams> {
        &self.tangle
    }

    /// Rounds completed.
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Run one round.
    pub fn round(&mut self) -> RoundStats {
        self.round += 1;
        let round = self.round;
        let mut rng = seeded(derive(self.cfg.seed, round));
        // Sample active nodes.
        let n = self.nodes.len();
        let k = self.cfg.nodes_per_round.clamp(1, n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        self.run_round(round, idx)
    }

    /// Scriptable activation-order hook: run the next round activating
    /// exactly `idx` (in that order) instead of the seeded Fisher–Yates
    /// sample. Everything downstream of node selection — context seeds,
    /// per-node RNG streams, the publish barrier, telemetry — is identical
    /// to [`Self::round`], so a scripted run is bit-reproducible and can be
    /// compared step-for-step against other executors driven through the
    /// same schedule (the conformance harness's differential oracle).
    ///
    /// # Panics
    /// Panics if `idx` is empty or names a node outside the population.
    pub fn round_with_nodes(&mut self, idx: &[usize]) -> RoundStats {
        assert!(!idx.is_empty(), "a round must activate at least one node");
        assert!(
            idx.iter().all(|&ni| ni < self.nodes.len()),
            "scripted activation out of range"
        );
        self.round += 1;
        let round = self.round;
        self.run_round(round, idx.to_vec())
    }

    /// The body shared by [`Self::round`] and [`Self::round_with_nodes`]:
    /// one full round over an already-chosen activation list.
    fn run_round(&mut self, round: u64, idx: Vec<usize>) -> RoundStats {
        let k = idx.len();
        // All sampled nodes run Algorithm 2. On an ideal network they share
        // one round context (everyone sees the end of the previous round);
        // under a NetworkModel each node reconstructs its own stale view.
        let tel = self.telemetry.clone();
        let mut phases = tel.phases();
        let mut reference_entries: Vec<ReferenceEntry> = Vec::new();
        let outcomes: Vec<(usize, crate::node::StepOutcome)> = match self.cfg.network {
            None => {
                // Split the borrows so the cache can be refreshed while the
                // context keeps a shared reference to the tangle.
                let (tangle, cache) = (&self.tangle, &mut self.cache);
                let ctx_seed = derive(self.cfg.seed, round ^ 0xC0FF_EE00);
                let ctx = phases.measure("analysis", || match cache {
                    Some(cache) => RoundContext::build_with_cache(
                        tangle,
                        cache,
                        &self.cfg,
                        round,
                        ctx_seed,
                        tel.clone(),
                    ),
                    None => RoundContext::build_observed(
                        tangle,
                        &self.cfg,
                        round,
                        ctx_seed,
                        tel.clone(),
                    ),
                });
                if tel.enabled() {
                    reference_entries = ctx
                        .reference_ids
                        .iter()
                        .map(|id| ReferenceEntry {
                            tx: id.index() as u32,
                            confidence: ctx.confidence[id.index()],
                            rating: ctx.analysis.rating[id.index()],
                        })
                        .collect();
                }
                let eval = &self.eval;
                phases.measure("step", || {
                    idx.par_iter()
                        .map(|&ni| {
                            let mut node_rng =
                                seeded(derive(self.cfg.seed, (round << 24) ^ ni as u64));
                            let mut guard = eval.as_ref().map(|caches| caches[ni].lock());
                            let out = node_step_pooled(
                                &self.nodes[ni],
                                &ctx,
                                &self.scratch,
                                &self.cfg,
                                &mut node_rng,
                                guard.as_deref_mut(),
                            );
                            (ni, out)
                        })
                        .collect()
                })
            }
            Some(net) => phases.measure("step", || {
                let eval = &self.eval;
                idx.par_iter()
                    .map(|&ni| {
                        let mut node_rng = seeded(derive(self.cfg.seed, (round << 24) ^ ni as u64));
                        let delay = node_rng.random_range(0..=net.max_delay_rounds);
                        let view_round = (round - 1).saturating_sub(delay) as usize;
                        // Zero-copy stale view: O(1), no payload clones.
                        let view = TangleView::new(&self.tangle, self.round_end_len[view_round]);
                        let ctx = RoundContext::build_observed(
                            &view,
                            &self.cfg,
                            round,
                            derive(self.cfg.seed, (round ^ 0xC0FF_EE00) ^ (ni as u64) << 32),
                            tel.clone(),
                        );
                        let mut guard = eval.as_ref().map(|caches| caches[ni].lock());
                        let out = node_step_pooled(
                            &self.nodes[ni],
                            &ctx,
                            &self.scratch,
                            &self.cfg,
                            &mut node_rng,
                            guard.as_deref_mut(),
                        );
                        (ni, out)
                    })
                    .collect()
            }),
        };
        // Round barrier: publish everything at once.
        let mut published = 0;
        let mut malicious_published = 0;
        let mut rejected = 0u64;
        let mut dp_rng = seeded(derive(self.cfg.seed, round ^ 0xD11F_F00D));
        let mut loss_rng = seeded(derive(self.cfg.seed, round ^ 0x1057_0000));
        phases.measure("publish", || {
            for (ni, out) in outcomes {
                let mut accepted = false;
                let mut parents: Vec<u32> = Vec::new();
                match out.publish {
                    None => rejected += 1,
                    Some(mut p) => {
                        let lost = self.cfg.network.is_some_and(|net| {
                            net.publish_loss > 0.0
                                && loss_rng.random_range(0.0..1.0) < net.publish_loss
                        });
                        if lost {
                            self.lost_publications += 1;
                            tel.count("sim.lost_publications", 1);
                        } else {
                            if let Some(dp) = &self.dp {
                                // Privatize relative to the averaged parent base.
                                let bases: Vec<&ParamVec> = p
                                    .parents
                                    .iter()
                                    .map(|id| self.tangle.get(*id).payload.as_ref())
                                    .collect();
                                let base = ParamVec::average(&bases);
                                p.params = crate::dp::privatize(&p.params, &base, dp, &mut dp_rng);
                            }
                            if self.nodes[ni].is_malicious(round) {
                                malicious_published += 1;
                            }
                            parents = p.parents.iter().map(|id| id.index() as u32).collect();
                            self.tangle
                                .add_meta(Arc::new(p.params), p.parents, ni as u64, round)
                                .expect("parents come from the same tangle");
                            published += 1;
                            accepted = true;
                        }
                    }
                }
                tel.emit(|| {
                    Event::Step(StepEvent {
                        round,
                        node: ni as u64,
                        accepted,
                        parents,
                        new_loss: out.new_loss,
                        reference_loss: out.reference_loss,
                    })
                });
            }
        });
        self.round_end_len.push(self.tangle.len());
        let tips = self.tangle.tip_count();
        tel.count("sim.published", published as u64);
        tel.count("sim.rejected", rejected);
        if tel.enabled() {
            let walk_count = tel.counter_value("tangle.walks");
            let (_, walk_len_sum) = tel.histogram_totals("tangle.walk_len");
            let phase_us = phases.finish();
            let tangle_len = self.tangle.len() as u64;
            let lost_publications = self.lost_publications;
            tel.emit(|| {
                Event::Round(RoundEvent {
                    round,
                    sampled: k as u64,
                    published: published as u64,
                    rejected,
                    malicious_published: malicious_published as u64,
                    lost_publications,
                    tip_count: tips as u64,
                    tangle_len,
                    reference: reference_entries,
                    walk_count,
                    walk_len_sum,
                    phase_us,
                })
            });
        }
        RoundStats {
            round,
            sampled: k,
            published,
            malicious_published,
            tips,
        }
    }

    /// Compute the current consensus parameters (Algorithm 1 over the
    /// latest snapshot, averaging `reference_avg` transactions).
    pub fn consensus_params(&self) -> ParamVec {
        let ctx = RoundContext::build(
            &self.tangle,
            &self.cfg,
            self.round + 1,
            derive(self.cfg.seed, (self.round + 1) ^ 0xC0FF_EE00),
        );
        ctx.reference
    }

    /// Ids and poisoned-issuer fraction of the current reference set.
    fn reference_info(&self) -> (ParamVec, f32) {
        let ctx = RoundContext::build(
            &self.tangle,
            &self.cfg,
            self.round + 1,
            derive(self.cfg.seed, (self.round + 1) ^ 0xC0FF_EE00),
        );
        let mut poisoned = 0usize;
        for id in &ctx.reference_ids {
            let tx = self.tangle.get(*id);
            if tx.issuer != u64::MAX {
                let node = &self.nodes[tx.issuer as usize];
                if node.is_malicious(tx.round) {
                    poisoned += 1;
                }
            }
        }
        let frac = poisoned as f32 / ctx.reference_ids.len().max(1) as f32;
        (ctx.reference, frac)
    }

    /// Pool the *clean* held-out data of an `eval_fraction` sample of all
    /// nodes (the paper validates "using the test datasets of a random
    /// selection of 10% of all nodes").
    fn eval_pool(&self, eval_seed: u64) -> Vec<&ClientData> {
        eval_pool_indices(
            self.cfg.seed,
            eval_seed,
            self.nodes.len(),
            self.cfg.eval_fraction,
        )
        .into_iter()
        .map(|i| &self.nodes[i].data)
        .collect()
    }

    /// Evaluate the consensus model.
    pub fn evaluate(&self, eval_seed: u64) -> EvalResult {
        let (reference, poisoned_frac) = self.reference_info();
        let clients = self.eval_pool(eval_seed);
        let mut model = self.scratch.take();
        let (loss, accuracy) = fedavg::evaluate_params(&mut model, &reference, &clients);
        self.scratch.put(model);
        EvalResult {
            accuracy,
            loss,
            reference_poisoned_fraction: poisoned_frac,
        }
    }

    /// Backdoor attack-success rate: stamp the trigger onto every clean
    /// evaluation image whose true label differs from `target` and report
    /// the fraction the consensus model then classifies as `target`.
    /// Requires image data (`[N, C, H, W]`).
    pub fn backdoor_success(&self, target: u32, patch: usize, eval_seed: u64) -> f32 {
        let (reference, _) = self.reference_info();
        let clients = self.eval_pool(eval_seed);
        let mut model = self.scratch.take();
        reference.assign_to(&mut model);
        let mut total = 0usize;
        let mut hit = 0usize;
        for c in clients {
            if c.test_len() == 0 {
                continue;
            }
            let mut triggered = c.test_x.clone();
            feddata::poison::apply_trigger(&mut triggered, patch, 1.0);
            let preds = predictions(&model.predict(&triggered));
            for (p, &t) in preds.iter().zip(&c.test_y) {
                if t != target {
                    total += 1;
                    if *p == target {
                        hit += 1;
                    }
                }
            }
        }
        self.scratch.put(model);
        if total == 0 {
            0.0
        } else {
            hit as f32 / total as f32
        }
    }

    /// Fig. 6b metric: among evaluation samples whose true label is `src`,
    /// the fraction the consensus model predicts as `dst`.
    pub fn target_misclassification(&self, src: u32, dst: u32, eval_seed: u64) -> f32 {
        let (reference, _) = self.reference_info();
        let clients = self.eval_pool(eval_seed);
        let mut model = self.scratch.take();
        reference.assign_to(&mut model);
        let mut total = 0usize;
        let mut hit = 0usize;
        for c in clients {
            if c.test_len() == 0 {
                continue;
            }
            let logits = model.predict(&c.test_x);
            let preds = predictions(&logits);
            for (p, &t) in preds.iter().zip(&c.test_y) {
                if t == src {
                    total += 1;
                    if *p == dst {
                        hit += 1;
                    }
                }
            }
        }
        self.scratch.put(model);
        if total == 0 {
            0.0
        } else {
            hit as f32 / total as f32
        }
    }
}

/// Indices of the evaluation pool: an `eval_fraction` sample of `n`
/// nodes, shuffled by an RNG derived from `(seed, eval_seed)`. Factored
/// out of [`Simulation::evaluate`] so every executor (round, async,
/// gossip, networked daemon) draws the *same* pool and consensus
/// evaluations agree bit-for-bit.
pub fn eval_pool_indices(seed: u64, eval_seed: u64, n: usize, eval_fraction: f32) -> Vec<usize> {
    let mut rng = seeded(derive(seed, 0x5EED_0000 ^ eval_seed));
    let k = (((n as f32) * eval_fraction).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{assign_malicious, AttackKind};
    use crate::config::TangleHyperParams;
    use feddata::blobs::{self, BlobsConfig};
    use tinynn::rng::seeded as tseed;

    fn dataset(users: usize) -> FederatedDataset {
        blobs::generate(
            &BlobsConfig {
                users,
                samples_per_user: (24, 36),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            77,
        )
    }

    fn build() -> Sequential {
        tinynn::zoo::mlp(8, &[12], 4, &mut tseed(5))
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            nodes_per_round: 5,
            lr: 0.15,
            local_epochs: 1,
            batch_size: 8,
            train_chunks: 1,
            train_parallel: true,
            eval_fraction: 0.5,
            seed: 3,
            hyper: TangleHyperParams {
                confidence_samples: 8,
                ..TangleHyperParams::basic()
            },
            network: None,
        }
    }

    #[test]
    fn tangle_learning_converges_on_blobs() {
        let mut sim = Simulation::new(dataset(10), quick_cfg(), build);
        let acc0 = sim.evaluate(0).accuracy;
        for _ in 0..20 {
            sim.round();
        }
        let acc1 = sim.evaluate(0).accuracy;
        assert!(
            acc1 > acc0 + 0.2,
            "tangle learning should improve: {acc0} -> {acc1}"
        );
        assert!(sim.tangle().len() > 10, "transactions should be published");
    }

    #[test]
    fn round_stats_are_sane() {
        let mut sim = Simulation::new(dataset(8), quick_cfg(), build);
        let s = sim.round();
        assert_eq!(s.round, 1);
        assert_eq!(s.sampled, 5);
        assert!(s.published <= s.sampled);
        assert_eq!(s.malicious_published, 0);
        assert!(s.tips >= 1);
    }

    #[test]
    fn tip_count_stays_bounded() {
        // "the combination of averaging and training ensures that the number
        // of tips in the network remains constant given a fixed rate of
        // incoming updates" (§III-C).
        let mut sim = Simulation::new(dataset(12), quick_cfg(), build);
        for _ in 0..15 {
            sim.round();
        }
        assert!(
            sim.tangle().tip_count() <= 3 * sim.config().nodes_per_round,
            "tips exploded: {}",
            sim.tangle().tip_count()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut cfg = quick_cfg();
            cfg.seed = seed;
            let mut sim = Simulation::new(dataset(8), cfg, build);
            for _ in 0..5 {
                sim.round();
            }
            (sim.tangle().len(), sim.evaluate(0).accuracy)
        };
        assert_eq!(run(9), run(9));
    }

    /// Full fingerprint of a short observed run: per-round stats, the
    /// ledger structure (issuer + parent indices per tx), the consensus
    /// accuracy, and the raw telemetry JSONL bytes.
    type RunFingerprint = (Vec<RoundStats>, Vec<(u64, Vec<u32>)>, f32, Vec<u8>);

    fn fingerprint(cfg: SimConfig, cache: bool, path: &std::path::Path) -> RunFingerprint {
        let sink = lt_telemetry::JsonlSink::create(path).expect("create jsonl");
        let mut sim = Simulation::new(dataset(10), cfg, build)
            .with_analysis_cache(cache)
            .with_telemetry(Telemetry::new(sink));
        let stats: Vec<RoundStats> = (0..6).map(|_| sim.round()).collect();
        if cache {
            assert_eq!(
                sim.telemetry().counter_value("tangle.cache_hits"),
                6,
                "every round context must be served from the cache"
            );
            assert_eq!(sim.telemetry().counter_value("tangle.cache_rebuilds"), 0);
        }
        let structure = sim
            .tangle()
            .transactions()
            .iter()
            .map(|tx| {
                (
                    tx.issuer,
                    tx.parents.iter().map(|p| p.index() as u32).collect(),
                )
            })
            .collect();
        let accuracy = sim.evaluate(0).accuracy;
        let bytes = std::fs::read(path).expect("read jsonl");
        let _ = std::fs::remove_file(path);
        (stats, structure, accuracy, bytes)
    }

    #[test]
    fn cache_on_and_off_are_bit_identical() {
        // The cache must be a pure optimization: same seed with the cache
        // enabled and disabled yields the same rounds, ledger, accuracy,
        // and telemetry bytes — only `tangle.cache_*` metrics may differ
        // (they never reach the JSONL event stream).
        let dir = std::env::temp_dir();
        let on = fingerprint(quick_cfg(), true, &dir.join("lt_cache_on.jsonl"));
        let off = fingerprint(quick_cfg(), false, &dir.join("lt_cache_off.jsonl"));
        assert_eq!(on.0, off.0, "RoundStats must match");
        assert_eq!(on.1, off.1, "ledger structure must match");
        assert_eq!(on.2, off.2, "accuracy must match");
        assert!(!on.3.is_empty(), "telemetry must produce output");
        assert_eq!(on.3, off.3, "telemetry JSONL must be byte-identical");
    }

    /// Like [`fingerprint`], toggling the *eval* cache instead of the
    /// analysis cache, and asserting the cached run actually memoizes.
    fn fingerprint_eval(cfg: SimConfig, eval: bool, path: &std::path::Path) -> RunFingerprint {
        let sink = lt_telemetry::JsonlSink::create(path).expect("create jsonl");
        let mut sim = Simulation::new(dataset(10), cfg, build)
            .with_eval_cache(eval)
            .with_telemetry(Telemetry::new(sink));
        let stats: Vec<RoundStats> = (0..6).map(|_| sim.round()).collect();
        if eval {
            assert!(
                sim.telemetry().counter_value("eval_cache.hits") > 0,
                "the memoized run must serve hits"
            );
        } else {
            assert_eq!(sim.telemetry().counter_value("eval_cache.hits"), 0);
            assert_eq!(sim.telemetry().counter_value("eval_cache.misses"), 0);
        }
        let structure = sim
            .tangle()
            .transactions()
            .iter()
            .map(|tx| {
                (
                    tx.issuer,
                    tx.parents.iter().map(|p| p.index() as u32).collect(),
                )
            })
            .collect();
        let accuracy = sim.evaluate(0).accuracy;
        let bytes = std::fs::read(path).expect("read jsonl");
        let _ = std::fs::remove_file(path);
        (stats, structure, accuracy, bytes)
    }

    #[test]
    fn eval_cache_on_and_off_are_bit_identical() {
        // Memoized evaluation must be a pure optimization: evaluations are
        // pure in (params, data) and probes consume no randomness, so the
        // same seed yields the same rounds, ledger, accuracy, and telemetry
        // bytes — only `eval_cache.*` metrics may differ (they never reach
        // the JSONL event stream).
        let mut cfg = quick_cfg();
        cfg.hyper.tip_validation = true;
        cfg.hyper.sample_size = 6;
        let dir = std::env::temp_dir();
        let on = fingerprint_eval(cfg.clone(), true, &dir.join("lt_eval_on.jsonl"));
        let off = fingerprint_eval(cfg, false, &dir.join("lt_eval_off.jsonl"));
        assert_eq!(on.0, off.0, "RoundStats must match");
        assert_eq!(on.1, off.1, "ledger structure must match");
        assert_eq!(on.2.to_bits(), off.2.to_bits(), "accuracy must match");
        assert!(!on.3.is_empty(), "telemetry must produce output");
        assert_eq!(on.3, off.3, "telemetry JSONL must be byte-identical");
    }

    #[test]
    fn eval_cache_on_and_off_are_bit_identical_accuracy_bias() {
        // The accuracy-bias path evaluates every transaction per step —
        // the heaviest cached surface.
        let mut cfg = quick_cfg();
        cfg.hyper.tip_validation = true;
        cfg.hyper.accuracy_bias = 0.5;
        let dir = std::env::temp_dir();
        let on = fingerprint_eval(cfg.clone(), true, &dir.join("lt_eval_on_b.jsonl"));
        let off = fingerprint_eval(cfg, false, &dir.join("lt_eval_off_b.jsonl"));
        assert_eq!(on.0, off.0);
        assert_eq!(on.1, off.1);
        assert_eq!(on.2.to_bits(), off.2.to_bits());
        assert_eq!(on.3, off.3);
    }

    #[test]
    fn parallel_training_on_and_off_are_bit_identical() {
        // `train_parallel` selects the execution strategy for gradient
        // chunks, nothing else: the fixed-order tree reduction makes the
        // pooled run land on the same rounds, ledger, accuracy, and
        // telemetry bytes as the serial one.
        let mut cfg = quick_cfg();
        cfg.train_chunks = 4;
        let dir = std::env::temp_dir();
        cfg.train_parallel = true;
        let on = fingerprint(cfg.clone(), false, &dir.join("lt_par_on.jsonl"));
        cfg.train_parallel = false;
        let off = fingerprint(cfg, false, &dir.join("lt_par_off.jsonl"));
        assert_eq!(on.0, off.0, "RoundStats must match");
        assert_eq!(on.1, off.1, "ledger structure must match");
        assert_eq!(on.2.to_bits(), off.2.to_bits(), "accuracy must match");
        assert!(!on.3.is_empty(), "telemetry must produce output");
        assert_eq!(on.3, off.3, "telemetry JSONL must be byte-identical");
    }

    #[test]
    fn eval_cache_on_and_off_are_bit_identical_delayed_network() {
        // Delayed-network mode runs nodes on zero-copy `TangleView`
        // prefixes; the view shares the base signature chain, so entries
        // written under a stale view serve under fresher ones — without
        // ever changing results.
        let mut cfg = quick_cfg();
        cfg.hyper.tip_validation = true;
        cfg.network = Some(crate::config::NetworkModel {
            max_delay_rounds: 3,
            publish_loss: 0.0,
        });
        let dir = std::env::temp_dir();
        let on = fingerprint_eval(cfg.clone(), true, &dir.join("lt_eval_on_d.jsonl"));
        let off = fingerprint_eval(cfg, false, &dir.join("lt_eval_off_d.jsonl"));
        assert_eq!(on.0, off.0, "RoundStats must match under delay");
        assert_eq!(on.1, off.1, "ledger structure must match under delay");
        assert_eq!(on.2.to_bits(), off.2.to_bits());
        assert_eq!(on.3, off.3, "telemetry JSONL must be byte-identical");
    }

    #[test]
    fn delayed_views_match_prefix_clone_semantics() {
        // The zero-copy view replaced an owned `prefix()` clone on this
        // path; the observable run must be exactly what the clone produced
        // (pinned by the structure fingerprint against the cache-off run,
        // which shares the view code — this guards determinism per seed).
        let mut cfg = quick_cfg();
        cfg.network = Some(crate::config::NetworkModel {
            max_delay_rounds: 5,
            publish_loss: 0.0,
        });
        let dir = std::env::temp_dir();
        let a = fingerprint_eval(cfg.clone(), true, &dir.join("lt_view_a.jsonl"));
        let b = fingerprint_eval(cfg, true, &dir.join("lt_view_b.jsonl"));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2.to_bits(), b.2.to_bits());
        assert_eq!(a.3, b.3);
    }

    #[test]
    fn cache_on_and_off_are_bit_identical_windowed() {
        // Windowed tip selection additionally consumes the cached depths.
        let mut cfg = quick_cfg();
        cfg.hyper.window = Some(3);
        let dir = std::env::temp_dir();
        let on = fingerprint(cfg.clone(), true, &dir.join("lt_cache_on_w.jsonl"));
        let off = fingerprint(cfg, false, &dir.join("lt_cache_off_w.jsonl"));
        assert_eq!(on.0, off.0);
        assert_eq!(on.1, off.1);
        assert_eq!(on.2, off.2);
        assert_eq!(on.3, off.3);
    }

    #[test]
    fn parallel_and_serial_walks_are_bit_identical() {
        // Each walk runs on its own derived RNG stream, so batching the
        // walks through rayon cannot change what they select.
        let mut cfg = quick_cfg();
        cfg.hyper.sample_size = 6;
        cfg.hyper.tip_validation = true;
        let dir = std::env::temp_dir();
        let mut par = cfg.clone();
        par.hyper.parallel_walks = true;
        let mut ser = cfg;
        ser.hyper.parallel_walks = false;
        let a = fingerprint(par, true, &dir.join("lt_walks_par.jsonl"));
        let b = fingerprint(ser, true, &dir.join("lt_walks_ser.jsonl"));
        assert_eq!(a.0, b.0, "RoundStats must match");
        assert_eq!(a.1, b.1, "ledger structure must match");
        assert_eq!(a.2, b.2, "accuracy must match");
        assert_eq!(a.3, b.3, "telemetry JSONL must be byte-identical");
    }

    #[test]
    fn random_poisoners_get_flagged_in_stats() {
        let mut sim = Simulation::new(dataset(10), quick_cfg(), build);
        assign_malicious(sim.nodes_mut(), 0.5, 0, AttackKind::RandomNoise, 1, |_| {
            None
        });
        let mut saw_malicious = false;
        for _ in 0..5 {
            if sim.round().malicious_published > 0 {
                saw_malicious = true;
            }
        }
        assert!(saw_malicious, "poisoners publish every time they are drawn");
    }

    #[test]
    fn dp_noise_does_not_break_learning() {
        let mut sim = Simulation::new(dataset(10), quick_cfg(), build).with_dp(DpConfig {
            clip_norm: 5.0,
            sigma: 0.001,
        });
        for _ in 0..10 {
            sim.round();
        }
        let acc = sim.evaluate(0).accuracy;
        assert!(
            acc > 0.3,
            "mild DP noise should still allow learning: {acc}"
        );
    }

    #[test]
    fn save_and_resume_continues_training() {
        let mut sim = Simulation::new(dataset(10), quick_cfg(), build);
        for _ in 0..10 {
            sim.round();
        }
        let acc_before = sim.evaluate(0).accuracy;
        let bytes = crate::persist::to_bytes(sim.tangle());
        drop(sim);
        // Restart from the persisted ledger with fresh node state.
        let restored = crate::persist::from_bytes(&bytes).unwrap();
        let mut resumed = Simulation::resume(dataset(10), quick_cfg(), build, restored);
        let acc_restored = resumed.evaluate(0).accuracy;
        assert!(
            (acc_before - acc_restored).abs() < 0.25,
            "restored consensus should be in the same quality band: {acc_before} vs {acc_restored}"
        );
        let len_before = resumed.tangle().len();
        for _ in 0..5 {
            resumed.round();
        }
        assert!(
            resumed.tangle().len() > len_before,
            "resume must keep publishing"
        );
        let acc_after = resumed.evaluate(0).accuracy;
        assert!(
            acc_after > acc_restored - 0.2,
            "continued training must not collapse: {acc_restored} -> {acc_after}"
        );
    }

    #[test]
    #[should_panic(expected = "does not match the model architecture")]
    fn resume_rejects_mismatched_architecture() {
        let mut sim = Simulation::new(dataset(6), quick_cfg(), build);
        sim.round();
        let bytes = crate::persist::to_bytes(sim.tangle());
        let restored = crate::persist::from_bytes(&bytes).unwrap();
        let wrong = || tinynn::zoo::mlp(8, &[5], 4, &mut tseed(5));
        let _ = Simulation::resume(dataset(6), quick_cfg(), wrong, restored);
    }

    #[test]
    fn approval_confidence_mode_converges() {
        let mut cfg = quick_cfg();
        cfg.hyper.confidence_mode = crate::ConfidenceMode::Approval;
        let mut sim = Simulation::new(dataset(10), cfg, build);
        let acc0 = sim.evaluate(0).accuracy;
        for _ in 0..15 {
            sim.round();
        }
        let acc1 = sim.evaluate(0).accuracy;
        assert!(
            acc1 > acc0 + 0.15,
            "approval-confidence consensus should learn: {acc0} -> {acc1}"
        );
    }

    #[test]
    fn windowed_tip_selection_converges() {
        let mut cfg = quick_cfg();
        cfg.hyper.window = Some(3);
        let mut sim = Simulation::new(dataset(10), cfg, build);
        let acc0 = sim.evaluate(0).accuracy;
        for _ in 0..15 {
            sim.round();
        }
        let acc1 = sim.evaluate(0).accuracy;
        assert!(
            acc1 > acc0 + 0.15,
            "windowed walks should still learn: {acc0} -> {acc1}"
        );
        assert!(sim.tangle().len() > 10);
    }

    #[test]
    fn lossy_network_still_converges() {
        let mut cfg = quick_cfg();
        cfg.network = Some(crate::config::NetworkModel {
            max_delay_rounds: 3,
            publish_loss: 0.2,
        });
        let mut sim = Simulation::new(dataset(10), cfg, build);
        let acc0 = sim.evaluate(0).accuracy;
        for _ in 0..20 {
            sim.round();
        }
        let acc1 = sim.evaluate(0).accuracy;
        assert!(
            acc1 > acc0 + 0.15,
            "learning should survive delay + 20% loss: {acc0} -> {acc1}"
        );
        assert!(sim.lost_publications() > 0, "losses should be recorded");
    }

    #[test]
    fn total_publish_loss_freezes_ledger() {
        let mut cfg = quick_cfg();
        cfg.network = Some(crate::config::NetworkModel {
            max_delay_rounds: 0,
            publish_loss: 1.0,
        });
        let mut sim = Simulation::new(dataset(8), cfg, build);
        for _ in 0..5 {
            sim.round();
        }
        assert_eq!(sim.tangle().len(), 1, "every publication must be lost");
        assert!(sim.lost_publications() >= 5);
    }

    #[test]
    fn delayed_views_are_historical_prefixes() {
        // With a large delay every node still acts on *some* valid prefix;
        // the published parents must therefore exist and the run stays
        // deterministic.
        let mut cfg = quick_cfg();
        cfg.network = Some(crate::config::NetworkModel {
            max_delay_rounds: 5,
            publish_loss: 0.0,
        });
        let run = |seed: u64| {
            let mut c = cfg.clone();
            c.seed = seed;
            let mut sim = Simulation::new(dataset(8), c, build);
            for _ in 0..8 {
                sim.round();
            }
            sim.tangle().len()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn target_misclassification_zero_for_untargeted_model() {
        let mut sim = Simulation::new(dataset(10), quick_cfg(), build);
        for _ in 0..10 {
            sim.round();
        }
        // A benign, reasonably accurate model should rarely map 0 -> 1.
        let mis = sim.target_misclassification(0, 1, 0);
        assert!(mis < 0.6, "benign misclassification too high: {mis}");
    }
}
