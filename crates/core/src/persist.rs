//! Ledger persistence.
//!
//! The paper envisions "a long-lived, evolving learning network" (§II-B)
//! whose global model "over time adapts to shifts in the underlying data
//! distribution". Long-lived means restartable: this module serializes a
//! model-carrying tangle to a compact binary file and restores it, so a
//! training network can stop and resume without losing its ledger.
//!
//! Format (little-endian):
//! ```text
//! magic  b"LTGL"   version u8 (1)   tx_count u32
//! per transaction:
//!   issuer u64   round u64   parent_count u16   parents (u32 local id) ×
//!   payload_len u32   payload bytes (tinynn::wire encoding, checksummed)
//! ```

use crate::node::ModelParams;
use bytes_shim::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;
use tangle_ledger::{Tangle, TxId};
use tinynn::wire;

/// Plain little-endian helpers over `Vec<u8>`/slices (keeps this module
/// free of a buffer-library dependency in its public surface).
mod bytes_shim {
    pub fn put_u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub fn get_u16(b: &[u8], at: &mut usize) -> Option<u16> {
        let v = b.get(*at..*at + 2)?;
        *at += 2;
        Some(u16::from_le_bytes(v.try_into().ok()?))
    }
    pub fn get_u32(b: &[u8], at: &mut usize) -> Option<u32> {
        let v = b.get(*at..*at + 4)?;
        *at += 4;
        Some(u32::from_le_bytes(v.try_into().ok()?))
    }
    pub fn get_u64(b: &[u8], at: &mut usize) -> Option<u64> {
        let v = b.get(*at..*at + 8)?;
        *at += 8;
        Some(u64::from_le_bytes(v.try_into().ok()?))
    }
}

const MAGIC: &[u8; 4] = b"LTGL";
const VERSION: u8 = 1;

/// Errors while loading a persisted ledger.
#[derive(Debug)]
pub enum PersistError {
    /// I/O failure.
    Io(std::io::Error),
    /// Structural problem in the file.
    Malformed(&'static str),
    /// A payload failed its checksum.
    Payload(wire::WireError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Malformed(m) => write!(f, "malformed ledger file: {m}"),
            PersistError::Payload(e) => write!(f, "payload error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialize a tangle to bytes.
pub fn to_bytes(tangle: &Tangle<ModelParams>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u32(&mut out, tangle.len() as u32);
    for tx in tangle.transactions() {
        put_u64(&mut out, tx.issuer);
        put_u64(&mut out, tx.round);
        put_u16(&mut out, tx.parents.len() as u16);
        for p in &tx.parents {
            put_u32(&mut out, p.0);
        }
        let payload = wire::encode(&tx.payload);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
    }
    out
}

/// Reconstruct a tangle from bytes.
pub fn from_bytes(b: &[u8]) -> Result<Tangle<ModelParams>, PersistError> {
    let mut at = 0usize;
    if b.len() < 9 || &b[..4] != MAGIC {
        return Err(PersistError::Malformed("bad magic"));
    }
    at += 4;
    if b[at] != VERSION {
        return Err(PersistError::Malformed("unsupported version"));
    }
    at += 1;
    let count = get_u32(b, &mut at).ok_or(PersistError::Malformed("truncated header"))? as usize;
    if count == 0 {
        return Err(PersistError::Malformed("empty ledger"));
    }
    // Every transaction occupies at least 22 bytes (issuer 8 + round 8 +
    // parent count 2 + payload length 4), so a count the remaining buffer
    // cannot possibly hold is a lie — reject it up front instead of
    // trusting it for capacity planning.
    if count as u64 * 22 > (b.len() - at) as u64 {
        return Err(PersistError::Malformed("implausible transaction count"));
    }
    let mut tangle: Option<Tangle<ModelParams>> = None;
    for i in 0..count {
        let issuer = get_u64(b, &mut at).ok_or(PersistError::Malformed("truncated tx"))?;
        let round = get_u64(b, &mut at).ok_or(PersistError::Malformed("truncated tx"))?;
        let np = get_u16(b, &mut at).ok_or(PersistError::Malformed("truncated tx"))? as usize;
        let mut parents = Vec::with_capacity(np);
        for _ in 0..np {
            parents.push(TxId(
                get_u32(b, &mut at).ok_or(PersistError::Malformed("truncated parents"))?,
            ));
        }
        let plen =
            get_u32(b, &mut at).ok_or(PersistError::Malformed("truncated payload len"))? as usize;
        let payload = b
            .get(at..at + plen)
            .ok_or(PersistError::Malformed("truncated payload"))?;
        at += plen;
        let params = Arc::new(wire::decode(payload).map_err(PersistError::Payload)?);
        match (&mut tangle, i) {
            (slot @ None, 0) => {
                if !parents.is_empty() {
                    return Err(PersistError::Malformed("genesis has parents"));
                }
                *slot = Some(Tangle::new(params));
            }
            (Some(t), _) => {
                t.add_meta(params, parents, issuer, round)
                    .map_err(|_| PersistError::Malformed("invalid parent reference"))?;
            }
            _ => return Err(PersistError::Malformed("missing genesis")),
        }
    }
    if at != b.len() {
        return Err(PersistError::Malformed("trailing bytes"));
    }
    Ok(tangle.expect("count >= 1"))
}

/// Write a ledger to a file.
pub fn save(path: impl AsRef<Path>, tangle: &Tangle<ModelParams>) -> Result<(), PersistError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(tangle))?;
    Ok(())
}

/// Read a ledger from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Tangle<ModelParams>, PersistError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::ParamVec;

    fn sample_tangle() -> Tangle<ModelParams> {
        let mut t = Tangle::new(Arc::new(ParamVec(vec![0.5, -0.5])));
        let a = t
            .add_meta(Arc::new(ParamVec(vec![1.0, 2.0])), vec![t.genesis()], 3, 1)
            .unwrap();
        t.add_meta(
            Arc::new(ParamVec(vec![3.0, 4.0])),
            vec![a, t.genesis()],
            4,
            2,
        )
        .unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_tangle();
        let b = to_bytes(&t);
        let r = from_bytes(&b).unwrap();
        assert_eq!(r.len(), t.len());
        assert_eq!(r.tips(), t.tips());
        for (x, y) in t.transactions().iter().zip(r.transactions()) {
            assert_eq!(x.parents, y.parents);
            assert_eq!(x.issuer, y.issuer);
            assert_eq!(x.round, y.round);
            assert_eq!(x.payload.as_ref(), y.payload.as_ref());
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_tangle();
        let path = std::env::temp_dir().join("lt_persist_test.tangle");
        save(&path, &t).unwrap();
        let r = load(&path).unwrap();
        assert_eq!(r.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_detected() {
        let t = sample_tangle();
        let mut b = to_bytes(&t);
        // flip a payload byte (inside the last payload's values)
        let n = b.len();
        b[n - 12] ^= 0x40;
        assert!(matches!(from_bytes(&b), Err(PersistError::Payload(_))));
    }

    #[test]
    fn truncation_detected() {
        let t = sample_tangle();
        let b = to_bytes(&t);
        assert!(from_bytes(&b[..b.len() - 3]).is_err());
        assert!(from_bytes(&b[..6]).is_err());
        assert!(from_bytes(b"XXXXX").is_err());
    }

    #[test]
    fn trailing_garbage_detected() {
        let t = sample_tangle();
        let mut b = to_bytes(&t);
        b.push(0);
        assert!(matches!(
            from_bytes(&b),
            Err(PersistError::Malformed("trailing bytes"))
        ));
    }
}
