//! Experiment metrics: per-round series and Table II helpers.

use serde::{Deserialize, Serialize};

/// One evaluation point of a run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Training round at which the evaluation happened.
    pub round: u64,
    /// Consensus-model accuracy on the pooled evaluation data.
    pub accuracy: f32,
    /// Consensus-model loss on the pooled evaluation data.
    pub loss: f32,
    /// Fraction of `src`-class evaluation samples predicted as `dst`
    /// (only recorded during targeted-attack runs — Fig. 6b).
    pub target_misclassification: Option<f32>,
    /// Number of tips at evaluation time (None for FedAvg baselines).
    pub tips: Option<usize>,
}

/// A named series of evaluation points, serializable for EXPERIMENTS.md.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsLog {
    /// Label of the run (e.g. "tangle-opt-35nodes").
    pub label: String,
    /// The evaluation points, in round order.
    pub points: Vec<MetricPoint>,
}

impl MetricsLog {
    /// Create an empty log with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, p: MetricPoint) {
        self.points.push(p);
    }

    /// The last recorded accuracy.
    pub fn final_accuracy(&self) -> Option<f32> {
        self.points.last().map(|p| p.accuracy)
    }

    /// The best accuracy recorded anywhere in the run.
    pub fn best_accuracy(&self) -> Option<f32> {
        self.points
            .iter()
            .map(|p| p.accuracy)
            .max_by(|a, b| a.partial_cmp(b).expect("finite accuracy"))
    }

    /// Minimum accuracy in a round window (used to quantify attack damage).
    pub fn min_accuracy_in(&self, rounds: std::ops::RangeInclusive<u64>) -> Option<f32> {
        self.points
            .iter()
            .filter(|p| rounds.contains(&p.round))
            .map(|p| p.accuracy)
            .min_by(|a, b| a.partial_cmp(b).expect("finite accuracy"))
    }
}

/// Table II metric: the first round at which the accuracy reached
/// `threshold`, or `None` if it never did.
pub fn rounds_to_reach(log: &MetricsLog, threshold: f32) -> Option<u64> {
    log.points
        .iter()
        .find(|p| p.accuracy >= threshold)
        .map(|p| p.round)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> MetricsLog {
        let mut l = MetricsLog::new("test");
        for (r, a) in [(20u64, 0.3f32), (40, 0.55), (60, 0.72), (80, 0.70)] {
            l.push(MetricPoint {
                round: r,
                accuracy: a,
                loss: 1.0 - a,
                target_misclassification: None,
                tips: Some(5),
            });
        }
        l
    }

    #[test]
    fn rounds_to_reach_finds_first_crossing() {
        let l = log();
        assert_eq!(rounds_to_reach(&l, 0.7), Some(60));
        assert_eq!(rounds_to_reach(&l, 0.1), Some(20));
        assert_eq!(rounds_to_reach(&l, 0.9), None);
    }

    #[test]
    fn accessors() {
        let l = log();
        assert_eq!(l.final_accuracy(), Some(0.70));
        assert_eq!(l.best_accuracy(), Some(0.72));
        assert_eq!(l.min_accuracy_in(40..=80), Some(0.55));
        assert_eq!(l.min_accuracy_in(90..=100), None);
        assert_eq!(MetricsLog::new("x").final_accuracy(), None);
    }

    #[test]
    fn serializes_roundtrip() {
        let l = log();
        let json = serde_json::to_string(&l).unwrap();
        let back: MetricsLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points.len(), 4);
        assert_eq!(back.label, "test");
    }
}
