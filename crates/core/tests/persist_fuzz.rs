//! Adversarial persistence tests: `persist::from_bytes` / `persist::load`
//! must reject truncated, bit-flipped, wrong-magic, and garbage inputs
//! with an `Err` — never a panic, and never an absurd allocation driven
//! by attacker-controlled length fields.

use learning_tangle::node::ModelParams;
use learning_tangle::persist::{self, PersistError};
use proptest::prelude::*;
use std::sync::Arc;
use tangle_ledger::Tangle;
use tinynn::ParamVec;

fn sample_bytes(values: &[f32]) -> Vec<u8> {
    let mut t: Tangle<ModelParams> = Tangle::new(Arc::new(ParamVec(vec![0.25, -0.25])));
    let mut prev = t.genesis();
    for (i, &v) in values.iter().enumerate() {
        prev = t
            .add_meta(
                Arc::new(ParamVec(vec![v, v + 1.0])),
                vec![prev, t.genesis()],
                i as u64,
                i as u64 + 1,
            )
            .unwrap();
    }
    persist::to_bytes(&t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of a valid file fails to load — cleanly.
    #[test]
    fn truncation_always_errs(
        values in prop::collection::vec(-4.0f32..4.0, 1..6),
        cut in 0usize..1000,
    ) {
        let b = sample_bytes(&values);
        let cut = cut % b.len(); // strictly shorter than the original
        prop_assert!(persist::from_bytes(&b[..cut]).is_err());
    }

    /// Any change to the magic or version byte is rejected outright.
    #[test]
    fn wrong_magic_or_version_always_errs(
        values in prop::collection::vec(-4.0f32..4.0, 1..4),
        pos in 0usize..5,
        bit in 0u8..8,
    ) {
        let mut b = sample_bytes(&values);
        b[pos] ^= 1 << bit;
        prop_assert!(persist::from_bytes(&b).is_err());
    }

    /// Flipping any bit of the header (magic, version, or transaction
    /// count) always errs: a count change either truncates the stream,
    /// leaves trailing bytes, or trips the plausibility guard.
    #[test]
    fn header_bit_flips_always_err(
        values in prop::collection::vec(-4.0f32..4.0, 1..4),
        pos in 0usize..9,
        bit in 0u8..8,
    ) {
        let mut b = sample_bytes(&values);
        b[pos] ^= 1 << bit;
        prop_assert!(persist::from_bytes(&b).is_err());
    }

    /// Flipping bits anywhere never panics. (Flips inside unprotected
    /// metadata fields — issuer, round, a parent id that stays valid —
    /// may legitimately decode to a *different* ledger; the checksummed
    /// payloads and structural checks catch the rest.)
    #[test]
    fn arbitrary_bit_flips_never_panic(
        values in prop::collection::vec(-4.0f32..4.0, 1..5),
        pos in 0usize..4000,
        bit in 0u8..8,
    ) {
        let mut b = sample_bytes(&values);
        let pos = pos % b.len();
        b[pos] ^= 1 << bit;
        let _ = persist::from_bytes(&b); // must return, Ok or Err
    }

    /// Random garbage — with or without a genuine-looking header stapled
    /// on — is rejected without panicking.
    #[test]
    fn garbage_always_errs(
        tail in prop::collection::vec(any::<u8>(), 0..256),
        with_header in any::<bool>(),
    ) {
        let mut b = Vec::new();
        if with_header {
            b.extend_from_slice(b"LTGL");
            b.push(1);
        }
        b.extend_from_slice(&tail);
        prop_assert!(persist::from_bytes(&b).is_err());
    }

    /// A length-prefix lying about the transaction count is rejected up
    /// front by the plausibility guard instead of being trusted.
    #[test]
    fn absurd_counts_rejected_quickly(count in 1024u32..u32::MAX) {
        let mut b = Vec::new();
        b.extend_from_slice(b"LTGL");
        b.push(1);
        b.extend_from_slice(&count.to_le_bytes());
        // a few bytes of "payload" — nowhere near count × 22
        b.extend_from_slice(&[0u8; 64]);
        prop_assert!(matches!(
            persist::from_bytes(&b),
            Err(PersistError::Malformed("implausible transaction count"))
        ));
    }
}

/// The file-based entry point surfaces the same rejection (and I/O
/// errors for missing files) instead of panicking.
#[test]
fn load_rejects_corrupted_file_and_missing_file() {
    let b = sample_bytes(&[1.0, 2.0]);
    let dir = std::env::temp_dir();
    let path = dir.join("lt_persist_fuzz.tangle");
    let mut bad = b.clone();
    let n = bad.len();
    bad[n - 10] ^= 0x20; // inside the checksummed payload
    std::fs::write(&path, &bad).unwrap();
    assert!(persist::load(&path).is_err());
    std::fs::remove_file(&path).ok();
    assert!(matches!(
        persist::load(dir.join("lt_persist_fuzz_missing.tangle")),
        Err(PersistError::Io(_))
    ));
}
