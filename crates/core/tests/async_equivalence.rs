//! The degenerate conformance case, pinned as a tier-1 test: a
//! single-worker *scripted* asynchronous run must be byte-identical to
//! the round-based simulator on the same activation schedule — stats,
//! ledger structure, and raw telemetry JSONL alike. Any divergence means
//! the async snapshot/lock/cache path changed observable semantics.

use feddata::blobs::{self, BlobsConfig};
use learning_tangle::async_sim::run_async_scripted;
use learning_tangle::{Node, RoundStats, SimConfig, Simulation, TangleHyperParams};
use lt_telemetry::{JsonlSink, Telemetry};
use tinynn::rng::seeded;
use tinynn::Sequential;

fn dataset() -> feddata::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users: 8,
            samples_per_user: (24, 32),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        77,
    )
}

fn build() -> Sequential {
    tinynn::zoo::mlp(8, &[12], 4, &mut seeded(5))
}

fn cfg() -> SimConfig {
    SimConfig {
        nodes_per_round: 4,
        lr: 0.15,
        local_epochs: 1,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed: 9,
        hyper: TangleHyperParams {
            confidence_samples: 6,
            ..TangleHyperParams::basic()
        },
        network: None,
    }
}

fn script() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1, 2, 3],
        vec![4, 5, 6, 7],
        vec![1, 3, 5],
        vec![0, 2, 4, 6, 7],
        vec![7, 0],
        vec![2, 2, 5], // repeated activation in one round is legal
    ]
}

#[test]
fn scripted_async_run_is_byte_identical_to_round_sim() {
    let dir = std::env::temp_dir();

    // Round-based simulator.
    let sync_path = dir.join("lt_async_equiv_sync.jsonl");
    let sync_tel = Telemetry::new(JsonlSink::create(&sync_path).unwrap());
    let mut sim = Simulation::new(dataset(), cfg(), build).with_telemetry(sync_tel.clone());
    let sync_stats: Vec<RoundStats> = script().iter().map(|r| sim.round_with_nodes(r)).collect();

    // Scripted single-worker asynchronous simulator.
    let nodes: Vec<Node> = dataset()
        .clients
        .into_iter()
        .enumerate()
        .map(|(i, c)| Node::honest(i, c))
        .collect();
    let async_path = dir.join("lt_async_equiv_async.jsonl");
    let async_tel = Telemetry::new(JsonlSink::create(&async_path).unwrap());
    let (run, async_stats) =
        run_async_scripted(&nodes, &cfg(), build, &script(), async_tel.clone());

    assert_eq!(sync_stats, async_stats, "RoundStats must match");
    assert_eq!(
        sim.tangle().structure(),
        run.tangle.structure(),
        "ledger structure must match"
    );
    assert_eq!(run.killed, 0);
    let rejected: usize = sync_stats.iter().map(|s| s.sampled - s.published).sum();
    assert_eq!(run.discarded, rejected, "gate decisions must match");
    // Every publication saw the full previous-round ledger (round barrier).
    for e in &run.events {
        assert!(e.snapshot_len <= e.tangle_len);
    }

    // Analysis-cache behaviour must agree: one cached context per round,
    // never a rebuild.
    for counter in [
        "tangle.cache_hits",
        "tangle.cache_rebuilds",
        "tangle.cache_appends",
        "tangle.walks",
        "sim.published",
        "sim.rejected",
    ] {
        assert_eq!(
            sync_tel.counter_value(counter),
            async_tel.counter_value(counter),
            "counter {counter} must match"
        );
    }
    assert_eq!(sync_tel.counter_value("tangle.cache_hits"), 6);
    assert_eq!(sync_tel.counter_value("tangle.cache_rebuilds"), 0);

    let sync_bytes = std::fs::read(&sync_path).unwrap();
    let async_bytes = std::fs::read(&async_path).unwrap();
    let _ = std::fs::remove_file(&sync_path);
    let _ = std::fs::remove_file(&async_path);
    assert!(!sync_bytes.is_empty());
    assert_eq!(
        sync_bytes, async_bytes,
        "telemetry JSONL must be byte-identical"
    );
}

#[test]
#[should_panic(expected = "at least one node")]
fn scripted_round_rejects_empty_activation() {
    let mut sim = Simulation::new(dataset(), cfg(), build);
    sim.round_with_nodes(&[]);
}
