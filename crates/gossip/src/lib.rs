//! # tangle-gossip — the learning tangle over a simulated P2P network
//!
//! The paper's prototype keeps one global tangle and round-based
//! visibility; its outlook (§VI) asks for the concept to be "translated
//! into a distributed implementation which can be benchmarked in a
//! simulation environment, thereby considering faults introduced by
//! real-world network conditions". This crate is that simulation:
//!
//! * [`message`] — content-addressed wire transactions: the payload is the
//!   checksummed `tinynn::wire` encoding of the parameters, the id is a
//!   digest over payload + parents + issuer + nonce, and publication can be
//!   gated by hashcash proof-of-work (the Sybil defense of §IV).
//! * [`peer`] — each peer maintains its own [`tangle_ledger::Tangle`]
//!   replica, translating content ids to local ids, buffering *orphans*
//!   (transactions whose parents haven't arrived yet) and rejecting
//!   duplicates, malformed payloads, and invalid proofs-of-work.
//! * [`transport`] — the protocol vocabulary ([`ProtocolMsg`]:
//!   publish / advertise / request / delta) and the [`Transport`]
//!   abstraction over how those messages move between peers.
//! * [`network`] — a discrete-event message simulator: configurable
//!   topology (full mesh / ring / random regular), per-link latency,
//!   message loss, and partitions. Losses and restarts heal through a
//!   pull-based repair protocol (head advertisement + bounded
//!   re-requests with exponential backoff); the omniscient anti-entropy
//!   oracle survives only as a test ground truth.
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   schedules peer crash/restart cycles (recovering empty or from a
//!   `learning_tangle::persist` checkpoint) and per-link
//!   drop/duplicate/corrupt/reorder perturbations.
//! * [`learn`] — decentralized training over the gossip network: peers run
//!   the paper's Algorithm 2 against their *own replica* and publish the
//!   result as a gossip broadcast; replicas converge to a common consensus
//!   model despite latency, loss, partitions, and churn.

pub mod fault;
pub mod learn;
pub mod message;
pub mod network;
pub mod peer;
pub mod transport;

pub use fault::{CrashEvent, FaultPlan, Recovery, RepairConfig};
pub use message::{ContentId, TxMessage};
pub use network::{Latency, NetStats, Network, NetworkConfig, Topology};
pub use peer::{Peer, ReceiveOutcome};
pub use transport::{ProtocolMsg, Transport};
