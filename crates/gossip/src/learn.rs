//! Decentralized learning over the gossip network.
//!
//! Unlike the round-based simulator (which keeps one global ledger), every
//! peer here trains against **its own replica** — complete with propagation
//! delay, message loss, and partitions — and publishes its result as a
//! gossip broadcast. This is the paper's §VI "distributed implementation
//! ... considering faults introduced by real-world network conditions".

use crate::message::TxMessage;
use crate::network::{Network, NetworkConfig};
use feddata::FederatedDataset;
use learning_tangle::node::{node_step_pooled, ModelParams, Node, RoundContext, StepOutcome};
use learning_tangle::{
    eval_pool_indices, EvalCache, ScratchPool, SimConfig, DEFAULT_EVAL_CACHE_CAPACITY,
};
use rand::RngExt;
use tangle_ledger::{AnalysisCache, Tangle};
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// One Algorithm-2 training step against `replica` at activation `slot`,
/// derived exactly as the round simulator derives round `slot`: the
/// context seed is `derive(cfg.seed, slot ^ 0xC0FF_EE00)` and the node
/// RNG is `derive(cfg.seed, (slot << 24) ^ peer)`. Factored out so the
/// in-process learner and the `lt-node` daemon produce byte-identical
/// parameters for the same `(seed, slot, peer)` over the same replica —
/// and so a one-activation-per-round gossip run matches the round
/// simulator bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn train_step(
    replica: &Tangle<ModelParams>,
    cache: &mut AnalysisCache,
    node: &Node,
    peer: usize,
    slot: u64,
    scratch: &ScratchPool<'_>,
    cfg: &SimConfig,
    eval: Option<&mut EvalCache>,
    telemetry: &lt_telemetry::Telemetry,
) -> StepOutcome {
    let ctx = RoundContext::build_with_cache(
        replica,
        cache,
        cfg,
        slot,
        derive(cfg.seed, slot ^ 0xC0FF_EE00),
        telemetry.clone(),
    );
    let mut node_rng = seeded(derive(cfg.seed, (slot << 24) ^ peer as u64));
    node_step_pooled(node, &ctx, scratch, cfg, &mut node_rng, eval)
}

/// Evaluate the consensus model held in `replica` exactly as
/// [`learning_tangle::Simulation::evaluate`] does after `slot` rounds:
/// Algorithm 1 at round `slot + 1`, evaluated on the pooled clean
/// held-out data of the shared [`eval_pool_indices`] sample. Returns
/// `(loss, accuracy)` — bit-identical across executors whose replicas
/// are bit-identical.
pub fn consensus_eval(
    replica: &Tangle<ModelParams>,
    nodes: &[Node],
    scratch: &ScratchPool<'_>,
    cfg: &SimConfig,
    slot: u64,
    eval_seed: u64,
) -> (f32, f32) {
    let ctx = RoundContext::build(
        replica,
        cfg,
        slot + 1,
        derive(cfg.seed, (slot + 1) ^ 0xC0FF_EE00),
    );
    let pool = eval_pool_indices(cfg.seed, eval_seed, nodes.len(), cfg.eval_fraction);
    let clients: Vec<&feddata::ClientData> = pool.iter().map(|&i| &nodes[i].data).collect();
    let mut model = scratch.take();
    let out = fedavg::evaluate_params(&mut model, &ctx.reference, &clients);
    scratch.put(model);
    out
}

/// A gossip-network learning run.
pub struct GossipLearning<'a> {
    network: Network,
    nodes: Vec<Node>,
    scratch: ScratchPool<'a>,
    cfg: SimConfig,
    /// Ticks the network advances per node activation.
    pub ticks_per_activation: u64,
    slot: u64,
    published: u64,
    discarded: u64,
    rng: tinynn::rng::Rng,
    /// Per-peer analysis caches over each peer's replica. Replicas grow
    /// append-only between activations (incremental catch-up); a crash /
    /// checkpoint-restore replaces the replica wholesale, which the cache
    /// detects and answers with a counted rebuild.
    caches: Vec<AnalysisCache>,
    /// Per-peer evaluation memoization (`None` = re-run every forward
    /// pass). Replica-local tx ids are only meaningful within one replica
    /// incarnation, so a restart drops the peer's cache wholesale
    /// (`eval_cache.invalidations`) — the history signature alone cannot
    /// see a regrown replica that swapped payloads under unchanged
    /// structure.
    eval: Option<Vec<EvalCache>>,
    /// Restart counts already reflected in `eval` (see
    /// [`Network::restart_count`]).
    restarts_seen: Vec<u64>,
    telemetry: lt_telemetry::Telemetry,
}

impl<'a> GossipLearning<'a> {
    /// Build a network with one peer per client. All peers share a genesis
    /// carrying one fresh model initialization.
    pub fn new(
        data: FederatedDataset,
        cfg: SimConfig,
        net_cfg: NetworkConfig,
        build: impl Fn() -> Sequential + Sync + 'a,
    ) -> Self {
        let genesis_params = ParamVec::from_model(&build());
        let genesis =
            TxMessage::create(&genesis_params, vec![], u64::MAX, 0, net_cfg.pow_difficulty);
        let n = data.num_clients();
        let network = Network::new(n, &genesis, net_cfg);
        let nodes = data
            .clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect();
        let rng = seeded(derive(cfg.seed, 0x60551EA2));
        let caches = (0..n)
            .map(|i| AnalysisCache::new(network.peer(i).replica()))
            .collect();
        Self {
            network,
            caches,
            eval: Some(
                (0..n)
                    .map(|_| EvalCache::new(DEFAULT_EVAL_CACHE_CAPACITY))
                    .collect(),
            ),
            restarts_seen: vec![0; n],
            nodes,
            scratch: ScratchPool::new(Box::new(build)),
            cfg,
            ticks_per_activation: 1,
            slot: 0,
            published: 0,
            discarded: 0,
            rng,
            telemetry: lt_telemetry::Telemetry::disabled(),
        }
    }

    /// Enable or disable per-peer evaluation memoization (on by default).
    /// Pure optimization: runs are bit-identical either way.
    pub fn with_eval_cache(mut self, enabled: bool) -> Self {
        let n = self.nodes.len();
        self.eval = enabled.then(|| {
            (0..n)
                .map(|_| EvalCache::new(DEFAULT_EVAL_CACHE_CAPACITY))
                .collect()
        });
        self
    }

    /// Attach an observability handle to the learner *and* its network
    /// (see [`Network::set_telemetry`]). Activations then record the
    /// `gossip.published` / `gossip.discarded` counters and a
    /// `wire.encode_us` span around message creation.
    pub fn set_telemetry(&mut self, telemetry: lt_telemetry::Telemetry) {
        self.network.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The underlying network (replicas, stats, partitions).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access (e.g. to partition/heal mid-run).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Node population (e.g. for attack assignment).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Publications accepted so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Training results rejected by the local publish gate so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Activate one specific peer: it runs Algorithm 2 on its replica and
    /// gossips the result. Returns whether it published. A crashed peer
    /// cannot train: the activation is skipped (counted under
    /// `gossip.skipped_down`) while simulated time still advances.
    pub fn activate(&mut self, peer: usize) -> bool {
        if !self.network.is_up(peer) {
            self.telemetry.count("gossip.skipped_down", 1);
            self.network.advance(self.ticks_per_activation);
            return false;
        }
        self.slot += 1;
        let slot = self.slot;
        // A restarted peer came back with a different replica incarnation:
        // its memoized evaluations are meaningless, drop them all.
        let restarts = self.network.restart_count(peer);
        if restarts != self.restarts_seen[peer] {
            self.restarts_seen[peer] = restarts;
            if let Some(eval) = &mut self.eval {
                eval[peer].invalidate_all(&self.telemetry);
            }
        }
        let replica_len;
        let (publish, new_loss, reference_loss) = {
            let replica = self.network.peer(peer).replica();
            replica_len = replica.len();
            let out = train_step(
                replica,
                &mut self.caches[peer],
                &self.nodes[peer],
                peer,
                slot,
                &self.scratch,
                &self.cfg,
                self.eval.as_mut().map(|caches| &mut caches[peer]),
                &self.telemetry,
            );
            (out.publish, out.new_loss, out.reference_loss)
        };
        let mut local_parents: Vec<u32> = Vec::new();
        let did_publish = match publish {
            Some(p) => {
                local_parents = p.parents.iter().map(|id| id.index() as u32).collect();
                // Translate local parent ids into content ids for the wire.
                let parents = p
                    .parents
                    .iter()
                    .map(|id| {
                        debug_assert!(id.index() < replica_len);
                        self.network.peer(peer).content_id_of(*id)
                    })
                    .collect();
                let msg = {
                    let _span = self.telemetry.span("wire.encode_us");
                    TxMessage::create(&p.params, parents, peer as u64, slot, self.network_pow())
                };
                self.network.publish(peer, msg);
                self.published += 1;
                self.telemetry.count("gossip.published", 1);
                true
            }
            None => {
                self.discarded += 1;
                self.telemetry.count("gossip.discarded", 1);
                false
            }
        };
        // One Step event per activation: `round` is the global activation
        // slot, `parents` are replica-local tx indices (peer-relative).
        self.telemetry.emit(|| {
            lt_telemetry::Event::Step(lt_telemetry::StepEvent {
                round: slot,
                node: peer as u64,
                accepted: did_publish,
                parents: local_parents.clone(),
                new_loss,
                reference_loss,
            })
        });
        self.network.advance(self.ticks_per_activation);
        did_publish
    }

    fn network_pow(&self) -> u32 {
        // Peers must publish at the admission difficulty they enforce.
        // (The network config is not publicly readable; peers reject what
        // they cannot verify, so use difficulty 0 consistently unless the
        // network was built with PoW — reconstructed from peer behaviour.)
        0
    }

    /// Activate `count` uniformly random peers.
    pub fn run(&mut self, count: u64) {
        for _ in 0..count {
            let peer = self.rng.random_range(0..self.nodes.len());
            self.activate(peer);
        }
    }

    /// Evaluate the consensus model *as seen by* `peer` exactly as the
    /// round simulator's `evaluate` would after the same number of
    /// rounds (`eval_seed` picks the evaluation pool). When this
    /// learner's replica is bit-identical with a round simulation's
    /// ledger — one activation per round, fully drained — so is the
    /// result. Returns `(loss, accuracy)`.
    pub fn evaluate_consensus(&self, peer: usize, eval_seed: u64) -> (f32, f32) {
        consensus_eval(
            self.network.peer(peer).replica(),
            &self.nodes,
            &self.scratch,
            &self.cfg,
            self.slot,
            eval_seed,
        )
    }

    /// Evaluate the consensus model *as seen by* `peer`, on the pooled
    /// clean held-out data of all nodes. Returns `(loss, accuracy)`.
    pub fn evaluate_peer(&self, peer: usize) -> (f32, f32) {
        let replica = self.network.peer(peer).replica();
        let ctx = RoundContext::build(
            replica,
            &self.cfg,
            self.slot + 1,
            derive(self.cfg.seed, 0xE7A1),
        );
        let mut model = self.scratch.take();
        let clients: Vec<&feddata::ClientData> = self.nodes.iter().map(|n| &n.data).collect();
        let out = fedavg::evaluate_params(&mut model, &ctx.reference, &clients);
        self.scratch.put(model);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Latency, Topology};
    use feddata::blobs::{self, BlobsConfig};
    use learning_tangle::TangleHyperParams;

    fn data(users: usize) -> FederatedDataset {
        blobs::generate(
            &BlobsConfig {
                users,
                samples_per_user: (24, 32),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            23,
        )
    }

    fn build() -> Sequential {
        tinynn::zoo::mlp(8, &[12], 4, &mut tinynn::rng::seeded(5))
    }

    fn cfg() -> SimConfig {
        SimConfig {
            lr: 0.15,
            batch_size: 8,
            train_chunks: 1,
            train_parallel: true,
            seed: 31,
            hyper: TangleHyperParams {
                confidence_samples: 6,
                reference_avg: 3,
                ..TangleHyperParams::basic()
            },
            ..SimConfig::default()
        }
    }

    #[test]
    fn learning_over_gossip_converges() {
        let mut gl = GossipLearning::new(data(8), cfg(), NetworkConfig::default(), build);
        let (_, acc0) = gl.evaluate_peer(0);
        gl.run(60);
        gl.network_mut().run_to_quiescence();
        let (_, acc1) = gl.evaluate_peer(0);
        assert!(
            acc1 > acc0 + 0.2,
            "gossip learning should converge: {acc0} -> {acc1}"
        );
        assert!(gl.published() > 10);
    }

    #[test]
    fn replicas_converge_after_quiescence() {
        let mut gl = GossipLearning::new(
            data(6),
            cfg(),
            NetworkConfig {
                latency: Latency { min: 1, max: 8 },
                topology: Topology::Ring,
                seed: 3,
                ..NetworkConfig::default()
            },
            build,
        );
        gl.run(40);
        gl.network_mut().run_to_quiescence();
        assert!(
            gl.network().replicas_consistent(),
            "all replicas must hold the same transaction set"
        );
    }

    #[test]
    fn stale_views_during_run_consistent_at_the_end() {
        let mut gl = GossipLearning::new(
            data(6),
            cfg(),
            NetworkConfig {
                latency: Latency { min: 3, max: 10 },
                seed: 7,
                ..NetworkConfig::default()
            },
            build,
        );
        gl.ticks_per_activation = 1; // several activations per propagation
        gl.run(30);
        // mid-run, replicas are allowed to differ...
        gl.network_mut().run_to_quiescence();
        // ...but must reconcile once the wires drain.
        assert!(gl.network().replicas_consistent());
    }

    #[test]
    fn eval_cache_on_and_off_are_bit_identical() {
        // The learner's per-peer memoization must be invisible: same
        // publish/discard counts, same replica structure, same consensus
        // accuracy, byte-identical telemetry JSONL per seed.
        let run = |eval: bool, path: &std::path::Path| {
            let sink = lt_telemetry::JsonlSink::create(path).expect("create jsonl");
            let tel = lt_telemetry::Telemetry::new(sink);
            let mut c = cfg();
            c.hyper.tip_validation = true;
            c.hyper.accuracy_bias = 0.5;
            let mut gl = GossipLearning::new(data(6), c, NetworkConfig::default(), build)
                .with_eval_cache(eval);
            gl.set_telemetry(tel.clone());
            gl.run(40);
            gl.network_mut().run_to_quiescence();
            if eval {
                assert!(
                    tel.counter_value("eval_cache.hits") > 0,
                    "the memoized run must serve hits"
                );
            } else {
                assert_eq!(tel.counter_value("eval_cache.hits"), 0);
            }
            let structure: Vec<(u64, Vec<u32>)> = gl
                .network()
                .peer(0)
                .replica()
                .transactions()
                .iter()
                .map(|tx| {
                    (
                        tx.issuer,
                        tx.parents.iter().map(|p| p.index() as u32).collect(),
                    )
                })
                .collect();
            let (loss, acc) = gl.evaluate_peer(0);
            let published = gl.published();
            let discarded = gl.discarded();
            let bytes = std::fs::read(path).expect("read jsonl");
            let _ = std::fs::remove_file(path);
            (
                structure,
                loss.to_bits(),
                acc.to_bits(),
                published,
                discarded,
                bytes,
            )
        };
        let dir = std::env::temp_dir();
        let on = run(true, &dir.join("lt_gossip_eval_on.jsonl"));
        let off = run(false, &dir.join("lt_gossip_eval_off.jsonl"));
        assert_eq!(on.0, off.0, "replica structure must match");
        assert_eq!(on.1, off.1, "consensus loss must be bit-identical");
        assert_eq!(on.2, off.2, "consensus accuracy must be bit-identical");
        assert_eq!(on.3, off.3, "published count must match");
        assert_eq!(on.4, off.4, "discarded count must match");
        assert!(!on.5.is_empty());
        assert_eq!(on.5, off.5, "telemetry JSONL must be byte-identical");
    }

    #[test]
    fn parallel_training_on_and_off_are_bit_identical() {
        // Pooled gradient chunks must be invisible to gossip learning:
        // the same replica structure, consensus metrics, and publish
        // counts per seed whether chunks run on the worker pool or inline.
        let run = |parallel: bool| {
            let mut c = cfg();
            c.train_chunks = 4;
            c.train_parallel = parallel;
            let mut gl = GossipLearning::new(data(6), c, NetworkConfig::default(), build);
            gl.run(40);
            gl.network_mut().run_to_quiescence();
            let structure: Vec<(u64, Vec<u32>)> = gl
                .network()
                .peer(0)
                .replica()
                .transactions()
                .iter()
                .map(|tx| {
                    (
                        tx.issuer,
                        tx.parents.iter().map(|p| p.index() as u32).collect(),
                    )
                })
                .collect();
            let (loss, acc) = gl.evaluate_peer(0);
            (
                structure,
                loss.to_bits(),
                acc.to_bits(),
                gl.published(),
                gl.discarded(),
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0, off.0, "replica structure must match");
        assert_eq!(on.1, off.1, "consensus loss must be bit-identical");
        assert_eq!(on.2, off.2, "consensus accuracy must be bit-identical");
        assert_eq!(on.3, off.3, "published count must match");
        assert_eq!(on.4, off.4, "discarded count must match");
    }

    #[test]
    fn partition_learning_heals() {
        let mut gl = GossipLearning::new(data(6), cfg(), NetworkConfig::default(), build);
        gl.run(12);
        gl.network_mut().run_to_quiescence();
        gl.network_mut().partition(vec![0, 0, 0, 1, 1, 1]);
        gl.run(20);
        gl.network_mut().run_to_quiescence();
        assert!(
            !gl.network().replicas_consistent(),
            "partition should diverge"
        );
        gl.network_mut().heal();
        gl.network_mut().anti_entropy();
        assert!(
            gl.network().replicas_consistent(),
            "heal + anti-entropy must reconcile the sub-tangles"
        );
        // Both sub-histories survive in the merged ledger.
        let (_, acc) = gl.evaluate_peer(0);
        assert!(acc > 0.3, "merged consensus still usable: {acc}");
    }
}
