//! Discrete-event gossip network simulator with deterministic fault
//! injection, peer crash/recovery, and a pull-based repair protocol.

use crate::fault::{FaultPlan, Recovery, RepairConfig};
use crate::message::{ContentId, TxMessage};
use crate::peer::{Peer, ReceiveOutcome};
use crate::transport::{ProtocolMsg, Transport};
use rand::RngExt;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::path::PathBuf;
use tangle_ledger::TxId;
use tinynn::rng::{derive, seeded};

/// Connection structure between peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every peer connects to every other peer.
    FullMesh,
    /// Peers form a cycle (worst-case diameter).
    Ring,
    /// Each peer gets `degree` random distinct neighbours (undirected).
    RandomRegular {
        /// Neighbour count per peer (approximate: construction is by
        /// repeated random matching, self-loops and duplicates skipped).
        degree: usize,
    },
}

/// Per-link latency range in ticks (inclusive).
#[derive(Clone, Copy, Debug)]
pub struct Latency {
    /// Minimum delivery delay.
    pub min: u64,
    /// Maximum delivery delay.
    pub max: u64,
}

/// Network configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Connection structure.
    pub topology: Topology,
    /// Per-hop latency.
    pub latency: Latency,
    /// Per-hop message loss probability.
    pub loss: f64,
    /// Required proof-of-work difficulty for admission (0 = off).
    pub pow_difficulty: u32,
    /// Seed for latency, loss, and topology randomness.
    pub seed: u64,
    /// Bound on each peer's orphan buffer; the oldest orphan is evicted
    /// (and forgotten, so repair can re-fetch it) past this size.
    pub orphan_cap: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            topology: Topology::FullMesh,
            latency: Latency { min: 1, max: 3 },
            loss: 0.0,
            pow_difficulty: 0,
            seed: 0,
            orphan_cap: crate::peer::DEFAULT_ORPHAN_CAP,
        }
    }
}

enum Payload {
    Deliver {
        from: usize,
        to: usize,
        pkt: ProtocolMsg,
    },
    Crash {
        peer: usize,
    },
    Restart {
        peer: usize,
        recovery: Recovery,
    },
    RepairTick {
        peer: usize,
    },
}

struct Scheduled {
    at: u64,
    seq: u64,
    payload: Payload,
}

/// Running statistics of the simulated network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered to a peer.
    pub delivered: u64,
    /// Messages dropped by the loss model, a partition, or fault drops.
    pub dropped: u64,
    /// Deliveries that were duplicates at the receiver.
    pub duplicates: u64,
    /// Deliveries buffered as orphans.
    pub orphaned: u64,
    /// Deliveries rejected by the receiver (invalid proof-of-work or a
    /// payload that failed checksum validation).
    pub rejected: u64,
    /// Deliveries discarded because the destination peer was down.
    pub discarded: u64,
    /// Repair-protocol re-requests issued for missing transactions.
    pub rerequests: u64,
    /// Orphans evicted by the per-peer buffer cap.
    pub evicted: u64,
}

/// Per-peer state of the pull-based repair protocol.
#[derive(Default)]
struct PeerRepair {
    /// Missing content id → (re-requests issued, next re-request tick).
    attempts: BTreeMap<ContentId, (u32, u64)>,
    /// Earliest scheduled repair tick, if any (suppresses duplicates).
    next_tick: Option<u64>,
    /// Restart time, until the peer is observed fully re-solidified.
    recovering_since: Option<u64>,
}

struct FaultState {
    plan: FaultPlan,
    rng: tinynn::rng::Rng,
}

/// A gossip network of peers, each holding its own tangle replica.
///
/// Messages published by a peer flood the topology: every peer forwards a
/// first-seen valid message to all neighbours except the link it arrived
/// on. Delivery order is randomized by per-hop latency, so replicas see
/// different insertion orders (and rely on orphan buffering), yet converge
/// to the same transaction set.
///
/// # Faults and repair
///
/// [`Network::install_faults`] arms a deterministic [`FaultPlan`]: peers
/// crash and restart on schedule (discarding traffic while down, then
/// rejoining empty or from a [`Network::set_checkpointing`] checkpoint),
/// and links additionally drop, duplicate, corrupt, or reorder traffic,
/// all driven by a dedicated fault RNG so runs reproduce per fault seed.
/// Losses are healed by protocol, not by fiat: peers re-request missing
/// orphan ancestors from neighbours with bounded retries and exponential
/// backoff, and advertise their heads so neighbours push back the delta
/// (see [`Network::repair_to_quiescence`]). The omniscient
/// [`Network::anti_entropy`] survives only as a test ground truth.
pub struct Network {
    peers: Vec<Peer>,
    /// Lifecycle per peer: `false` while crashed.
    up: Vec<bool>,
    adj: Vec<Vec<usize>>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    events: HashMap<u64, Scheduled>,
    now: u64,
    seq: u64,
    rng: tinynn::rng::Rng,
    /// Partition group per peer; messages crossing groups are dropped.
    groups: Vec<usize>,
    cfg: NetworkConfig,
    /// The shared genesis message (for empty rejoins and checkpoint
    /// validation).
    genesis: TxMessage,
    /// Statistics.
    pub stats: NetStats,
    telemetry: lt_telemetry::Telemetry,
    faults: Option<FaultState>,
    repair_cfg: RepairConfig,
    repair: Vec<PeerRepair>,
    /// Eviction counts already mirrored into `stats.evicted`.
    evicted_synced: Vec<u64>,
    /// Restart count per peer. A restart replaces the replica wholesale
    /// (checkpoint or empty), so anything derived from the old replica —
    /// notably per-peer evaluation caches — must be dropped when this
    /// changes (see [`Network::restart_count`]).
    restarts: Vec<u64>,
    checkpoint_every: u64,
    next_checkpoint_at: u64,
    checkpoints: Vec<Option<Vec<u8>>>,
    checkpoint_dir: Option<PathBuf>,
}

impl Network {
    /// Build a network of `n` peers sharing the same `genesis` message.
    pub fn new(n: usize, genesis: &TxMessage, cfg: NetworkConfig) -> Self {
        assert!(n >= 2, "need at least two peers");
        let peers: Vec<Peer> = (0..n)
            .map(|i| Peer::new(i, genesis, cfg.pow_difficulty).with_orphan_cap(cfg.orphan_cap))
            .collect();
        let mut rng = seeded(derive(cfg.seed, 0x6055));
        let adj = build_topology(n, cfg.topology, &mut rng);
        Self {
            peers,
            up: vec![true; n],
            adj,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            now: 0,
            seq: 0,
            rng,
            groups: vec![0; n],
            cfg,
            genesis: genesis.clone(),
            stats: NetStats::default(),
            telemetry: lt_telemetry::Telemetry::disabled(),
            faults: None,
            repair_cfg: RepairConfig::default(),
            repair: (0..n).map(|_| PeerRepair::default()).collect(),
            evicted_synced: vec![0; n],
            restarts: vec![0; n],
            checkpoint_every: 0,
            next_checkpoint_at: u64::MAX,
            checkpoints: vec![None; n],
            checkpoint_dir: None,
        }
    }

    /// Attach an observability handle. The network then mirrors its
    /// [`NetStats`] bookkeeping into the `gossip.delivered`,
    /// `gossip.dropped`, `gossip.duplicates`, `gossip.orphaned`,
    /// `gossip.rejected`, `gossip.rerequests`, and
    /// `gossip.orphan_evictions` counters (incremented at exactly the
    /// same points), records fault-engine activity under `fault.crash`,
    /// `fault.restart`, `fault.recovered`, `fault.discarded`, and
    /// `fault.checkpoint`, emits a structured `Fault` event per
    /// transition, and fills the `fault.recovery_ticks` histogram with
    /// restart-to-resolidified latencies.
    pub fn set_telemetry(&mut self, telemetry: lt_telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Arm a deterministic fault schedule: crash/restart events enter the
    /// event queue, and link perturbations apply to every subsequent hop,
    /// driven by an RNG derived from [`FaultPlan::seed`] (independent of
    /// the network seed, so a benign plan changes nothing).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for c in &plan.crashes {
            assert!(c.peer < self.peers.len(), "crash peer out of range");
            self.push_event(c.at, Payload::Crash { peer: c.peer });
            if let Some(r) = c.restart_at {
                assert!(r > c.at, "restart must follow its crash");
                self.push_event(
                    r,
                    Payload::Restart {
                        peer: c.peer,
                        recovery: c.recovery,
                    },
                );
            }
        }
        let rng = seeded(derive(plan.seed, 0xFA017));
        self.faults = Some(FaultState { plan, rng });
    }

    /// Override the repair-protocol parameters (on by default).
    pub fn set_repair(&mut self, cfg: RepairConfig) {
        self.repair_cfg = cfg;
    }

    /// Periodically snapshot every live peer's replica (every `every`
    /// ticks; 0 disables). Snapshots are kept in memory and, when `dir`
    /// is given, also written to `dir/peer<i>.ckpt` via the
    /// `learning_tangle::persist` format so a restart can recover them
    /// even across processes. Crashed peers restarting with
    /// [`Recovery::FromCheckpoint`] resume from their latest snapshot.
    pub fn set_checkpointing(&mut self, every: u64, dir: Option<PathBuf>) {
        self.checkpoint_every = every;
        self.next_checkpoint_at = if every > 0 {
            self.now + every
        } else {
            u64::MAX
        };
        if let Some(d) = &dir {
            std::fs::create_dir_all(d).expect("create checkpoint dir");
        }
        self.checkpoint_dir = dir;
    }

    /// Current simulated time (ticks).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The peers (and their replicas).
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// One peer.
    pub fn peer(&self, i: usize) -> &Peer {
        &self.peers[i]
    }

    /// Is peer `i` currently up?
    pub fn is_up(&self, i: usize) -> bool {
        self.up[i]
    }

    /// How many times peer `i` has restarted after a crash. Each restart
    /// replaces the replica wholesale, so derived per-peer state (eval
    /// caches, anything indexed by replica-local tx ids) is stale once
    /// this number changes.
    pub fn restart_count(&self, i: usize) -> u64 {
        self.restarts[i]
    }

    /// Neighbours of peer `i`.
    pub fn neighbours(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Publish a message from `origin`: the origin inserts it immediately
    /// and gossips it to its neighbours. A crashed origin publishes
    /// nothing.
    pub fn publish(&mut self, origin: usize, msg: TxMessage) {
        if !self.up[origin] {
            return;
        }
        let outcome = self.peers[origin].receive(&msg);
        if outcome == ReceiveOutcome::Accepted || outcome == ReceiveOutcome::OrphanBuffered {
            self.forward(origin, usize::MAX, msg);
        }
    }

    fn push_event(&mut self, at: u64, payload: Payload) {
        self.seq += 1;
        let seq = self.seq;
        self.queue.push(Reverse((at, seq)));
        self.events.insert(seq, Scheduled { at, seq, payload });
    }

    fn forward(&mut self, from: usize, came_from: usize, msg: TxMessage) {
        let neighbours = self.adj[from].clone();
        for to in neighbours {
            if to == came_from {
                continue;
            }
            self.enqueue_hop(from, to, ProtocolMsg::Publish(msg.clone()));
        }
    }

    /// Send one packet over the `from → to` link, applying the partition,
    /// the base loss/latency model, and — when a fault plan is armed —
    /// the extra drop/duplicate/corrupt/reorder perturbations. The fault
    /// RNG is only consulted for non-zero rates, so a benign plan leaves
    /// the base randomness stream untouched. Returns whether at least one
    /// copy was scheduled for delivery.
    fn enqueue_hop(&mut self, from: usize, to: usize, pkt: ProtocolMsg) -> bool {
        if self.groups[from] != self.groups[to] {
            self.stats.dropped += 1;
            self.telemetry.count("gossip.dropped", 1);
            return false;
        }
        if self.cfg.loss > 0.0 && self.rng.random_range(0.0..1.0) < self.cfg.loss {
            self.stats.dropped += 1;
            self.telemetry.count("gossip.dropped", 1);
            return false;
        }
        let base_delay = self
            .rng
            .random_range(self.cfg.latency.min..=self.cfg.latency.max.max(self.cfg.latency.min));
        let mut pkt = pkt;
        let mut delays = vec![base_delay];
        if let Some(f) = &mut self.faults {
            if f.plan.drop > 0.0 && f.rng.random_range(0.0..1.0) < f.plan.drop {
                self.stats.dropped += 1;
                self.telemetry.count("gossip.dropped", 1);
                return false;
            }
            if f.plan.duplicate > 0.0 && f.rng.random_range(0.0..1.0) < f.plan.duplicate {
                // the copy takes its own latency draw (below)
                delays.push(base_delay);
            }
            if f.plan.corrupt > 0.0 {
                if let ProtocolMsg::Publish(msg) | ProtocolMsg::Delta(msg) = &mut pkt {
                    if f.rng.random_range(0.0..1.0) < f.plan.corrupt && !msg.payload.is_empty() {
                        let idx = f.rng.random_range(0..msg.payload.len());
                        let bit = 1u8 << f.rng.random_range(0..8u32);
                        let mut bytes = msg.payload.to_vec();
                        bytes[idx] ^= bit;
                        msg.payload = bytes.into();
                    }
                }
            }
            if f.plan.reorder_jitter > 0 || delays.len() > 1 {
                for d in delays.iter_mut() {
                    if f.plan.reorder_jitter > 0 {
                        *d += f.rng.random_range(0..=f.plan.reorder_jitter);
                    }
                }
                if delays.len() > 1 {
                    // independent latency for the duplicate copy
                    delays[1] = f.rng.random_range(
                        self.cfg.latency.min..=self.cfg.latency.max.max(self.cfg.latency.min),
                    ) + if f.plan.reorder_jitter > 0 {
                        f.rng.random_range(0..=f.plan.reorder_jitter)
                    } else {
                        0
                    };
                }
            }
        }
        let last = delays.len() - 1;
        for (i, delay) in delays.iter().enumerate() {
            let p = if i == last {
                // move the original on the final copy
                std::mem::replace(&mut pkt, ProtocolMsg::Request { wants: Vec::new() })
            } else {
                pkt.clone()
            };
            self.push_event(self.now + delay, Payload::Deliver { from, to, pkt: p });
        }
        true
    }

    /// Deliver the next scheduled event. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((at, key))) = self.queue.pop() else {
            return false;
        };
        let ev = self.events.remove(&key).expect("event recorded");
        debug_assert_eq!(ev.at, at);
        debug_assert_eq!(ev.seq, key);
        self.take_due_checkpoints(at);
        let tel = self.telemetry.clone();
        let _span = tel.span("gossip.deliver_us");
        self.now = self.now.max(at);
        match ev.payload {
            Payload::Deliver { from, to, pkt } => self.deliver(from, to, pkt),
            Payload::Crash { peer } => self.crash(peer),
            Payload::Restart { peer, recovery } => self.restart(peer, recovery),
            Payload::RepairTick { peer } => self.repair_tick(peer),
        }
        true
    }

    /// Snapshot all live peers when simulated time crosses a checkpoint
    /// boundary. Only the last crossed boundary materializes a snapshot:
    /// nothing was delivered in between, so earlier intermediate
    /// snapshots would be byte-identical anyway.
    fn take_due_checkpoints(&mut self, upto: u64) {
        if self.checkpoint_every == 0 || upto < self.next_checkpoint_at {
            return;
        }
        for i in 0..self.peers.len() {
            if !self.up[i] {
                continue;
            }
            let bytes = self.peers[i].checkpoint_bytes();
            if let Some(dir) = &self.checkpoint_dir {
                let _ = std::fs::write(dir.join(format!("peer{i}.ckpt")), &bytes);
            }
            self.checkpoints[i] = Some(bytes);
        }
        let periods = (upto - self.next_checkpoint_at) / self.checkpoint_every + 1;
        self.next_checkpoint_at += periods * self.checkpoint_every;
        self.telemetry.count("fault.checkpoint", 1);
    }

    fn deliver(&mut self, from: usize, to: usize, pkt: ProtocolMsg) {
        if !self.up[to] {
            self.stats.discarded += 1;
            self.telemetry.count("fault.discarded", 1);
            return;
        }
        match pkt {
            // Publish and Delta carry the same payload and are handled
            // identically; only the wire-level intent differs.
            ProtocolMsg::Publish(msg) | ProtocolMsg::Delta(msg) => {
                self.stats.delivered += 1;
                self.telemetry.count("gossip.delivered", 1);
                match self.peers[to].receive(&msg) {
                    ReceiveOutcome::Accepted => {
                        self.forward(to, from, msg);
                        self.after_receive(to);
                    }
                    ReceiveOutcome::OrphanBuffered => {
                        self.stats.orphaned += 1;
                        self.telemetry.count("gossip.orphaned", 1);
                        self.forward(to, from, msg);
                        self.after_receive(to);
                        if self.repair_cfg.enabled {
                            let at = self.now + self.repair_cfg.delay;
                            self.schedule_repair(to, at);
                        }
                    }
                    ReceiveOutcome::Duplicate => {
                        self.stats.duplicates += 1;
                        self.telemetry.count("gossip.duplicates", 1);
                    }
                    ReceiveOutcome::InvalidPow | ReceiveOutcome::Corrupt => {
                        self.stats.rejected += 1;
                        self.telemetry.count("gossip.rejected", 1);
                    }
                }
            }
            ProtocolMsg::Advertise { heads } => {
                let unknown: Vec<ContentId> = heads
                    .iter()
                    .copied()
                    .filter(|h| !self.peers[to].has_seen(*h))
                    .collect();
                let delta = self.peers[to].delta_for(&heads);
                for m in delta {
                    self.enqueue_hop(to, from, ProtocolMsg::Delta(m));
                }
                if !unknown.is_empty() && self.repair_cfg.enabled {
                    let first_due = self.now + self.repair_cfg.delay;
                    let st = &mut self.repair[to];
                    for cid in unknown {
                        let entry = st.attempts.entry(cid).or_insert((0, first_due));
                        if entry.0 >= self.repair_cfg.max_retries {
                            // fresh evidence the tx exists: retry anew
                            *entry = (0, first_due);
                        }
                    }
                    self.schedule_repair(to, first_due);
                }
            }
            ProtocolMsg::Request { wants } => {
                let msgs: Vec<TxMessage> = wants
                    .iter()
                    .filter_map(|w| self.peers[to].message_for(*w).cloned())
                    .collect();
                for m in msgs {
                    self.enqueue_hop(to, from, ProtocolMsg::Delta(m));
                }
            }
        }
    }

    /// Bookkeeping after a peer absorbed data: mirror orphan evictions
    /// into the stats and close out crash recovery once the peer is
    /// fully re-solidified (no orphans, nothing missing).
    fn after_receive(&mut self, p: usize) {
        let e = self.peers[p].evictions();
        if e > self.evicted_synced[p] {
            let d = e - self.evicted_synced[p];
            self.stats.evicted += d;
            self.telemetry.count("gossip.orphan_evictions", d);
            self.evicted_synced[p] = e;
        }
        if self.repair[p].recovering_since.is_some()
            && self.peers[p].orphan_count() == 0
            && self.peers[p].missing().is_empty()
        {
            let t0 = self.repair[p].recovering_since.take().expect("checked");
            let now = self.now;
            self.telemetry.record("fault.recovery_ticks", now - t0);
            self.telemetry.count("fault.recovered", 1);
            self.telemetry.emit(|| {
                lt_telemetry::Event::Fault(lt_telemetry::FaultEvent {
                    at: now,
                    peer: p as u64,
                    kind: "recovered".to_string(),
                })
            });
        }
    }

    fn crash(&mut self, p: usize) {
        if !self.up[p] {
            return;
        }
        self.up[p] = false;
        self.repair[p] = PeerRepair::default();
        self.telemetry.count("fault.crash", 1);
        let now = self.now;
        self.telemetry.emit(|| {
            lt_telemetry::Event::Fault(lt_telemetry::FaultEvent {
                at: now,
                peer: p as u64,
                kind: "crash".to_string(),
            })
        });
    }

    fn restart(&mut self, p: usize, recovery: Recovery) {
        if self.up[p] {
            return;
        }
        let restored = match recovery {
            Recovery::FromCheckpoint => self.restore_from_checkpoint(p),
            Recovery::Empty => None,
        };
        self.peers[p] = restored.unwrap_or_else(|| {
            Peer::new(p, &self.genesis, self.cfg.pow_difficulty)
                .with_orphan_cap(self.cfg.orphan_cap)
        });
        self.evicted_synced[p] = 0;
        self.restarts[p] += 1;
        self.up[p] = true;
        self.repair[p] = PeerRepair {
            recovering_since: Some(self.now),
            ..PeerRepair::default()
        };
        self.telemetry.count("fault.restart", 1);
        let now = self.now;
        self.telemetry.emit(|| {
            lt_telemetry::Event::Fault(lt_telemetry::FaultEvent {
                at: now,
                peer: p as u64,
                kind: "restart".to_string(),
            })
        });
        // Pull-based re-solidification: advertise our (possibly stale)
        // heads so each neighbour pushes back the delta we are missing.
        let heads = self.peers[p].heads();
        let nbrs = self.adj[p].clone();
        for nb in nbrs {
            if self.up[nb] {
                self.enqueue_hop(
                    p,
                    nb,
                    ProtocolMsg::Advertise {
                        heads: heads.clone(),
                    },
                );
            }
        }
    }

    /// Latest checkpoint for `p`, from memory or the checkpoint
    /// directory; `None` when absent, unparsable, or from a different
    /// genesis (never trust a checkpoint blindly).
    fn restore_from_checkpoint(&mut self, p: usize) -> Option<Peer> {
        let bytes: Option<Vec<u8>> = self.checkpoints[p].clone().or_else(|| {
            self.checkpoint_dir
                .as_ref()
                .and_then(|d| std::fs::read(d.join(format!("peer{p}.ckpt"))).ok())
        });
        let peer =
            Peer::from_checkpoint(p, &bytes?, self.cfg.pow_difficulty, self.cfg.orphan_cap).ok()?;
        (peer.content_id_of(TxId(0)) == self.genesis.content_id()).then_some(peer)
    }

    /// Schedule a repair tick for peer `p` unless one is already due no
    /// later than `at`.
    fn schedule_repair(&mut self, p: usize, at: u64) {
        if !self.repair_cfg.enabled {
            return;
        }
        if self.repair[p].next_tick.is_some_and(|t| t <= at) {
            return;
        }
        self.repair[p].next_tick = Some(at);
        self.push_event(at, Payload::RepairTick { peer: p });
    }

    /// One round of the pull protocol for peer `p`: re-request every due
    /// missing transaction from a (rotating) live neighbour, back off
    /// exponentially per transaction, and reschedule for the earliest
    /// future retry.
    fn repair_tick(&mut self, p: usize) {
        if self.repair[p].next_tick.is_some_and(|t| t <= self.now) {
            self.repair[p].next_tick = None;
        }
        if !self.up[p] || !self.repair_cfg.enabled {
            return;
        }
        let now = self.now;
        let cfg = self.repair_cfg;
        let missing: Vec<ContentId> = self.peers[p].missing().iter().copied().collect();
        let nbrs: Vec<usize> = self.adj[p]
            .iter()
            .copied()
            .filter(|&q| self.up[q] && self.groups[p] == self.groups[q])
            .collect();
        let mut sends: BTreeMap<usize, Vec<ContentId>> = BTreeMap::new();
        let mut next_due: Option<u64> = None;
        {
            let st = &mut self.repair[p];
            st.attempts
                .retain(|cid, _| missing.binary_search(cid).is_ok());
            for cid in &missing {
                st.attempts.entry(*cid).or_insert((0, now));
            }
            if nbrs.is_empty() {
                return;
            }
            for (cid, (attempt, next_at)) in st.attempts.iter_mut() {
                if *attempt >= cfg.max_retries {
                    continue;
                }
                if *next_at > now {
                    next_due = Some(next_due.map_or(*next_at, |d| d.min(*next_at)));
                    continue;
                }
                let nb = nbrs[(*attempt as usize + cid.0 as usize) % nbrs.len()];
                sends.entry(nb).or_default().push(*cid);
                *attempt += 1;
                *next_at = now + (cfg.backoff_base << (*attempt).min(16));
                if *attempt < cfg.max_retries {
                    next_due = Some(next_due.map_or(*next_at, |d| d.min(*next_at)));
                }
            }
        }
        let total: u64 = sends.values().map(|v| v.len() as u64).sum();
        if total > 0 {
            self.stats.rerequests += total;
            self.telemetry.count("gossip.rerequests", total);
        }
        for (nb, wants) in sends {
            self.enqueue_hop(p, nb, ProtocolMsg::Request { wants });
        }
        if let Some(t) = next_due {
            self.schedule_repair(p, t);
        }
    }

    /// Deliver everything currently in flight (and whatever it triggers,
    /// including scheduled faults and repair retries).
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }

    /// Advance simulated time by `ticks`, delivering only the messages due
    /// in that window (later messages stay in flight — this is what makes
    /// peer views genuinely stale during learning).
    pub fn advance(&mut self, ticks: u64) -> u64 {
        let horizon = self.now + ticks;
        let mut steps = 0;
        while let Some(Reverse((at, _))) = self.queue.peek() {
            if *at > horizon {
                break;
            }
            self.step();
            steps += 1;
        }
        self.now = horizon;
        steps
    }

    /// Drive the repair protocol to quiescence: repeated rounds in which
    /// every live peer advertises its heads to its neighbours (through
    /// the same lossy, fault-injected links as all other traffic),
    /// followed by a full drain. Terminates once two consecutive rounds
    /// change nothing and leave no orphans or missing transactions —
    /// i.e. the protocol has nothing left it could do — or after
    /// `max_rounds`. Returns whether quiescence was reached.
    ///
    /// This replaces [`Network::anti_entropy`] as the sanctioned way to
    /// reconcile after loss, churn, or a healed partition: every byte
    /// still travels peer-to-peer over the simulated links.
    pub fn repair_to_quiescence(&mut self, max_rounds: usize) -> bool {
        self.run_to_quiescence();
        let mut stable = 0;
        for _ in 0..max_rounds {
            let before: Vec<usize> = self.peers.iter().map(|p| p.len()).collect();
            for p in 0..self.peers.len() {
                if !self.up[p] {
                    continue;
                }
                let heads = self.peers[p].heads();
                let nbrs = self.adj[p].clone();
                for nb in nbrs {
                    if self.up[nb] {
                        self.enqueue_hop(
                            p,
                            nb,
                            ProtocolMsg::Advertise {
                                heads: heads.clone(),
                            },
                        );
                    }
                }
            }
            self.run_to_quiescence();
            let unchanged = self.peers.iter().zip(&before).all(|(p, &b)| p.len() == b);
            let clean = (0..self.peers.len()).all(|i| {
                !self.up[i]
                    || (self.peers[i].orphan_count() == 0 && self.peers[i].missing().is_empty())
            });
            if unchanged && clean {
                stable += 1;
                if stable >= 2 {
                    return true;
                }
            } else {
                stable = 0;
            }
        }
        false
    }

    /// Split the network: peers keep talking only within their group.
    /// `group_of[i]` assigns peer `i` to a group.
    pub fn partition(&mut self, group_of: Vec<usize>) {
        assert_eq!(group_of.len(), self.peers.len());
        self.groups = group_of;
    }

    /// Remove the partition. Does *not* synchronize by itself — run
    /// [`Self::repair_to_quiescence`] to reconcile via the repair
    /// protocol (or [`Self::anti_entropy`] in tests).
    pub fn heal(&mut self) {
        self.groups = vec![0; self.peers.len()];
    }

    /// Pairwise anti-entropy: every peer offers every neighbour all
    /// transactions the neighbour has not seen. Runs until no new
    /// transaction moves (handles multi-hop repair on sparse topologies).
    ///
    /// This is an *omniscient oracle* — it teleports state without using
    /// the simulated links — kept only as a ground truth for tests.
    /// Protocol-faithful reconciliation is [`Self::repair_to_quiescence`].
    pub fn anti_entropy(&mut self) {
        loop {
            let mut moved = false;
            for a in 0..self.peers.len() {
                if !self.up[a] {
                    continue;
                }
                for bi in 0..self.adj[a].len() {
                    let b = self.adj[a][bi];
                    if self.groups[a] != self.groups[b] || !self.up[b] {
                        continue;
                    }
                    let to_send: Vec<TxMessage> = self.peers[a]
                        .export_messages()
                        .into_iter()
                        .filter(|m| !self.peers[b].has_seen(m.content_id()))
                        .collect();
                    for m in to_send {
                        if self.peers[b].receive(&m) == ReceiveOutcome::Accepted {
                            moved = true;
                        }
                    }
                }
            }
            if !moved {
                return;
            }
        }
    }

    /// Are all replicas identical as transaction sets?
    pub fn replicas_consistent(&self) -> bool {
        let n0 = self.peers[0].len();
        if self.peers.iter().any(|p| p.len() != n0) {
            return false;
        }
        for i in 0..n0 {
            let cid = self.peers[0].content_id_of(tangle_ledger::TxId(i as u32));
            if self.peers.iter().any(|p| p.lookup(cid).is_none()) {
                return false;
            }
        }
        true
    }
}

/// The discrete-event simulator is the in-memory [`Transport`]: a send
/// becomes one hop through the partition/loss/latency/fault pipeline.
impl Transport for Network {
    fn send(&mut self, from: usize, to: usize, msg: ProtocolMsg) -> bool {
        self.enqueue_hop(from, to, msg)
    }
}

fn build_topology(n: usize, topology: Topology, rng: &mut tinynn::rng::Rng) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    let connect = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    };
    match topology {
        Topology::FullMesh => {
            for a in 0..n {
                for b in (a + 1)..n {
                    connect(a, b, &mut adj);
                }
            }
        }
        Topology::Ring => {
            for a in 0..n {
                connect(a, (a + 1) % n, &mut adj);
            }
        }
        Topology::RandomRegular { degree } => {
            // Ring backbone guarantees connectivity, then random chords.
            for a in 0..n {
                connect(a, (a + 1) % n, &mut adj);
            }
            for a in 0..n {
                while adj[a].len() < degree.max(2) {
                    let b = rng.random_range(0..n);
                    if b == a || adj[a].contains(&b) {
                        // avoid infinite loops on tiny networks
                        if adj[a].len() + 1 >= n {
                            break;
                        }
                        continue;
                    }
                    connect(a, b, &mut adj);
                }
            }
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashEvent;
    use crate::message::ContentId;
    use tinynn::ParamVec;

    fn genesis() -> TxMessage {
        TxMessage::create(&ParamVec(vec![0.0]), vec![], u64::MAX, 0, 0)
    }

    fn msg(parents: Vec<ContentId>, issuer: u64, v: f32) -> TxMessage {
        TxMessage::create(&ParamVec(vec![v]), parents, issuer, 0, 0)
    }

    /// Publish a chain of `k` transactions from peer 0, draining between
    /// publications.
    fn publish_chain(net: &mut Network, k: u64) {
        for i in 0..k {
            let tip = net.peer(0).replica().tips()[0];
            let cid = net.peer(0).content_id_of(tip);
            net.publish(0, msg(vec![cid], i, i as f32));
            net.run_to_quiescence();
        }
    }

    #[test]
    fn flood_reaches_every_peer_on_mesh() {
        let g = genesis();
        let mut net = Network::new(6, &g, NetworkConfig::default());
        let a = msg(vec![g.content_id()], 0, 1.0);
        net.publish(0, a.clone());
        net.run_to_quiescence();
        for p in net.peers() {
            assert_eq!(p.len(), 2, "peer {} missing the broadcast", p.id);
            assert!(p.lookup(a.content_id()).is_some());
        }
        assert!(net.replicas_consistent());
        assert!(net.stats.delivered > 0);
        assert!(net.stats.duplicates > 0, "mesh flooding creates duplicates");
    }

    #[test]
    fn ring_topology_converges_despite_diameter() {
        let g = genesis();
        let mut net = Network::new(
            8,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                ..NetworkConfig::default()
            },
        );
        // chain of three transactions published from different peers
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![a.content_id()], 3, 2.0);
        net.publish(0, a);
        net.publish(3, b); // peer 3 buffers b as orphan until a arrives
        net.run_to_quiescence();
        assert!(net.replicas_consistent());
        assert_eq!(net.peer(5).len(), 3);
    }

    #[test]
    fn out_of_order_delivery_handled_by_orphans() {
        let g = genesis();
        let mut net = Network::new(
            4,
            &g,
            NetworkConfig {
                latency: Latency { min: 1, max: 20 },
                seed: 9,
                ..NetworkConfig::default()
            },
        );
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![a.content_id()], 0, 2.0);
        let c = msg(vec![b.content_id()], 0, 3.0);
        net.publish(0, a);
        net.publish(0, b);
        net.publish(0, c);
        net.run_to_quiescence();
        assert!(net.replicas_consistent());
        for p in net.peers() {
            assert_eq!(p.len(), 4);
            assert_eq!(p.orphan_count(), 0);
        }
    }

    #[test]
    fn loss_repaired_by_anti_entropy() {
        let g = genesis();
        let mut net = Network::new(
            5,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                loss: 0.6,
                seed: 4,
                ..NetworkConfig::default()
            },
        );
        publish_chain(&mut net, 6);
        assert!(net.stats.dropped > 0, "loss model should drop something");
        net.anti_entropy();
        assert!(net.replicas_consistent(), "anti-entropy must repair losses");
        assert_eq!(net.peer(4).len(), 7);
    }

    #[test]
    fn loss_repaired_by_pull_protocol_alone() {
        let g = genesis();
        let mut net = Network::new(
            5,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                loss: 0.4,
                seed: 11,
                ..NetworkConfig::default()
            },
        );
        publish_chain(&mut net, 6);
        assert!(net.stats.dropped > 0, "loss model should drop something");
        assert!(net.repair_to_quiescence(64), "repair should quiesce");
        assert!(
            net.replicas_consistent(),
            "head advertisement + pull must repair losses without the oracle"
        );
        assert_eq!(net.peer(4).len(), 7);
    }

    #[test]
    fn partition_diverges_then_heals() {
        let g = genesis();
        let mut net = Network::new(6, &g, NetworkConfig::default());
        net.partition(vec![0, 0, 0, 1, 1, 1]);
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![g.content_id()], 5, 2.0);
        net.publish(0, a.clone());
        net.publish(5, b.clone());
        net.run_to_quiescence();
        // each side only has its own transaction
        assert!(net.peer(1).lookup(a.content_id()).is_some());
        assert!(net.peer(1).lookup(b.content_id()).is_none());
        assert!(net.peer(4).lookup(b.content_id()).is_some());
        assert!(net.peer(4).lookup(a.content_id()).is_none());
        assert!(!net.replicas_consistent());
        net.heal();
        assert!(net.repair_to_quiescence(32));
        assert!(net.replicas_consistent(), "heal + repair must reconcile");
        assert_eq!(net.peer(0).len(), 3);
    }

    #[test]
    fn random_regular_topology_is_connected() {
        let g = genesis();
        let mut net = Network::new(
            10,
            &g,
            NetworkConfig {
                topology: Topology::RandomRegular { degree: 3 },
                seed: 2,
                ..NetworkConfig::default()
            },
        );
        for i in 0..10 {
            assert!(!net.neighbours(i).is_empty());
        }
        let a = msg(vec![g.content_id()], 0, 1.0);
        net.publish(0, a);
        net.run_to_quiescence();
        assert!(net.replicas_consistent());
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        let g = genesis();
        let cfg = NetworkConfig {
            topology: Topology::RandomRegular { degree: 3 },
            latency: Latency { min: 1, max: 7 },
            loss: 0.2,
            seed: 5,
            ..NetworkConfig::default()
        };
        let mut plain = Network::new(8, &g, cfg);
        let mut armed = Network::new(8, &g, cfg);
        armed.install_faults(FaultPlan::default());
        publish_chain(&mut plain, 5);
        publish_chain(&mut armed, 5);
        assert_eq!(plain.stats, armed.stats, "benign plan must be invisible");
        for (a, b) in plain.peers().iter().zip(armed.peers()) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn crashed_peer_discards_traffic_and_rejoins_empty() {
        let g = genesis();
        let mut net = Network::new(4, &g, NetworkConfig::default());
        net.install_faults(FaultPlan {
            crashes: vec![CrashEvent {
                peer: 2,
                at: 1,
                restart_at: Some(40),
                recovery: Recovery::Empty,
            }],
            ..FaultPlan::default()
        });
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![a.content_id()], 0, 2.0);
        net.publish(0, a.clone());
        net.publish(0, b.clone());
        net.advance(30);
        assert!(!net.is_up(2));
        assert!(net.stats.discarded > 0, "down peer must discard deliveries");
        assert!(net.peer(2).lookup(a.content_id()).is_none());
        // restart fires at t=40; the advertise/pull exchange refills it
        assert!(net.repair_to_quiescence(32));
        assert!(net.is_up(2));
        assert!(net.replicas_consistent(), "rejoined peer must re-solidify");
        assert_eq!(net.peer(2).len(), 3);
    }

    #[test]
    fn crashed_peer_restores_from_checkpoint() {
        let g = genesis();
        let mut net = Network::new(4, &g, NetworkConfig::default());
        net.set_checkpointing(5, None);
        net.install_faults(FaultPlan {
            crashes: vec![CrashEvent {
                peer: 3,
                at: 20,
                restart_at: Some(30),
                recovery: Recovery::FromCheckpoint,
            }],
            ..FaultPlan::default()
        });
        let a = msg(vec![g.content_id()], 0, 1.0);
        net.publish(0, a.clone());
        net.advance(15); // a delivered everywhere; checkpoints at 5/10/15
        assert!(net.is_up(3));
        assert!(net.peer(3).lookup(a.content_id()).is_some());
        net.advance(7); // crash fires at t=20
        assert!(!net.is_up(3));
        let b = msg(vec![a.content_id()], 0, 2.0);
        net.publish(0, b.clone());
        net.advance(5); // b floods while 3 is down
        assert!(net.peer(3).lookup(b.content_id()).is_none());
        net.advance(10); // restart at t=30 restores the checkpoint
        assert!(net.is_up(3));
        assert!(
            net.peer(3).lookup(a.content_id()).is_some(),
            "checkpointed transaction must survive the crash"
        );
        assert!(net.repair_to_quiescence(32));
        assert!(net.replicas_consistent());
        assert!(net.peer(3).lookup(b.content_id()).is_some());
    }

    #[test]
    fn corruption_is_rejected_counted_and_repaired() {
        let g = genesis();
        let mut net = Network::new(
            5,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                seed: 3,
                ..NetworkConfig::default()
            },
        );
        net.install_faults(FaultPlan {
            seed: 9,
            corrupt: 0.35,
            ..FaultPlan::default()
        });
        publish_chain(&mut net, 6);
        assert!(net.stats.rejected > 0, "corrupted payloads must be counted");
        assert!(net.repair_to_quiescence(64));
        assert!(
            net.replicas_consistent(),
            "intact copies must be re-pulled after corruption"
        );
    }

    #[test]
    fn duplicate_injection_shows_up_as_duplicates() {
        let g = genesis();
        let cfg = NetworkConfig {
            topology: Topology::Ring,
            seed: 6,
            ..NetworkConfig::default()
        };
        let mut base = Network::new(5, &g, cfg);
        let mut dup = Network::new(5, &g, cfg);
        dup.install_faults(FaultPlan {
            seed: 2,
            duplicate: 0.5,
            ..FaultPlan::default()
        });
        publish_chain(&mut base, 4);
        publish_chain(&mut dup, 4);
        assert!(
            dup.stats.duplicates > base.stats.duplicates,
            "duplication faults must surface as receiver-side duplicates"
        );
        assert!(dup.replicas_consistent());
    }

    #[test]
    fn rerequests_back_off_and_stay_bounded() {
        let g = genesis();
        let mut net = Network::new(
            4,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                ..NetworkConfig::default()
            },
        );
        net.set_repair(RepairConfig {
            max_retries: 3,
            ..RepairConfig::default()
        });
        // publish a child whose parent no peer will ever hold
        let phantom = msg(vec![g.content_id()], 9, 99.0);
        let child = msg(vec![phantom.content_id()], 0, 1.0);
        net.publish(0, child);
        net.run_to_quiescence();
        assert!(net.stats.rerequests > 0, "missing parent must be requested");
        // 4 peers × ≤3 retries each; bounded even though the tx is gone
        assert!(net.stats.rerequests <= 12, "{}", net.stats.rerequests);
        assert!(net.peer(1).orphan_count() > 0);
    }
}
