//! Discrete-event gossip network simulator.

use crate::message::TxMessage;
use crate::peer::{Peer, ReceiveOutcome};
use rand::RngExt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tinynn::rng::{derive, seeded};

/// Connection structure between peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every peer connects to every other peer.
    FullMesh,
    /// Peers form a cycle (worst-case diameter).
    Ring,
    /// Each peer gets `degree` random distinct neighbours (undirected).
    RandomRegular {
        /// Neighbour count per peer (approximate: construction is by
        /// repeated random matching, self-loops and duplicates skipped).
        degree: usize,
    },
}

/// Per-link latency range in ticks (inclusive).
#[derive(Clone, Copy, Debug)]
pub struct Latency {
    /// Minimum delivery delay.
    pub min: u64,
    /// Maximum delivery delay.
    pub max: u64,
}

/// Network configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Connection structure.
    pub topology: Topology,
    /// Per-hop latency.
    pub latency: Latency,
    /// Per-hop message loss probability.
    pub loss: f64,
    /// Required proof-of-work difficulty for admission (0 = off).
    pub pow_difficulty: u32,
    /// Seed for latency, loss, and topology randomness.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            topology: Topology::FullMesh,
            latency: Latency { min: 1, max: 3 },
            loss: 0.0,
            pow_difficulty: 0,
            seed: 0,
        }
    }
}

struct Event {
    at: u64,
    seq: u64,
    from: usize,
    to: usize,
    msg: TxMessage,
}

/// Running statistics of the simulated network.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Messages delivered to a peer.
    pub delivered: u64,
    /// Messages dropped by the loss model or a partition.
    pub dropped: u64,
    /// Deliveries that were duplicates at the receiver.
    pub duplicates: u64,
    /// Deliveries buffered as orphans.
    pub orphaned: u64,
}

/// A gossip network of peers, each holding its own tangle replica.
///
/// Messages published by a peer flood the topology: every peer forwards a
/// first-seen valid message to all neighbours except the link it arrived
/// on. Delivery order is randomized by per-hop latency, so replicas see
/// different insertion orders (and rely on orphan buffering), yet converge
/// to the same transaction set.
pub struct Network {
    peers: Vec<Peer>,
    adj: Vec<Vec<usize>>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    events: std::collections::HashMap<u64, Event>,
    now: u64,
    seq: u64,
    rng: tinynn::rng::Rng,
    /// Partition group per peer; messages crossing groups are dropped.
    groups: Vec<usize>,
    cfg: NetworkConfig,
    /// Statistics.
    pub stats: NetStats,
    telemetry: lt_telemetry::Telemetry,
}

impl Network {
    /// Build a network of `n` peers sharing the same `genesis` message.
    pub fn new(n: usize, genesis: &TxMessage, cfg: NetworkConfig) -> Self {
        assert!(n >= 2, "need at least two peers");
        let peers = (0..n)
            .map(|i| Peer::new(i, genesis, cfg.pow_difficulty))
            .collect();
        let mut rng = seeded(derive(cfg.seed, 0x6055));
        let adj = build_topology(n, cfg.topology, &mut rng);
        Self {
            peers,
            adj,
            queue: BinaryHeap::new(),
            events: std::collections::HashMap::new(),
            now: 0,
            seq: 0,
            rng,
            groups: vec![0; n],
            cfg,
            stats: NetStats::default(),
            telemetry: lt_telemetry::Telemetry::disabled(),
        }
    }

    /// Attach an observability handle. The network then mirrors its
    /// [`NetStats`] bookkeeping into the `gossip.delivered`,
    /// `gossip.dropped`, `gossip.duplicates`, and `gossip.orphaned`
    /// counters, incremented at exactly the same points.
    pub fn set_telemetry(&mut self, telemetry: lt_telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Current simulated time (ticks).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The peers (and their replicas).
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// One peer.
    pub fn peer(&self, i: usize) -> &Peer {
        &self.peers[i]
    }

    /// Neighbours of peer `i`.
    pub fn neighbours(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Publish a message from `origin`: the origin inserts it immediately
    /// and gossips it to its neighbours.
    pub fn publish(&mut self, origin: usize, msg: TxMessage) {
        let outcome = self.peers[origin].receive(&msg);
        if outcome == ReceiveOutcome::Accepted || outcome == ReceiveOutcome::OrphanBuffered {
            self.forward(origin, usize::MAX, msg);
        }
    }

    fn forward(&mut self, from: usize, came_from: usize, msg: TxMessage) {
        let neighbours = self.adj[from].clone();
        for to in neighbours {
            if to == came_from {
                continue;
            }
            if self.groups[from] != self.groups[to] {
                self.stats.dropped += 1;
                self.telemetry.count("gossip.dropped", 1);
                continue;
            }
            if self.cfg.loss > 0.0 && self.rng.random_range(0.0..1.0) < self.cfg.loss {
                self.stats.dropped += 1;
                self.telemetry.count("gossip.dropped", 1);
                continue;
            }
            let delay = self.rng.random_range(
                self.cfg.latency.min..=self.cfg.latency.max.max(self.cfg.latency.min),
            );
            self.seq += 1;
            let key = self.seq;
            self.queue.push(Reverse((self.now + delay, key)));
            self.events.insert(
                key,
                Event {
                    at: self.now + delay,
                    seq: key,
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Deliver the next in-flight message. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((at, key))) = self.queue.pop() else {
            return false;
        };
        let ev = self.events.remove(&key).expect("event recorded");
        debug_assert_eq!(ev.at, at);
        debug_assert_eq!(ev.seq, key);
        let tel = self.telemetry.clone();
        let _span = tel.span("gossip.deliver_us");
        self.now = self.now.max(at);
        self.stats.delivered += 1;
        self.telemetry.count("gossip.delivered", 1);
        match self.peers[ev.to].receive(&ev.msg) {
            ReceiveOutcome::Accepted => self.forward(ev.to, ev.from, ev.msg),
            ReceiveOutcome::OrphanBuffered => {
                self.stats.orphaned += 1;
                self.telemetry.count("gossip.orphaned", 1);
                self.forward(ev.to, ev.from, ev.msg);
            }
            ReceiveOutcome::Duplicate => {
                self.stats.duplicates += 1;
                self.telemetry.count("gossip.duplicates", 1);
            }
            ReceiveOutcome::InvalidPow | ReceiveOutcome::Corrupt => {}
        }
        true
    }

    /// Deliver everything currently in flight (and whatever it triggers).
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }

    /// Advance simulated time by `ticks`, delivering only the messages due
    /// in that window (later messages stay in flight — this is what makes
    /// peer views genuinely stale during learning).
    pub fn advance(&mut self, ticks: u64) -> u64 {
        let horizon = self.now + ticks;
        let mut steps = 0;
        while let Some(Reverse((at, _))) = self.queue.peek() {
            if *at > horizon {
                break;
            }
            self.step();
            steps += 1;
        }
        self.now = horizon;
        steps
    }

    /// Split the network: peers keep talking only within their group.
    /// `group_of[i]` assigns peer `i` to a group.
    pub fn partition(&mut self, group_of: Vec<usize>) {
        assert_eq!(group_of.len(), self.peers.len());
        self.groups = group_of;
    }

    /// Remove the partition. Does *not* synchronize by itself — call
    /// [`Self::anti_entropy`] to exchange missed transactions.
    pub fn heal(&mut self) {
        self.groups = vec![0; self.peers.len()];
    }

    /// Pairwise anti-entropy: every peer offers every neighbour all
    /// transactions the neighbour has not seen. Runs until no new
    /// transaction moves (handles multi-hop repair on sparse topologies).
    pub fn anti_entropy(&mut self) {
        loop {
            let mut moved = false;
            for a in 0..self.peers.len() {
                for bi in 0..self.adj[a].len() {
                    let b = self.adj[a][bi];
                    if self.groups[a] != self.groups[b] {
                        continue;
                    }
                    let to_send: Vec<TxMessage> = self.peers[a]
                        .export_messages()
                        .into_iter()
                        .filter(|m| !self.peers[b].has_seen(m.content_id()))
                        .collect();
                    for m in to_send {
                        if self.peers[b].receive(&m) == ReceiveOutcome::Accepted {
                            moved = true;
                        }
                    }
                }
            }
            if !moved {
                return;
            }
        }
    }

    /// Are all replicas identical as transaction sets?
    pub fn replicas_consistent(&self) -> bool {
        let n0 = self.peers[0].len();
        if self.peers.iter().any(|p| p.len() != n0) {
            return false;
        }
        for i in 0..n0 {
            let cid = self.peers[0].content_id_of(tangle_ledger::TxId(i as u32));
            if self.peers.iter().any(|p| p.lookup(cid).is_none()) {
                return false;
            }
        }
        true
    }
}

fn build_topology(n: usize, topology: Topology, rng: &mut tinynn::rng::Rng) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    let connect = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    };
    match topology {
        Topology::FullMesh => {
            for a in 0..n {
                for b in (a + 1)..n {
                    connect(a, b, &mut adj);
                }
            }
        }
        Topology::Ring => {
            for a in 0..n {
                connect(a, (a + 1) % n, &mut adj);
            }
        }
        Topology::RandomRegular { degree } => {
            // Ring backbone guarantees connectivity, then random chords.
            for a in 0..n {
                connect(a, (a + 1) % n, &mut adj);
            }
            for a in 0..n {
                while adj[a].len() < degree.max(2) {
                    let b = rng.random_range(0..n);
                    if b == a || adj[a].contains(&b) {
                        // avoid infinite loops on tiny networks
                        if adj[a].len() + 1 >= n {
                            break;
                        }
                        continue;
                    }
                    connect(a, b, &mut adj);
                }
            }
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ContentId;
    use tinynn::ParamVec;

    fn genesis() -> TxMessage {
        TxMessage::create(&ParamVec(vec![0.0]), vec![], u64::MAX, 0, 0)
    }

    fn msg(parents: Vec<ContentId>, issuer: u64, v: f32) -> TxMessage {
        TxMessage::create(&ParamVec(vec![v]), parents, issuer, 0, 0)
    }

    #[test]
    fn flood_reaches_every_peer_on_mesh() {
        let g = genesis();
        let mut net = Network::new(6, &g, NetworkConfig::default());
        let a = msg(vec![g.content_id()], 0, 1.0);
        net.publish(0, a.clone());
        net.run_to_quiescence();
        for p in net.peers() {
            assert_eq!(p.len(), 2, "peer {} missing the broadcast", p.id);
            assert!(p.lookup(a.content_id()).is_some());
        }
        assert!(net.replicas_consistent());
        assert!(net.stats.delivered > 0);
        assert!(net.stats.duplicates > 0, "mesh flooding creates duplicates");
    }

    #[test]
    fn ring_topology_converges_despite_diameter() {
        let g = genesis();
        let mut net = Network::new(
            8,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                ..NetworkConfig::default()
            },
        );
        // chain of three transactions published from different peers
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![a.content_id()], 3, 2.0);
        net.publish(0, a);
        net.publish(3, b); // peer 3 buffers b as orphan until a arrives
        net.run_to_quiescence();
        assert!(net.replicas_consistent());
        assert_eq!(net.peer(5).len(), 3);
    }

    #[test]
    fn out_of_order_delivery_handled_by_orphans() {
        let g = genesis();
        let mut net = Network::new(
            4,
            &g,
            NetworkConfig {
                latency: Latency { min: 1, max: 20 },
                seed: 9,
                ..NetworkConfig::default()
            },
        );
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![a.content_id()], 0, 2.0);
        let c = msg(vec![b.content_id()], 0, 3.0);
        net.publish(0, a);
        net.publish(0, b);
        net.publish(0, c);
        net.run_to_quiescence();
        assert!(net.replicas_consistent());
        for p in net.peers() {
            assert_eq!(p.len(), 4);
            assert_eq!(p.orphan_count(), 0);
        }
    }

    #[test]
    fn loss_repaired_by_anti_entropy() {
        let g = genesis();
        let mut net = Network::new(
            5,
            &g,
            NetworkConfig {
                topology: Topology::Ring,
                loss: 0.6,
                seed: 4,
                ..NetworkConfig::default()
            },
        );
        for i in 0..6u64 {
            let tip = net.peer(0).replica().tips()[0];
            let cid = net.peer(0).content_id_of(tip);
            net.publish(0, msg(vec![cid], i, i as f32));
            net.run_to_quiescence();
        }
        assert!(net.stats.dropped > 0, "loss model should drop something");
        net.anti_entropy();
        assert!(net.replicas_consistent(), "anti-entropy must repair losses");
        assert_eq!(net.peer(4).len(), 7);
    }

    #[test]
    fn partition_diverges_then_heals() {
        let g = genesis();
        let mut net = Network::new(6, &g, NetworkConfig::default());
        net.partition(vec![0, 0, 0, 1, 1, 1]);
        let a = msg(vec![g.content_id()], 0, 1.0);
        let b = msg(vec![g.content_id()], 5, 2.0);
        net.publish(0, a.clone());
        net.publish(5, b.clone());
        net.run_to_quiescence();
        // each side only has its own transaction
        assert!(net.peer(1).lookup(a.content_id()).is_some());
        assert!(net.peer(1).lookup(b.content_id()).is_none());
        assert!(net.peer(4).lookup(b.content_id()).is_some());
        assert!(net.peer(4).lookup(a.content_id()).is_none());
        assert!(!net.replicas_consistent());
        net.heal();
        net.anti_entropy();
        assert!(net.replicas_consistent(), "heal + sync must reconcile");
        assert_eq!(net.peer(0).len(), 3);
    }

    #[test]
    fn random_regular_topology_is_connected() {
        let g = genesis();
        let mut net = Network::new(
            10,
            &g,
            NetworkConfig {
                topology: Topology::RandomRegular { degree: 3 },
                seed: 2,
                ..NetworkConfig::default()
            },
        );
        for i in 0..10 {
            assert!(!net.neighbours(i).is_empty());
        }
        let a = msg(vec![g.content_id()], 0, 1.0);
        net.publish(0, a);
        net.run_to_quiescence();
        assert!(net.replicas_consistent());
    }
}
