//! Content-addressed wire transactions.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tangle_ledger::pow;
use tinynn::{wire, ParamVec};

/// Globally unique, content-derived transaction identifier. Unlike the
/// per-replica [`tangle_ledger::TxId`] (an insertion index), a `ContentId`
/// is identical on every peer, so peers can reference parents before
/// inserting them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentId(pub u64);

impl std::fmt::Display for ContentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cid:{:016x}", self.0)
    }
}

/// A transaction as it travels the network.
#[derive(Clone, Debug)]
pub struct TxMessage {
    /// Parents referenced by content id (empty only for the genesis).
    pub parents: Vec<ContentId>,
    /// Issuing node.
    pub issuer: u64,
    /// Issuer-local logical time (diagnostic only).
    pub slot: u64,
    /// `tinynn::wire`-encoded model parameters.
    pub payload: Bytes,
    /// Hashcash nonce over the message digest.
    pub nonce: u64,
}

impl TxMessage {
    /// Build a message from parameters, solving proof-of-work at
    /// `difficulty` leading zero bits (0 = disabled).
    pub fn create(
        params: &ParamVec,
        parents: Vec<ContentId>,
        issuer: u64,
        slot: u64,
        difficulty: u32,
    ) -> Self {
        let payload = wire::encode(params);
        let base = Self {
            parents,
            issuer,
            slot,
            payload,
            nonce: 0,
        };
        let nonce = pow::solve(base.pow_digest(), difficulty);
        Self { nonce, ..base }
    }

    /// The digest the proof-of-work covers: everything except the nonce.
    fn pow_digest(&self) -> u64 {
        let mut buf = BytesMut::with_capacity(8 * (self.parents.len() + 2) + self.payload.len());
        for p in &self.parents {
            buf.put_u64_le(p.0);
        }
        buf.put_u64_le(self.issuer);
        buf.put_u64_le(self.slot);
        buf.put_slice(&self.payload);
        pow::digest(&buf)
    }

    /// Content id: digest over the full message including the nonce, so
    /// identical content hashes identically on every peer.
    pub fn content_id(&self) -> ContentId {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&self.pow_digest().to_le_bytes());
        buf[8..].copy_from_slice(&self.nonce.to_le_bytes());
        ContentId(pow::digest(&buf))
    }

    /// Check the proof-of-work at the given difficulty.
    pub fn verify_pow(&self, difficulty: u32) -> bool {
        pow::verify(self.pow_digest(), self.nonce, difficulty)
    }

    /// Decode the carried parameters, validating the payload checksum.
    pub fn decode_params(&self) -> Result<ParamVec, wire::WireError> {
        wire::decode(&self.payload)
    }

    /// Serialize the whole message to bytes (length-prefixed fields).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            4 + 8 * self.parents.len() + 8 + 8 + 8 + 4 + self.payload.len(),
        );
        buf.put_u32_le(self.parents.len() as u32);
        for p in &self.parents {
            buf.put_u64_le(p.0);
        }
        buf.put_u64_le(self.issuer);
        buf.put_u64_le(self.slot);
        buf.put_u64_le(self.nonce);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Deserialize a message; `None` on malformed framing.
    pub fn decode(mut b: &[u8]) -> Option<Self> {
        if b.len() < 4 {
            return None;
        }
        let np = b.get_u32_le() as usize;
        if b.len() < np * 8 + 8 + 8 + 8 + 4 {
            return None;
        }
        let parents = (0..np).map(|_| ContentId(b.get_u64_le())).collect();
        let issuer = b.get_u64_le();
        let slot = b.get_u64_le();
        let nonce = b.get_u64_le();
        let plen = b.get_u32_le() as usize;
        if b.len() != plen {
            return None;
        }
        Some(Self {
            parents,
            issuer,
            slot,
            payload: Bytes::copy_from_slice(b),
            nonce,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ParamVec {
        ParamVec(vec![1.0, -2.0, 3.5])
    }

    #[test]
    fn content_id_is_deterministic_and_content_sensitive() {
        let a = TxMessage::create(&params(), vec![ContentId(1)], 7, 0, 0);
        let b = TxMessage::create(&params(), vec![ContentId(1)], 7, 0, 0);
        assert_eq!(a.content_id(), b.content_id());
        let c = TxMessage::create(&params(), vec![ContentId(2)], 7, 0, 0);
        assert_ne!(a.content_id(), c.content_id());
        let d = TxMessage::create(&ParamVec(vec![9.0]), vec![ContentId(1)], 7, 0, 0);
        assert_ne!(a.content_id(), d.content_id());
    }

    #[test]
    fn pow_gating() {
        let m = TxMessage::create(&params(), vec![], 1, 0, 10);
        assert!(m.verify_pow(10));
        assert!(m.verify_pow(0));
        let forged = TxMessage {
            nonce: m.nonce + 1,
            ..m.clone()
        };
        // overwhelmingly likely to fail at difficulty 10
        assert!(!forged.verify_pow(10) || forged.nonce == m.nonce);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = TxMessage::create(&params(), vec![ContentId(5), ContentId(9)], 3, 11, 4);
        let enc = m.encode();
        let d = TxMessage::decode(&enc).expect("valid frame");
        assert_eq!(d.parents, m.parents);
        assert_eq!(d.issuer, 3);
        assert_eq!(d.slot, 11);
        assert_eq!(d.nonce, m.nonce);
        assert_eq!(d.content_id(), m.content_id());
        assert_eq!(d.decode_params().unwrap(), params());
    }

    #[test]
    fn malformed_frames_rejected() {
        let m = TxMessage::create(&params(), vec![ContentId(5)], 3, 0, 0);
        let enc = m.encode();
        assert!(TxMessage::decode(&enc[..3]).is_none());
        assert!(TxMessage::decode(&enc[..enc.len() - 1]).is_none());
        assert!(TxMessage::decode(&[]).is_none());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let m = TxMessage::create(&params(), vec![], 1, 0, 0);
        let mut enc = m.encode().to_vec();
        let n = enc.len();
        enc[n - 10] ^= 0x20; // inside the wire payload values
        let d = TxMessage::decode(&enc).expect("framing still valid");
        assert!(d.decode_params().is_err(), "checksum must catch corruption");
    }
}
