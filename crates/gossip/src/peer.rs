//! A peer's local replica of the tangle.

use crate::message::{ContentId, TxMessage};
use learning_tangle::node::ModelParams;
use learning_tangle::persist::{self, PersistError};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;
use tangle_ledger::{Tangle, TxId};

/// Default bound on the per-peer orphan buffer (see
/// [`Peer::with_orphan_cap`]).
pub const DEFAULT_ORPHAN_CAP: usize = 1024;

/// What happened when a peer processed an incoming message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// Inserted into the replica (possibly flushing buffered orphans).
    Accepted,
    /// Already known (replica or orphan buffer) — do not re-gossip.
    Duplicate,
    /// Parents missing; buffered until they arrive.
    OrphanBuffered,
    /// Proof-of-work below the required difficulty — dropped.
    InvalidPow,
    /// Payload failed checksum validation — dropped.
    Corrupt,
}

/// One network participant's view of the ledger.
pub struct Peer {
    /// Peer index (= the node id it trains as).
    pub id: usize,
    replica: Tangle<ModelParams>,
    /// content id → local transaction id.
    by_content: HashMap<ContentId, TxId>,
    /// local id → content id (for re-gossip and sync).
    content_of: Vec<ContentId>,
    /// Original wire messages in insertion order (index 0 = genesis),
    /// kept verbatim so sync re-sends byte-identical messages (content
    /// ids cover the PoW nonce).
    archive: Vec<TxMessage>,
    /// Messages waiting for missing parents, keyed by their own id.
    orphans: HashMap<ContentId, TxMessage>,
    /// Orphan arrival order: drives both bounded eviction (oldest first)
    /// and deterministic flush order. May hold stale ids of orphans that
    /// have since flushed; consumers skip ids absent from `orphans`.
    orphan_order: VecDeque<ContentId>,
    /// Maximum buffered orphans before the oldest is evicted.
    orphan_cap: usize,
    /// Orphans evicted by the cap so far.
    evictions: u64,
    /// Parents referenced by buffered orphans that this peer has never
    /// seen — the pull targets of the repair protocol. Ordered so repair
    /// traffic is deterministic.
    missing: BTreeSet<ContentId>,
    /// Everything ever seen (replica + orphans), to suppress gossip loops.
    seen: HashSet<ContentId>,
    /// Required proof-of-work difficulty (0 = disabled).
    pow_difficulty: u32,
}

impl Peer {
    /// Create a peer whose replica starts from the shared genesis message.
    ///
    /// All peers must be constructed from the *same* genesis message so
    /// their content ids agree.
    pub fn new(id: usize, genesis: &TxMessage, pow_difficulty: u32) -> Self {
        let params = genesis
            .decode_params()
            .expect("genesis payload must be valid");
        let replica = Tangle::new(Arc::new(params));
        let gid = genesis.content_id();
        let mut by_content = HashMap::new();
        by_content.insert(gid, replica.genesis());
        let mut seen = HashSet::new();
        seen.insert(gid);
        Self {
            id,
            replica,
            by_content,
            content_of: vec![gid],
            archive: vec![genesis.clone()],
            orphans: HashMap::new(),
            orphan_order: VecDeque::new(),
            orphan_cap: DEFAULT_ORPHAN_CAP,
            evictions: 0,
            missing: BTreeSet::new(),
            seen,
            pow_difficulty,
        }
    }

    /// Bound the orphan buffer to `cap` entries (oldest evicted first; a
    /// cap of 0 means orphans are never buffered). Evicted transactions
    /// are forgotten entirely, so the repair protocol can re-fetch them.
    pub fn with_orphan_cap(mut self, cap: usize) -> Self {
        self.orphan_cap = cap;
        self
    }

    /// Restore a peer from checkpoint bytes produced by
    /// [`Peer::checkpoint_bytes`]. The replica, archive, and content-id
    /// tables are rebuilt exactly; the orphan buffer starts empty (an
    /// orphan is by definition not yet part of the ledger).
    pub fn from_checkpoint(
        id: usize,
        bytes: &[u8],
        pow_difficulty: u32,
        orphan_cap: usize,
    ) -> Result<Self, PersistError> {
        let (tangle, extras) = decode_checkpoint(bytes)?;
        let mut by_content = HashMap::new();
        let mut content_of = Vec::with_capacity(tangle.len());
        let mut archive = Vec::with_capacity(tangle.len());
        let mut seen = HashSet::new();
        for (i, tx) in tangle.transactions().iter().enumerate() {
            // Wire parent order is part of the content id; the ledger
            // image sorts and dedups parents, so the trailer's ordered
            // list is authoritative. Still require set-equality with the
            // ledger so the two halves cannot disagree.
            let WireExtras {
                nonce,
                wire_parents,
            } = &extras[i];
            let mut sorted: Vec<TxId> = wire_parents.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted != tx.parents {
                return Err(PersistError::Malformed("parent table mismatch"));
            }
            let parents: Vec<ContentId> = wire_parents
                .iter()
                .map(|p| {
                    if p.index() >= i {
                        return Err(PersistError::Malformed("forward parent reference"));
                    }
                    Ok(content_of[p.index()])
                })
                .collect::<Result<_, _>>()?;
            let msg = TxMessage {
                parents,
                issuer: tx.issuer,
                slot: tx.round,
                payload: tinynn::wire::encode(&tx.payload),
                nonce: *nonce,
            };
            let cid = msg.content_id();
            by_content.insert(cid, TxId(i as u32));
            content_of.push(cid);
            archive.push(msg);
            seen.insert(cid);
        }
        Ok(Self {
            id,
            replica: tangle,
            by_content,
            content_of,
            archive,
            orphans: HashMap::new(),
            orphan_order: VecDeque::new(),
            orphan_cap,
            evictions: 0,
            missing: BTreeSet::new(),
            seen,
            pow_difficulty,
        })
    }

    /// Serialize this peer's replica for crash recovery: the
    /// [`learning_tangle::persist`] ledger image plus a per-transaction
    /// wire trailer — the PoW nonce and the parents in original wire
    /// order. Both are covered by the content id but absent from the
    /// ledger image (which stores parents sorted and deduped), so they
    /// are required to reconstruct byte-identical messages.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let tangle_bytes = persist::to_bytes(&self.replica);
        let mut out = Vec::with_capacity(4 + 1 + 4 + tangle_bytes.len() + 12 * self.archive.len());
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.push(CHECKPOINT_VERSION);
        out.extend_from_slice(&(tangle_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&tangle_bytes);
        for m in &self.archive {
            out.extend_from_slice(&m.nonce.to_le_bytes());
            out.extend_from_slice(&(m.parents.len() as u16).to_le_bytes());
            for p in &m.parents {
                out.extend_from_slice(&self.by_content[p].0.to_le_bytes());
            }
        }
        out
    }

    /// This peer's current replica.
    pub fn replica(&self) -> &Tangle<ModelParams> {
        &self.replica
    }

    /// Number of transactions in the replica.
    pub fn len(&self) -> usize {
        self.replica.len()
    }

    /// Replicas always contain the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of buffered orphans.
    pub fn orphan_count(&self) -> usize {
        self.orphans.len()
    }

    /// Orphans evicted by the buffer cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Parents referenced by buffered orphans that this peer has never
    /// seen — what the repair protocol should pull from neighbours.
    pub fn missing(&self) -> &BTreeSet<ContentId> {
        &self.missing
    }

    /// Content ids of the replica's current tips — the heads advertised
    /// to neighbours by the repair protocol.
    pub fn heads(&self) -> Vec<ContentId> {
        self.replica
            .tips()
            .into_iter()
            .map(|id| self.content_of[id.index()])
            .collect()
    }

    /// Content id of a local transaction.
    pub fn content_id_of(&self, id: TxId) -> ContentId {
        self.content_of[id.index()]
    }

    /// Local id of a content id, if present in the replica.
    pub fn lookup(&self, cid: ContentId) -> Option<TxId> {
        self.by_content.get(&cid).copied()
    }

    /// Does this peer know `cid` (replica or orphan buffer)?
    pub fn has_seen(&self, cid: ContentId) -> bool {
        self.seen.contains(&cid)
    }

    /// The verbatim wire message for `cid`, if this peer holds it in its
    /// replica archive or orphan buffer (served to repair requests).
    pub fn message_for(&self, cid: ContentId) -> Option<&TxMessage> {
        if let Some(id) = self.by_content.get(&cid) {
            return self.archive.get(id.index());
        }
        self.orphans.get(&cid)
    }

    /// All messages this peer can re-send during sync, in topological
    /// (insertion) order, skipping the genesis. These are the verbatim
    /// originals, so content ids (and proofs-of-work) survive.
    pub fn export_messages(&self) -> Vec<TxMessage> {
        self.archive[1..].to_vec()
    }

    /// Messages in this replica that are *not* ancestors of any of the
    /// advertised `heads` — i.e. what a neighbour advertising those heads
    /// is provably missing. Returned in insertion (topological) order.
    /// Heads unknown locally are ignored (the advertiser is ahead there;
    /// the pull side of the protocol handles that direction).
    pub fn delta_for(&self, heads: &[ContentId]) -> Vec<TxMessage> {
        let mut in_closure = vec![false; self.replica.len()];
        let mut stack: Vec<TxId> = heads
            .iter()
            .filter_map(|h| self.by_content.get(h).copied())
            .collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut in_closure[id.index()], true) {
                continue;
            }
            stack.extend(self.replica.get(id).parents.iter().copied());
        }
        (1..self.replica.len())
            .filter(|&i| !in_closure[i])
            .map(|i| self.archive[i].clone())
            .collect()
    }

    /// Process an incoming message.
    pub fn receive(&mut self, msg: &TxMessage) -> ReceiveOutcome {
        let cid = msg.content_id();
        if self.seen.contains(&cid) {
            return ReceiveOutcome::Duplicate;
        }
        if self.pow_difficulty > 0 && !msg.verify_pow(self.pow_difficulty) {
            return ReceiveOutcome::InvalidPow;
        }
        if msg.decode_params().is_err() {
            return ReceiveOutcome::Corrupt;
        }
        self.seen.insert(cid);
        self.missing.remove(&cid);
        if msg.parents.iter().all(|p| self.by_content.contains_key(p)) {
            self.insert(cid, msg);
            self.flush_orphans();
            ReceiveOutcome::Accepted
        } else {
            for p in &msg.parents {
                if !self.seen.contains(p) {
                    self.missing.insert(*p);
                }
            }
            self.orphans.insert(cid, msg.clone());
            self.orphan_order.push_back(cid);
            self.enforce_orphan_cap();
            ReceiveOutcome::OrphanBuffered
        }
    }

    /// Evict oldest orphans until the buffer respects the cap. Evicted
    /// entries are forgotten (removed from `seen`) so a re-delivery or a
    /// repair re-fetch can buffer them again.
    fn enforce_orphan_cap(&mut self) {
        let mut evicted = false;
        while self.orphans.len() > self.orphan_cap {
            let Some(victim) = self.orphan_order.pop_front() else {
                break;
            };
            if self.orphans.remove(&victim).is_none() {
                continue; // stale id of an already-flushed orphan
            }
            self.seen.remove(&victim);
            self.evictions += 1;
            evicted = true;
        }
        if evicted {
            self.recompute_missing();
        }
    }

    /// Rebuild `missing` from the surviving orphans (eviction may both
    /// re-miss the victim and orphan references that only it held).
    fn recompute_missing(&mut self) {
        self.missing.clear();
        for m in self.orphans.values() {
            for p in &m.parents {
                if !self.seen.contains(p) {
                    self.missing.insert(*p);
                }
            }
        }
    }

    fn insert(&mut self, cid: ContentId, msg: &TxMessage) {
        let params = msg.decode_params().expect("validated in receive");
        let parents: Vec<TxId> = msg.parents.iter().map(|p| self.by_content[p]).collect();
        let local = self
            .replica
            .add_meta(Arc::new(params), parents, msg.issuer, msg.slot)
            .expect("parents resolved");
        self.by_content.insert(cid, local);
        self.content_of.push(cid);
        self.archive.push(msg.clone());
        debug_assert_eq!(self.content_of.len(), self.replica.len());
        debug_assert_eq!(self.archive.len(), self.replica.len());
    }

    /// Repeatedly insert any orphans whose parents are now present, in
    /// arrival order (deterministic across runs, unlike map iteration).
    fn flush_orphans(&mut self) {
        loop {
            let ready: Vec<ContentId> = self
                .orphan_order
                .iter()
                .filter(|cid| {
                    self.orphans
                        .get(cid)
                        .is_some_and(|m| m.parents.iter().all(|p| self.by_content.contains_key(p)))
                })
                .copied()
                .collect();
            if ready.is_empty() {
                break;
            }
            for cid in ready {
                let msg = self.orphans.remove(&cid).expect("listed above");
                self.insert(cid, &msg);
            }
        }
        // drop stale front entries so eviction targets live orphans
        while let Some(front) = self.orphan_order.front() {
            if self.orphans.contains_key(front) {
                break;
            }
            self.orphan_order.pop_front();
        }
    }
}

const CHECKPOINT_MAGIC: &[u8; 4] = b"LTCP";
const CHECKPOINT_VERSION: u8 = 1;

/// Per-transaction wire facts a checkpoint carries beyond the ledger
/// image: the PoW nonce and the parents in original wire order.
struct WireExtras {
    nonce: u64,
    wire_parents: Vec<TxId>,
}

/// Split checkpoint bytes into the persisted tangle and the wire trailer.
fn decode_checkpoint(b: &[u8]) -> Result<(Tangle<ModelParams>, Vec<WireExtras>), PersistError> {
    if b.len() < 9 || &b[..4] != CHECKPOINT_MAGIC {
        return Err(PersistError::Malformed("bad checkpoint magic"));
    }
    if b[4] != CHECKPOINT_VERSION {
        return Err(PersistError::Malformed("unsupported checkpoint version"));
    }
    let tlen = u32::from_le_bytes(b[5..9].try_into().expect("4 bytes")) as usize;
    let rest = &b[9..];
    if rest.len() < tlen {
        return Err(PersistError::Malformed("truncated checkpoint tangle"));
    }
    let tangle = persist::from_bytes(&rest[..tlen])?;
    let mut at = tlen;
    let mut extras = Vec::with_capacity(tangle.len());
    for _ in 0..tangle.len() {
        if rest.len() < at + 10 {
            return Err(PersistError::Malformed("truncated wire trailer"));
        }
        let nonce = u64::from_le_bytes(rest[at..at + 8].try_into().expect("8 bytes"));
        let np = u16::from_le_bytes(rest[at + 8..at + 10].try_into().expect("2 bytes")) as usize;
        at += 10;
        if rest.len() < at + 4 * np {
            return Err(PersistError::Malformed("truncated wire parents"));
        }
        let wire_parents = rest[at..at + 4 * np]
            .chunks_exact(4)
            .map(|c| TxId(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect();
        at += 4 * np;
        extras.push(WireExtras {
            nonce,
            wire_parents,
        });
    }
    if at != rest.len() {
        return Err(PersistError::Malformed("trailing checkpoint bytes"));
    }
    Ok((tangle, extras))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::ParamVec;

    fn genesis() -> TxMessage {
        TxMessage::create(&ParamVec(vec![0.0, 0.0]), vec![], u64::MAX, 0, 0)
    }

    fn msg(parents: Vec<ContentId>, issuer: u64, v: f32) -> TxMessage {
        TxMessage::create(&ParamVec(vec![v, v]), parents, issuer, 0, 0)
    }

    #[test]
    fn in_order_insertion() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        assert_eq!(p.receive(&a), ReceiveOutcome::Accepted);
        assert_eq!(p.len(), 2);
        assert_eq!(p.receive(&a), ReceiveOutcome::Duplicate);
        assert_eq!(p.len(), 2);
        assert_eq!(p.lookup(a.content_id()), Some(tangle_ledger::TxId(1)));
    }

    #[test]
    fn orphans_buffer_and_flush_transitively() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        let c = msg(vec![b.content_id()], 3, 3.0);
        // deliver in reverse order
        assert_eq!(p.receive(&c), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.receive(&b), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.orphan_count(), 2);
        assert_eq!(p.len(), 1);
        // only `a` is truly missing — b is buffered, hence "seen"
        assert_eq!(p.missing().len(), 1);
        assert!(p.missing().contains(&a.content_id()));
        // the arrival of `a` flushes b then c
        assert_eq!(p.receive(&a), ReceiveOutcome::Accepted);
        assert_eq!(p.len(), 4);
        assert_eq!(p.orphan_count(), 0);
        assert!(p.missing().is_empty());
    }

    #[test]
    fn orphan_cap_evicts_oldest_and_allows_refetch() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0).with_orphan_cap(2);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        let c = msg(vec![a.content_id()], 3, 3.0);
        let d = msg(vec![a.content_id()], 4, 4.0);
        assert_eq!(p.receive(&b), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.receive(&c), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.receive(&d), ReceiveOutcome::OrphanBuffered);
        // b (oldest) was evicted and forgotten
        assert_eq!(p.orphan_count(), 2);
        assert_eq!(p.evictions(), 1);
        assert!(!p.has_seen(b.content_id()));
        // a re-delivery of b buffers it again (not a duplicate)
        assert_eq!(p.receive(&b), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.evictions(), 2, "re-buffering b evicts c in turn");
        // once `a` arrives, the surviving orphans flush
        assert_eq!(p.receive(&a), ReceiveOutcome::Accepted);
        assert_eq!(p.orphan_count(), 0);
        assert_eq!(p.len(), 4); // genesis, a, d, b (c was evicted)
    }

    #[test]
    fn checkpoint_roundtrip_preserves_content_ids() {
        let g = genesis();
        let mut p = Peer::new(3, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id(), g.content_id()], 2, 2.0);
        p.receive(&a);
        p.receive(&b);
        let bytes = p.checkpoint_bytes();
        let r = Peer::from_checkpoint(3, &bytes, 0, 16).expect("valid checkpoint");
        assert_eq!(r.len(), 3);
        assert_eq!(r.content_id_of(TxId(0)), g.content_id());
        assert!(r.lookup(a.content_id()).is_some());
        assert!(r.lookup(b.content_id()).is_some());
        // the restored archive is byte-identical, so re-gossip still works
        for (x, y) in p.export_messages().iter().zip(r.export_messages()) {
            assert_eq!(x.encode().as_ref(), y.encode().as_ref());
        }
        // and a corrupted checkpoint is rejected, not trusted
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[0] ^= 0x10; // magic
        assert!(Peer::from_checkpoint(3, &bad, 0, 16).is_err());
        assert!(Peer::from_checkpoint(3, &bytes[..n - 3], 0, 16).is_err());
    }

    #[test]
    fn heads_and_delta_drive_repair() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        let c = msg(vec![g.content_id()], 3, 3.0);
        p.receive(&a);
        p.receive(&b);
        p.receive(&c);
        let heads = p.heads();
        assert!(heads.contains(&b.content_id()));
        assert!(heads.contains(&c.content_id()));
        // a neighbour advertising only `a` as head is missing b and c
        let delta = p.delta_for(&[a.content_id()]);
        let ids: Vec<ContentId> = delta.iter().map(|m| m.content_id()).collect();
        assert_eq!(ids, vec![b.content_id(), c.content_id()]);
        // advertising the full frontier yields nothing
        assert!(p.delta_for(&heads).is_empty());
        // an empty (genesis-only) advertiser gets everything
        assert_eq!(p.delta_for(&[g.content_id()]).len(), 3);
    }

    #[test]
    fn message_for_serves_archive_and_orphans() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        p.receive(&b); // orphan
        assert!(p.message_for(b.content_id()).is_some());
        assert!(p.message_for(a.content_id()).is_none());
        p.receive(&a);
        assert!(p.message_for(a.content_id()).is_some());
        assert_eq!(
            p.message_for(g.content_id()).map(|m| m.content_id()),
            Some(g.content_id())
        );
    }

    #[test]
    fn pow_enforced_when_configured() {
        let g = TxMessage::create(&ParamVec(vec![0.0]), vec![], u64::MAX, 0, 8);
        let mut p = Peer::new(0, &g, 8);
        let weak = TxMessage {
            nonce: 0,
            ..TxMessage::create(&ParamVec(vec![1.0]), vec![g.content_id()], 1, 0, 0)
        };
        // nonce 0 almost surely fails difficulty 8; if it happens to pass,
        // the message is simply accepted — tolerate both but require that a
        // properly solved message always passes.
        let _ = p.receive(&weak);
        let strong = TxMessage::create(&ParamVec(vec![2.0]), vec![g.content_id()], 1, 0, 8);
        assert_eq!(p.receive(&strong), ReceiveOutcome::Accepted);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let mut enc = a.encode().to_vec();
        let n = enc.len();
        enc[n - 6] ^= 0x11;
        let corrupted = TxMessage::decode(&enc).expect("framing intact");
        assert_eq!(p.receive(&corrupted), ReceiveOutcome::Corrupt);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn replicas_agree_on_content_ids() {
        let g = genesis();
        let mut p1 = Peer::new(0, &g, 0);
        let mut p2 = Peer::new(1, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id(), g.content_id()], 2, 2.0);
        p1.receive(&a);
        p1.receive(&b);
        p2.receive(&b); // out of order on p2
        p2.receive(&a);
        assert_eq!(p1.len(), p2.len());
        for i in 0..p1.len() {
            // replicas may insert in different orders; compare by content
            let cid = p1.content_id_of(tangle_ledger::TxId(i as u32));
            assert!(p2.lookup(cid).is_some(), "peer 2 missing {cid}");
        }
    }

    #[test]
    fn export_messages_reimport_elsewhere() {
        let g = genesis();
        let mut p1 = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        p1.receive(&a);
        p1.receive(&b);
        let mut p2 = Peer::new(1, &g, 0);
        for m in p1.export_messages() {
            p2.receive(&m);
        }
        assert_eq!(p2.len(), 3);
        assert!(p2.lookup(a.content_id()).is_some());
        assert!(p2.lookup(b.content_id()).is_some());
    }
}
