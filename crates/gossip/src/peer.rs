//! A peer's local replica of the tangle.

use crate::message::{ContentId, TxMessage};
use learning_tangle::node::ModelParams;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tangle_ledger::{Tangle, TxId};

/// What happened when a peer processed an incoming message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// Inserted into the replica (possibly flushing buffered orphans).
    Accepted,
    /// Already known (replica or orphan buffer) — do not re-gossip.
    Duplicate,
    /// Parents missing; buffered until they arrive.
    OrphanBuffered,
    /// Proof-of-work below the required difficulty — dropped.
    InvalidPow,
    /// Payload failed checksum validation — dropped.
    Corrupt,
}

/// One network participant's view of the ledger.
pub struct Peer {
    /// Peer index (= the node id it trains as).
    pub id: usize,
    replica: Tangle<ModelParams>,
    /// content id → local transaction id.
    by_content: HashMap<ContentId, TxId>,
    /// local id → content id (for re-gossip and sync).
    content_of: Vec<ContentId>,
    /// Original wire messages in insertion order (index 0 = genesis),
    /// kept verbatim so anti-entropy sync re-sends byte-identical
    /// messages (content ids cover the PoW nonce).
    archive: Vec<TxMessage>,
    /// Messages waiting for missing parents, keyed by their own id.
    orphans: HashMap<ContentId, TxMessage>,
    /// Everything ever seen (replica + orphans), to suppress gossip loops.
    seen: HashSet<ContentId>,
    /// Required proof-of-work difficulty (0 = disabled).
    pow_difficulty: u32,
}

impl Peer {
    /// Create a peer whose replica starts from the shared genesis message.
    ///
    /// All peers must be constructed from the *same* genesis message so
    /// their content ids agree.
    pub fn new(id: usize, genesis: &TxMessage, pow_difficulty: u32) -> Self {
        let params = genesis
            .decode_params()
            .expect("genesis payload must be valid");
        let replica = Tangle::new(Arc::new(params));
        let gid = genesis.content_id();
        let mut by_content = HashMap::new();
        by_content.insert(gid, replica.genesis());
        let mut seen = HashSet::new();
        seen.insert(gid);
        Self {
            id,
            replica,
            by_content,
            content_of: vec![gid],
            archive: vec![genesis.clone()],
            orphans: HashMap::new(),
            seen,
            pow_difficulty,
        }
    }

    /// This peer's current replica.
    pub fn replica(&self) -> &Tangle<ModelParams> {
        &self.replica
    }

    /// Number of transactions in the replica.
    pub fn len(&self) -> usize {
        self.replica.len()
    }

    /// Replicas always contain the genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of buffered orphans.
    pub fn orphan_count(&self) -> usize {
        self.orphans.len()
    }

    /// Content id of a local transaction.
    pub fn content_id_of(&self, id: TxId) -> ContentId {
        self.content_of[id.index()]
    }

    /// Local id of a content id, if present in the replica.
    pub fn lookup(&self, cid: ContentId) -> Option<TxId> {
        self.by_content.get(&cid).copied()
    }

    /// Does this peer know `cid` (replica or orphan buffer)?
    pub fn has_seen(&self, cid: ContentId) -> bool {
        self.seen.contains(&cid)
    }

    /// All messages this peer can re-send during anti-entropy sync, in
    /// topological (insertion) order, skipping the genesis. These are the
    /// verbatim originals, so content ids (and proofs-of-work) survive.
    pub fn export_messages(&self) -> Vec<TxMessage> {
        self.archive[1..].to_vec()
    }

    /// Process an incoming message.
    pub fn receive(&mut self, msg: &TxMessage) -> ReceiveOutcome {
        let cid = msg.content_id();
        if self.seen.contains(&cid) {
            return ReceiveOutcome::Duplicate;
        }
        if self.pow_difficulty > 0 && !msg.verify_pow(self.pow_difficulty) {
            return ReceiveOutcome::InvalidPow;
        }
        if msg.decode_params().is_err() {
            return ReceiveOutcome::Corrupt;
        }
        self.seen.insert(cid);
        if msg.parents.iter().all(|p| self.by_content.contains_key(p)) {
            self.insert(cid, msg);
            self.flush_orphans();
            ReceiveOutcome::Accepted
        } else {
            self.orphans.insert(cid, msg.clone());
            ReceiveOutcome::OrphanBuffered
        }
    }

    fn insert(&mut self, cid: ContentId, msg: &TxMessage) {
        let params = msg.decode_params().expect("validated in receive");
        let parents: Vec<TxId> = msg.parents.iter().map(|p| self.by_content[p]).collect();
        let local = self
            .replica
            .add_meta(Arc::new(params), parents, msg.issuer, msg.slot)
            .expect("parents resolved");
        self.by_content.insert(cid, local);
        self.content_of.push(cid);
        self.archive.push(msg.clone());
        debug_assert_eq!(self.content_of.len(), self.replica.len());
        debug_assert_eq!(self.archive.len(), self.replica.len());
    }

    /// Repeatedly insert any orphans whose parents are now present.
    fn flush_orphans(&mut self) {
        loop {
            let ready: Vec<ContentId> = self
                .orphans
                .iter()
                .filter(|(_, m)| m.parents.iter().all(|p| self.by_content.contains_key(p)))
                .map(|(cid, _)| *cid)
                .collect();
            if ready.is_empty() {
                return;
            }
            for cid in ready {
                let msg = self.orphans.remove(&cid).expect("listed above");
                self.insert(cid, &msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::ParamVec;

    fn genesis() -> TxMessage {
        TxMessage::create(&ParamVec(vec![0.0, 0.0]), vec![], u64::MAX, 0, 0)
    }

    fn msg(parents: Vec<ContentId>, issuer: u64, v: f32) -> TxMessage {
        TxMessage::create(&ParamVec(vec![v, v]), parents, issuer, 0, 0)
    }

    #[test]
    fn in_order_insertion() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        assert_eq!(p.receive(&a), ReceiveOutcome::Accepted);
        assert_eq!(p.len(), 2);
        assert_eq!(p.receive(&a), ReceiveOutcome::Duplicate);
        assert_eq!(p.len(), 2);
        assert_eq!(p.lookup(a.content_id()), Some(tangle_ledger::TxId(1)));
    }

    #[test]
    fn orphans_buffer_and_flush_transitively() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        let c = msg(vec![b.content_id()], 3, 3.0);
        // deliver in reverse order
        assert_eq!(p.receive(&c), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.receive(&b), ReceiveOutcome::OrphanBuffered);
        assert_eq!(p.orphan_count(), 2);
        assert_eq!(p.len(), 1);
        // the arrival of `a` flushes b then c
        assert_eq!(p.receive(&a), ReceiveOutcome::Accepted);
        assert_eq!(p.len(), 4);
        assert_eq!(p.orphan_count(), 0);
    }

    #[test]
    fn pow_enforced_when_configured() {
        let g = TxMessage::create(&ParamVec(vec![0.0]), vec![], u64::MAX, 0, 8);
        let mut p = Peer::new(0, &g, 8);
        let weak = TxMessage {
            nonce: 0,
            ..TxMessage::create(&ParamVec(vec![1.0]), vec![g.content_id()], 1, 0, 0)
        };
        // nonce 0 almost surely fails difficulty 8; if it happens to pass,
        // the message is simply accepted — tolerate both but require that a
        // properly solved message always passes.
        let _ = p.receive(&weak);
        let strong = TxMessage::create(&ParamVec(vec![2.0]), vec![g.content_id()], 1, 0, 8);
        assert_eq!(p.receive(&strong), ReceiveOutcome::Accepted);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let g = genesis();
        let mut p = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let mut enc = a.encode().to_vec();
        let n = enc.len();
        enc[n - 6] ^= 0x11;
        let corrupted = TxMessage::decode(&enc).expect("framing intact");
        assert_eq!(p.receive(&corrupted), ReceiveOutcome::Corrupt);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn replicas_agree_on_content_ids() {
        let g = genesis();
        let mut p1 = Peer::new(0, &g, 0);
        let mut p2 = Peer::new(1, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id(), g.content_id()], 2, 2.0);
        p1.receive(&a);
        p1.receive(&b);
        p2.receive(&b); // out of order on p2
        p2.receive(&a);
        assert_eq!(p1.len(), p2.len());
        for i in 0..p1.len() {
            // replicas may insert in different orders; compare by content
            let cid = p1.content_id_of(tangle_ledger::TxId(i as u32));
            assert!(p2.lookup(cid).is_some(), "peer 2 missing {cid}");
        }
    }

    #[test]
    fn export_messages_reimport_elsewhere() {
        let g = genesis();
        let mut p1 = Peer::new(0, &g, 0);
        let a = msg(vec![g.content_id()], 1, 1.0);
        let b = msg(vec![a.content_id()], 2, 2.0);
        p1.receive(&a);
        p1.receive(&b);
        let mut p2 = Peer::new(1, &g, 0);
        for m in p1.export_messages() {
            p2.receive(&m);
        }
        assert_eq!(p2.len(), 3);
        assert!(p2.lookup(a.content_id()).is_some());
        assert!(p2.lookup(b.content_id()).is_some());
    }
}
