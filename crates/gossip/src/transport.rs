//! The gossip wire-protocol vocabulary and the transport abstraction.
//!
//! The pull-based repair protocol (PR 2) speaks exactly four messages,
//! captured here as [`ProtocolMsg`]. How those messages move between
//! peers is a [`Transport`] concern: the in-memory discrete-event
//! [`Network`](crate::network::Network) is one implementation (latency,
//! loss, partitions, fault injection on a simulated clock); `lt-net`
//! provides a deterministic mock hub and a real length-framed TCP
//! transport over the same vocabulary.

use crate::message::{ContentId, TxMessage};

/// One protocol message between two peers.
///
/// [`Publish`](ProtocolMsg::Publish) and [`Delta`](ProtocolMsg::Delta)
/// both carry a full transaction and are handled identically on
/// receipt; the distinction records *why* the transaction is on the
/// wire (fresh flood vs repair back-fill), which matters for telemetry
/// and wire-level accounting but never for replica state.
#[derive(Clone, Debug)]
pub enum ProtocolMsg {
    /// A transaction flooding the topology from its publisher.
    Publish(TxMessage),
    /// "These are my current heads" — the receiver pushes back whatever
    /// provably lies outside their closure and pulls any head it has
    /// never seen.
    Advertise {
        /// Content ids of the advertiser's current tips.
        heads: Vec<ContentId>,
    },
    /// "Send me these transactions" — answered from archive or orphan
    /// buffer with [`ProtocolMsg::Delta`] replies.
    Request {
        /// Content ids the requester is missing.
        wants: Vec<ContentId>,
    },
    /// A transaction re-sent in response to an advertise or request.
    Delta(TxMessage),
}

impl ProtocolMsg {
    /// The carried transaction, when the message carries one.
    pub fn transaction(&self) -> Option<&TxMessage> {
        match self {
            ProtocolMsg::Publish(m) | ProtocolMsg::Delta(m) => Some(m),
            _ => None,
        }
    }
}

/// How protocol messages travel between peers.
///
/// `from`/`to` are peer indices in a fixed population. A transport is
/// free to delay, reorder, or drop traffic — the protocol above it is
/// built to heal — but must report a drop it can already observe at
/// send time by returning `false` (and counting it, so accounting
/// tests can reconcile counters against ground truth).
pub trait Transport {
    /// Queue `msg` for delivery from `from` to `to`. Returns whether
    /// the transport accepted the message.
    fn send(&mut self, from: usize, to: usize, msg: ProtocolMsg) -> bool;
}
