//! Deterministic fault injection for the gossip network.
//!
//! The paper's §VI outlook asks for the tangle to be benchmarked under
//! "faults introduced by real-world network conditions". This module is
//! the schedule for those faults: a [`FaultPlan`] describes per-peer
//! crash/restart events and per-link perturbations (extra drops,
//! duplicated deliveries, payload corruption, reordering jitter), all
//! driven by a dedicated RNG seeded from [`FaultPlan::seed`] so the same
//! plan reproduces the same fault sequence byte-for-byte — and so a
//! benign plan (all rates zero, no crashes) consumes no randomness and
//! leaves a run bit-identical to one with no plan installed at all.
//!
//! Recovery is protocol-driven, not harness-driven: [`RepairConfig`]
//! parameterizes the pull-based repair protocol (see
//! [`crate::network::Network`]) through which peers re-solidify after
//! losses and restarts — bounded re-requests with exponential backoff,
//! plus head advertisement rounds.

use serde::{Deserialize, Serialize};

/// How a crashed peer comes back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recovery {
    /// Rejoin with a fresh replica holding only the genesis.
    Empty,
    /// Restore the replica from the peer's last persisted checkpoint
    /// (falls back to [`Recovery::Empty`] when no checkpoint exists or
    /// the checkpoint fails validation).
    FromCheckpoint,
}

/// One scheduled crash (and optional restart) of a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Peer to crash.
    pub peer: usize,
    /// Simulated tick at which the peer goes down.
    pub at: u64,
    /// Tick at which the peer comes back up (`None` = stays down).
    pub restart_at: Option<u64>,
    /// State the peer restarts from.
    pub recovery: Recovery,
}

/// A deterministic schedule of faults, installed with
/// [`crate::network::Network::install_faults`]. Serializable so a fault
/// schedule can be archived next to the run it perturbed and replayed
/// byte-for-byte (the `lt-net` `ChaosPlan` reuses these types for its
/// kill schedule).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault RNG. Separate from the network seed so
    /// enabling fault injection never perturbs the base latency/loss
    /// randomness.
    pub seed: u64,
    /// Extra per-hop drop probability, applied after the base loss model.
    pub drop: f64,
    /// Per-hop probability that a delivery is duplicated (the copy takes
    /// its own independently drawn latency).
    pub duplicate: f64,
    /// Per-hop probability that a transaction payload has one byte
    /// flipped in flight (caught by the wire checksum at the receiver).
    pub corrupt: f64,
    /// Extra uniformly drawn latency in `0..=reorder_jitter` ticks added
    /// per hop, shuffling delivery order (0 = off).
    pub reorder_jitter: u64,
    /// Scheduled crash/restart events.
    pub crashes: Vec<CrashEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_jitter: 0,
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Does this plan perturb anything at all? A benign plan is
    /// guaranteed not to consume fault randomness, so installing it
    /// leaves the simulation bit-identical to running without one.
    pub fn is_benign(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.reorder_jitter == 0
            && self.crashes.is_empty()
    }

    /// Does the plan perturb links (as opposed to only crashing peers)?
    pub fn perturbs_links(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.corrupt > 0.0 || self.reorder_jitter > 0
    }

    /// Build a churn schedule: `cycles` crash/restart events spread
    /// evenly over `horizon` ticks, each hitting a deterministically
    /// derived peer, down for `downtime` ticks, recovering from its
    /// checkpoint. Peer 0 is never crashed so experiments always keep a
    /// stable observer to evaluate.
    pub fn churn(peers: usize, cycles: usize, horizon: u64, downtime: u64, seed: u64) -> Self {
        assert!(peers >= 2, "churn needs at least two peers");
        let mut crashes = Vec::with_capacity(cycles);
        for k in 0..cycles {
            let at = horizon * (k as u64 + 1) / (cycles as u64 + 1);
            let peer = 1 + (tinynn::rng::derive(seed, k as u64) as usize) % (peers - 1);
            crashes.push(CrashEvent {
                peer,
                at: at.max(1),
                restart_at: Some(at.max(1) + downtime.max(1)),
                recovery: Recovery::FromCheckpoint,
            });
        }
        Self {
            seed,
            crashes,
            ..Self::default()
        }
    }
}

/// Parameters of the pull-based repair protocol.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Master switch. Off = orphans wait passively (pre-repair
    /// behaviour; the [`crate::network::Network::anti_entropy`] oracle is
    /// then the only way to reconcile losses).
    pub enabled: bool,
    /// Ticks an orphaned parent stays missing before the first
    /// re-request goes out.
    pub delay: u64,
    /// Base of the exponential backoff: attempt `a` waits
    /// `backoff_base << a` ticks before the next re-request.
    pub backoff_base: u64,
    /// Re-requests per missing transaction before giving up (head
    /// advertisement rounds can still repair it afterwards).
    pub max_retries: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            delay: 8,
            backoff_base: 8,
            max_retries: 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        assert!(FaultPlan::default().is_benign());
        assert!(!FaultPlan::default().perturbs_links());
    }

    #[test]
    fn any_perturbation_breaks_benignity() {
        for plan in [
            FaultPlan {
                drop: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                duplicate: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                corrupt: 0.1,
                ..FaultPlan::default()
            },
            FaultPlan {
                reorder_jitter: 3,
                ..FaultPlan::default()
            },
            FaultPlan {
                crashes: vec![CrashEvent {
                    peer: 1,
                    at: 5,
                    restart_at: None,
                    recovery: Recovery::Empty,
                }],
                ..FaultPlan::default()
            },
        ] {
            assert!(!plan.is_benign());
        }
    }

    #[test]
    fn churn_schedule_is_deterministic_and_spread() {
        let a = FaultPlan::churn(8, 4, 100, 10, 7);
        let b = FaultPlan::churn(8, 4, 100, 10, 7);
        assert_eq!(a.crashes.len(), 4);
        for (x, y) in a.crashes.iter().zip(&b.crashes) {
            assert_eq!(x.peer, y.peer);
            assert_eq!(x.at, y.at);
            assert_eq!(x.restart_at, y.restart_at);
        }
        // spread over the horizon, never peer 0, always restarting later
        for c in &a.crashes {
            assert!(c.peer >= 1 && c.peer < 8);
            assert!(c.at >= 1 && c.at <= 100);
            assert!(c.restart_at.unwrap() > c.at);
            assert_eq!(c.recovery, Recovery::FromCheckpoint);
        }
        let times: Vec<u64> = a.crashes.iter().map(|c| c.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // a different seed picks different peers (overwhelmingly likely)
        let c = FaultPlan::churn(8, 4, 100, 10, 8);
        assert!(
            a.crashes
                .iter()
                .zip(&c.crashes)
                .any(|(x, y)| x.peer != y.peer),
            "derived peers should vary with the seed"
        );
    }
}
