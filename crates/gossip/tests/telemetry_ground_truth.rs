//! Ground-truth test: the telemetry counters the gossip network records
//! must exactly match its own [`NetStats`] bookkeeping — on a lossy,
//! high-diameter topology where drops, orphans, and duplicates all occur.

use feddata::blobs::{self, BlobsConfig};
use learning_tangle::{SimConfig, TangleHyperParams};
use lt_telemetry::{NoopSink, Telemetry};
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::network::{Latency, NetworkConfig, Topology};
use tinynn::Sequential;

fn data(users: usize) -> feddata::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users,
            samples_per_user: (24, 32),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        23,
    )
}

fn build() -> Sequential {
    tinynn::zoo::mlp(8, &[12], 4, &mut tinynn::rng::seeded(5))
}

fn cfg() -> SimConfig {
    SimConfig {
        lr: 0.15,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        seed: 31,
        hyper: TangleHyperParams {
            confidence_samples: 6,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    }
}

fn assert_counters_match_stats(gl: &GossipLearning<'_>, tel: &Telemetry) {
    let stats = gl.network().stats;
    assert_eq!(
        tel.counter_value("gossip.delivered"),
        stats.delivered,
        "delivered counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.dropped"),
        stats.dropped,
        "dropped counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.duplicates"),
        stats.duplicates,
        "duplicates counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.orphaned"),
        stats.orphaned,
        "orphaned counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.published"),
        gl.published(),
        "published counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.discarded"),
        gl.discarded(),
        "discarded counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.rejected"),
        stats.rejected,
        "rejected counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.rerequests"),
        stats.rerequests,
        "rerequests counter out of sync"
    );
    assert_eq!(
        tel.counter_value("gossip.orphan_evictions"),
        stats.evicted,
        "eviction counter out of sync"
    );
    assert_eq!(
        tel.counter_value("fault.discarded"),
        stats.discarded,
        "fault.discarded counter out of sync"
    );
}

#[test]
fn counters_match_netstats_on_lossy_ring() {
    let tel = Telemetry::new(NoopSink);
    let mut gl = GossipLearning::new(
        data(6),
        cfg(),
        NetworkConfig {
            topology: Topology::Ring,
            latency: Latency { min: 1, max: 6 },
            loss: 0.3,
            pow_difficulty: 0,
            seed: 11,
            ..NetworkConfig::default()
        },
        build,
    );
    gl.set_telemetry(tel.clone());
    gl.run(30);
    gl.network_mut().run_to_quiescence();
    let stats = gl.network().stats;
    assert!(stats.delivered > 0, "ring gossip must deliver messages");
    assert!(stats.dropped > 0, "30% loss must drop messages");
    assert_counters_match_stats(&gl, &tel);
}

#[test]
fn counters_match_netstats_across_partition_and_heal() {
    let tel = Telemetry::new(NoopSink);
    let mut gl = GossipLearning::new(data(6), cfg(), NetworkConfig::default(), build);
    gl.set_telemetry(tel.clone());
    gl.run(8);
    gl.network_mut().run_to_quiescence();
    // Partition drops create the partition-crossing code path.
    gl.network_mut().partition(vec![0, 0, 0, 1, 1, 1]);
    gl.run(12);
    gl.network_mut().run_to_quiescence();
    let stats = gl.network().stats;
    assert!(stats.dropped > 0, "partition must drop crossings");
    assert!(stats.duplicates > 0, "mesh flooding must create duplicates");
    gl.network_mut().heal();
    gl.network_mut().anti_entropy();
    assert_counters_match_stats(&gl, &tel);
}

#[test]
fn disabled_telemetry_changes_nothing() {
    // Two identical runs, one observed, one not: the simulated network
    // must evolve identically (instrumentation is passive).
    let run = |observe: bool| {
        let mut gl = GossipLearning::new(data(6), cfg(), NetworkConfig::default(), build);
        if observe {
            gl.set_telemetry(Telemetry::new(NoopSink));
        }
        gl.run(20);
        gl.network_mut().run_to_quiescence();
        let s = gl.network().stats;
        (
            s.delivered,
            s.dropped,
            s.duplicates,
            s.orphaned,
            gl.published(),
        )
    };
    assert_eq!(run(false), run(true));
}
