//! End-to-end churn test: gossip learning under message loss,
//! duplication, corruption, reordering, and scheduled crash/restart
//! cycles with checkpointing. Replicas must reconcile through the
//! pull-based repair protocol **alone** — `anti_entropy()` is never
//! called here — and the entire run (stats *and* telemetry bytes) must
//! reproduce exactly per fault seed.

use feddata::blobs::{self, BlobsConfig};
use learning_tangle::{SimConfig, TangleHyperParams};
use lt_telemetry::{MemorySink, Telemetry};
use std::sync::Arc;
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::network::{Latency, NetStats, NetworkConfig, Topology};
use tangle_gossip::{CrashEvent, FaultPlan, Recovery};
use tinynn::Sequential;

fn data(users: usize) -> feddata::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users,
            samples_per_user: (24, 32),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        23,
    )
}

fn build() -> Sequential {
    tinynn::zoo::mlp(8, &[12], 4, &mut tinynn::rng::seeded(5))
}

fn cfg() -> SimConfig {
    SimConfig {
        lr: 0.15,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        seed: 31,
        hyper: TangleHyperParams {
            confidence_samples: 6,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    }
}

struct ChurnOutcome {
    stats: NetStats,
    telemetry_lines: Vec<String>,
    quiesced: bool,
    consistent: bool,
    replica_len: usize,
    crashes: u64,
    restarts: u64,
    recovered: u64,
    cache_hits: u64,
    cache_rebuilds: u64,
    eval_invalidations: u64,
}

/// One full churn scenario: ≥2 crashes (one checkpoint recovery, one
/// empty rejoin), ≥5% loss, duplication + corruption + reordering on,
/// periodic checkpointing — the ISSUE's acceptance configuration.
fn run_churn(fault_seed: u64) -> ChurnOutcome {
    let sink = Arc::new(MemorySink::new());
    let tel = Telemetry::new(sink.clone());
    let mut gl = GossipLearning::new(
        data(6),
        cfg(),
        NetworkConfig {
            topology: Topology::RandomRegular { degree: 3 },
            latency: Latency { min: 1, max: 4 },
            loss: 0.08,
            seed: 17,
            ..NetworkConfig::default()
        },
        build,
    );
    gl.set_telemetry(tel.clone());
    {
        let net = gl.network_mut();
        net.set_checkpointing(16, None);
        net.install_faults(FaultPlan {
            seed: fault_seed,
            drop: 0.02,
            duplicate: 0.05,
            corrupt: 0.05,
            reorder_jitter: 2,
            crashes: vec![
                CrashEvent {
                    peer: 2,
                    at: 20,
                    restart_at: Some(45),
                    recovery: Recovery::FromCheckpoint,
                },
                CrashEvent {
                    peer: 4,
                    at: 50,
                    restart_at: Some(70),
                    recovery: Recovery::Empty,
                },
            ],
        });
    }
    gl.run(80);
    let quiesced = gl.network_mut().repair_to_quiescence(64);
    let consistent = gl.network().replicas_consistent();
    let replica_len = gl.network().peer(0).len();
    // Peer 4 rejoined empty and rebuilt its replica through repair, so its
    // next activation must detect the replaced history (the tangle order
    // differs from what its analysis cache tracked) and rebuild.
    gl.activate(4);
    let telemetry_lines = sink
        .events()
        .iter()
        .map(|e| serde_json::to_string(e).expect("events serialize"))
        .collect();
    ChurnOutcome {
        stats: gl.network().stats,
        telemetry_lines,
        quiesced,
        consistent,
        replica_len,
        crashes: tel.counter_value("fault.crash"),
        restarts: tel.counter_value("fault.restart"),
        recovered: tel.counter_value("fault.recovered"),
        cache_hits: tel.counter_value("tangle.cache_hits"),
        cache_rebuilds: tel.counter_value("tangle.cache_rebuilds"),
        eval_invalidations: tel.counter_value("eval_cache.invalidations"),
    }
}

#[test]
fn churn_reconverges_via_pull_repair_alone() {
    let out = run_churn(7);
    assert!(out.quiesced, "repair protocol must quiesce");
    assert!(
        out.consistent,
        "replicas must reconcile without anti_entropy: {:?}",
        out.stats
    );
    assert!(out.replica_len > 10, "learning must have progressed");
    // every fault class actually fired
    assert_eq!(out.crashes, 2, "both scheduled crashes must fire");
    assert_eq!(out.restarts, 2, "both restarts must fire");
    assert!(out.recovered >= 1, "recovery latency must be observed");
    assert!(out.stats.discarded > 0, "down peers must discard traffic");
    assert!(out.stats.dropped > 0, "loss + drop faults must drop");
    assert!(out.stats.duplicates > 0, "duplication must surface");
    assert!(out.stats.rejected > 0, "corruption must be rejected");
    assert!(out.stats.rerequests > 0, "repair must issue re-requests");
    // the per-peer analysis caches serve steady-state activations and
    // detect the replaced replicas of restarted peers
    assert!(
        out.cache_hits > 0,
        "activations must hit the analysis cache"
    );
    assert!(
        out.cache_rebuilds >= 1,
        "a restarted peer's replaced replica must force a cache rebuild"
    );
    // restarts replace replicas wholesale; the memoized evaluation caches
    // of peers 2 and 4 must be dropped rather than served stale
    assert!(
        out.eval_invalidations > 0,
        "a restarted peer's eval cache must be invalidated on reactivation"
    );
    // the telemetry stream narrates the fault schedule
    let faults: Vec<&String> = out
        .telemetry_lines
        .iter()
        .filter(|l| l.starts_with("{\"Fault\":"))
        .collect();
    assert!(faults.iter().any(|l| l.contains("\"crash\"")));
    assert!(faults.iter().any(|l| l.contains("\"restart\"")));
}

#[test]
fn same_fault_seed_reproduces_bytes_exactly() {
    let a = run_churn(7);
    let b = run_churn(7);
    assert_eq!(a.stats, b.stats, "NetStats must reproduce per fault seed");
    assert_eq!(a.replica_len, b.replica_len);
    assert_eq!(
        a.telemetry_lines, b.telemetry_lines,
        "telemetry JSONL must be byte-identical per fault seed"
    );
}

#[test]
fn different_fault_seed_perturbs_the_run() {
    let a = run_churn(7);
    let c = run_churn(8);
    // both still converge...
    assert!(a.consistent && c.consistent);
    // ...but the fault RNG stream genuinely differs
    assert!(
        a.stats != c.stats || a.telemetry_lines != c.telemetry_lines,
        "fault seed must steer the perturbations"
    );
}

/// The same churn scenario, stepped one activation at a time with the
/// conformance invariant pass run over **every** intermediate network
/// state: per-replica acyclicity, the orphan-buffer cap, `NetStats`
/// monotonicity with eviction accounting across peer lifetimes, and the
/// stale-cache differential (shadow + real analysis caches vs
/// from-scratch DPs) on every replica.
#[test]
fn every_intermediate_churn_state_satisfies_conformance_invariants() {
    use lt_conformance::{check_replica_caches, GossipChecker, Mutation, ShadowCache};
    use tangle_gossip::peer::DEFAULT_ORPHAN_CAP;
    use tangle_ledger::AnalysisCache;

    let mut gl = GossipLearning::new(
        data(6),
        cfg(),
        NetworkConfig {
            topology: Topology::RandomRegular { degree: 3 },
            latency: Latency { min: 1, max: 4 },
            loss: 0.08,
            seed: 17,
            ..NetworkConfig::default()
        },
        build,
    );
    {
        let net = gl.network_mut();
        net.set_checkpointing(16, None);
        net.install_faults(FaultPlan {
            seed: 7,
            drop: 0.02,
            duplicate: 0.05,
            corrupt: 0.05,
            reorder_jitter: 2,
            crashes: vec![
                CrashEvent {
                    peer: 2,
                    at: 20,
                    restart_at: Some(45),
                    recovery: Recovery::FromCheckpoint,
                },
                CrashEvent {
                    peer: 4,
                    at: 50,
                    restart_at: Some(70),
                    recovery: Recovery::Empty,
                },
            ],
        });
    }

    let n = gl.network().peers().len();
    let mut checker = GossipChecker::new(gl.network(), DEFAULT_ORPHAN_CAP);
    let mut shadows: Vec<ShadowCache> = (0..n).map(|_| ShadowCache::new()).collect();
    let mut caches: Vec<AnalysisCache> = (0..n)
        .map(|p| AnalysisCache::new(gl.network().peer(p).replica()))
        .collect();

    // `run(1)` in a loop consumes the same internal scheduling RNG stream
    // as one `run(80)` call, so this is the exact scenario above, paused
    // after every activation.
    for step in 0..80usize {
        gl.run(1);
        checker
            .check(gl.network(), step)
            .unwrap_or_else(|v| panic!("step {step}: {v:?}"));
        for p in 0..n {
            check_replica_caches(
                gl.network().peer(p).replica(),
                &mut shadows[p],
                &mut caches[p],
                Mutation::None,
                p,
            )
            .unwrap_or_else(|v| panic!("step {step}: {v:?}"));
        }
    }

    assert!(gl.network_mut().repair_to_quiescence(64), "must quiesce");
    assert!(gl.network().replicas_consistent());
    checker
        .check(gl.network(), usize::MAX)
        .unwrap_or_else(|v| panic!("post-repair: {v:?}"));
    let mut rebuilds = 0;
    for p in 0..n {
        check_replica_caches(
            gl.network().peer(p).replica(),
            &mut shadows[p],
            &mut caches[p],
            Mutation::None,
            p,
        )
        .unwrap_or_else(|v| panic!("post-repair: {v:?}"));
        rebuilds += shadows[p].rebuilds;
    }
    // Peer 4 rejoined empty: its replica shrank mid-run, which the shadow
    // cache must have observed as a divergence and answered with a rebuild
    // rather than serving stale prefix analyses.
    assert!(
        rebuilds >= 1,
        "the empty restart must force at least one shadow-cache rebuild"
    );
}
