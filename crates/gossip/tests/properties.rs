//! Property-based tests of the gossip substrate: wire framing, peer
//! replica convergence under arbitrary delivery orders, and network
//! consistency under arbitrary publish schedules.

use proptest::prelude::*;
use tangle_gossip::message::{ContentId, TxMessage};
use tangle_gossip::network::{Latency, Network, NetworkConfig, Topology};
use tangle_gossip::peer::{Peer, ReceiveOutcome};
use tinynn::ParamVec;

fn genesis() -> TxMessage {
    TxMessage::create(&ParamVec(vec![0.0, 0.0]), vec![], u64::MAX, 0, 0)
}

/// Build a chain/dag of messages from a script: entry `i` picks its two
/// parents among the previously created messages (including the genesis).
fn messages_from_script(script: &[(u8, u8, i16)]) -> (TxMessage, Vec<TxMessage>) {
    let g = genesis();
    let mut all: Vec<TxMessage> = vec![g.clone()];
    for (i, &(a, b, v)) in script.iter().enumerate() {
        let pa = all[a as usize % all.len()].content_id();
        let pb = all[b as usize % all.len()].content_id();
        let m = TxMessage::create(
            &ParamVec(vec![v as f32, i as f32]),
            vec![pa, pb],
            i as u64 % 7,
            i as u64,
            0,
        );
        all.push(m);
    }
    (g, all.split_off(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wire framing roundtrips arbitrary messages.
    #[test]
    fn message_encode_decode_roundtrip(
        values in prop::collection::vec(-1e4f32..1e4, 0..50),
        parents in prop::collection::vec(any::<u64>(), 0..5),
        issuer in any::<u64>(),
        slot in any::<u64>(),
    ) {
        let m = TxMessage::create(
            &ParamVec(values),
            parents.into_iter().map(ContentId).collect(),
            issuer,
            slot,
            0,
        );
        let d = TxMessage::decode(&m.encode()).expect("roundtrip");
        prop_assert_eq!(d.content_id(), m.content_id());
        prop_assert_eq!(&d.parents, &m.parents);
        prop_assert_eq!(d.issuer, issuer);
        prop_assert_eq!(d.decode_params().unwrap(), m.decode_params().unwrap());
    }

    /// A peer reaches the same replica no matter the delivery permutation
    /// (orphan buffering makes insertion order-independent).
    #[test]
    fn peer_replica_is_order_independent(
        script in prop::collection::vec((any::<u8>(), any::<u8>(), any::<i16>()), 1..15),
        perm_seed in any::<u64>(),
    ) {
        let (g, msgs) = messages_from_script(&script);
        // in-order peer
        let mut p1 = Peer::new(0, &g, 0);
        for m in &msgs {
            let out = p1.receive(m);
            prop_assert!(matches!(
                out,
                ReceiveOutcome::Accepted | ReceiveOutcome::Duplicate
            ));
        }
        // permuted peer
        let mut order: Vec<usize> = (0..msgs.len()).collect();
        let mut state = perm_seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut p2 = Peer::new(1, &g, 0);
        for &i in &order {
            p2.receive(&msgs[i]);
        }
        prop_assert_eq!(p1.len(), p2.len());
        prop_assert_eq!(p2.orphan_count(), 0, "all orphans must flush");
        for m in &msgs {
            prop_assert!(p2.lookup(m.content_id()).is_some());
        }
    }

    /// Whatever the topology, latency spread, and publish schedule: after
    /// quiescence plus anti-entropy, all replicas hold the same set.
    #[test]
    fn network_converges_under_arbitrary_schedules(
        script in prop::collection::vec((any::<u8>(), any::<u8>(), any::<i16>()), 1..12),
        topo_pick in 0u8..3,
        max_latency in 1u64..10,
        seed in any::<u64>(),
        origins in prop::collection::vec(0usize..6, 1..12),
    ) {
        let topology = match topo_pick {
            0 => Topology::FullMesh,
            1 => Topology::Ring,
            _ => Topology::RandomRegular { degree: 3 },
        };
        let (g, msgs) = messages_from_script(&script);
        let mut net = Network::new(
            6,
            &g,
            NetworkConfig {
                topology,
                latency: Latency { min: 1, max: max_latency },
                loss: 0.0,
                pow_difficulty: 0,
                seed,
                ..NetworkConfig::default()
            },
        );
        for (m, &o) in msgs.iter().zip(origins.iter().cycle()) {
            net.publish(o, m.clone());
        }
        net.run_to_quiescence();
        net.anti_entropy();
        prop_assert!(net.replicas_consistent());
        prop_assert_eq!(net.peer(0).len(), msgs.len() + 1);
    }
}
