//! Property test: the memoized evaluation cache never serves a stale
//! loss, no matter how the backing history evolves.
//!
//! The real evaluation in `node_step` is a pure function of the probe key
//! and the history prefix the transaction closes over — the pair the
//! cache stores its entries under (`tx_key`, `Tangle::history_sig`). This
//! suite models that contract directly: an oracle value derived from
//! `(key, sig)` stands in for the loss, a scripted schedule drives
//! appends, a mid-run divergence (the gossip crash/restore path, where a
//! regrown replica shares only a prefix with its predecessor), and a
//! post-restore regrowth. The invariant under test: **every cache hit
//! returns exactly the oracle value of the *current* tangle** — a served
//! entry written under a replaced history is a staleness bug, and probes
//! against diverged suffixes must instead surface as counted
//! invalidations.

use learning_tangle::{tx_key, EvalCache};
use lt_conformance::gen::tangle_from_script;
use lt_telemetry::{MemorySink, Telemetry};
use proptest::prelude::*;
use std::sync::Arc;
use tangle_ledger::{Tangle, TxId};

/// Stand-in for the pure evaluation: any deterministic function of the
/// probe key and the history signature works, because that pair is
/// exactly what the real `honest_step` keys its memoization on.
fn oracle(key: u64, sig: u64) -> (f32, f32) {
    let mut z = key ^ sig.rotate_left(17);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    ((z as u32) as f32 / u32::MAX as f32, (z >> 32) as f32)
}

/// Probe every transaction of `tangle`, asserting that any hit equals the
/// oracle under the *current* signature, then backfill misses. Returns
/// how many probes hit.
fn probe_all(cache: &mut EvalCache, tangle: &Tangle<u32>, tel: &Telemetry) -> u64 {
    let mut hits = 0;
    for i in 0..tangle.len() {
        let key = tx_key(TxId(i as u32), 0);
        let sig = tangle.history_sig(i + 1);
        match cache.get(key, sig, tel) {
            Some(got) => {
                hits += 1;
                let want = oracle(key, sig);
                assert_eq!(
                    (got.0.to_bits(), got.1.to_bits()),
                    (want.0.to_bits(), want.1.to_bits()),
                    "stale cached loss served for tx {i}"
                );
            }
            None => {
                let (loss, acc) = oracle(key, sig);
                cache.insert(key, sig, loss, acc, tel);
            }
        }
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Append/diverge/restore schedules never yield a stale cached loss:
    /// a warm cache carried across a history replacement either hits with
    /// the value the *new* history demands or invalidates — and always
    /// serves the full shared prefix.
    #[test]
    fn diverge_restore_never_serves_stale(
        prefix in prop::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        suffix_a in prop::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        suffix_b in prop::collection::vec((any::<u8>(), any::<u8>()), 0..16),
        regrow in prop::collection::vec((any::<u8>(), any::<u8>()), 0..12),
    ) {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink);
        let mut cache = EvalCache::new(4096);

        // Original history: shared prefix + suffix A.
        let mut script_a = prefix.clone();
        script_a.extend_from_slice(&suffix_a);
        let before = tangle_from_script(&script_a);
        probe_all(&mut cache, &before, &tel);
        // Warm cache: immediate re-probe hits everywhere.
        let warm = probe_all(&mut cache, &before, &tel);
        prop_assert_eq!(warm as usize, before.len());

        // Crash/restore: the replica is regrown from the shared prefix
        // with a different suffix, then extends further. The cache is
        // deliberately carried across the replacement — signature checks
        // alone must keep it truthful.
        let mut script_b = prefix.clone();
        script_b.extend_from_slice(&suffix_b);
        script_b.extend_from_slice(&regrow);
        let after = tangle_from_script(&script_b);
        let inval_before = tel.counter_value("eval_cache.invalidations");
        let hits = probe_all(&mut cache, &after, &tel);

        // The shared prefix (genesis + prefix script) has identical
        // structure in both histories, so its signatures match and the
        // warm entries must all serve.
        prop_assert!(
            hits as usize > prefix.len(),
            "shared prefix (genesis + {} entries) must survive the restore, got {} hits",
            prefix.len(),
            hits
        );
        // Any probe against a structurally diverged suffix entry must
        // have been dropped as an invalidation, never served.
        let diverged = after
            .len()
            .min(before.len())
            .saturating_sub(hits as usize);
        let inval = tel.counter_value("eval_cache.invalidations") - inval_before;
        prop_assert_eq!(
            inval as usize, diverged,
            "every overlapping diverged entry is an invalidation"
        );

        // Post-restore appends behave like a fresh history: a second pass
        // over the regrown tangle hits everywhere with the new values.
        let rewarmed = probe_all(&mut cache, &after, &tel);
        prop_assert_eq!(rewarmed as usize, after.len());

        // And an explicit wholesale drop (the gossip restart path) leaves
        // nothing behind to serve.
        cache.invalidate_all(&tel);
        prop_assert!(cache.is_empty());
        let cold = {
            let mut n = 0;
            for i in 0..after.len() {
                let key = tx_key(TxId(i as u32), 0);
                if cache
                    .get(key, after.history_sig(i + 1), &tel)
                    .is_some()
                {
                    n += 1;
                }
            }
            n
        };
        prop_assert_eq!(cold, 0, "invalidate_all must empty the cache");
    }
}
