//! End-to-end conformance harness tests: the healthy protocol explores
//! clean, and a deliberately injected stale-cache bug is caught and
//! shrinks to a small replayable artifact.

use lt_conformance::{check_schedule, explore, shrink, Artifact, Mutation, Schedule};

#[test]
fn healthy_protocol_explores_clean() {
    let failures = explore(6, 7, Mutation::None);
    assert!(
        failures.is_empty(),
        "healthy protocol must have zero violations, got: {:?}",
        failures
            .iter()
            .map(|(_, v)| v.invariant.as_str())
            .collect::<Vec<_>>()
    );
}

#[test]
fn injected_stale_cache_bug_is_caught_shrunk_and_replayable() {
    // Explore until the mutated shadow cache serves stale weights. The
    // bug needs churn (crash + empty restart + regrowth), so scan a few
    // seeds' worth of schedules.
    let failures = explore(24, 11, Mutation::StaleCache);
    let (schedule, violation) = failures
        .iter()
        .find(|(_, v)| v.invariant == "stale-shadow-cache")
        .expect("the length-only cache validation must be caught");

    let (small, _spent) = shrink(schedule, violation, Mutation::StaleCache, 150);
    assert!(
        small.ops.len() <= 10,
        "shrunk repro should be near-minimal, got {} ops: {:?}",
        small.ops.len(),
        small.ops
    );
    let replayed = check_schedule(&small, Mutation::StaleCache)
        .expect_err("the shrunk schedule must still reproduce the bug");
    assert_eq!(replayed.invariant, violation.invariant);

    // Artifact round-trip: the repro survives serialization, and the
    // same schedule is clean against the unmutated protocol (which is
    // exactly the regression-artifact contract in tests/artifacts/).
    let path = std::env::temp_dir().join("lt_conformance_stale_cache_repro.json");
    Artifact::new(small, &replayed).save(&path).unwrap();
    let loaded = Artifact::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        loaded.replay(Mutation::StaleCache).unwrap_err().invariant,
        "stale-shadow-cache"
    );
    loaded
        .replay(Mutation::None)
        .expect("the healthy protocol must replay the artifact clean");
}

#[test]
fn schedules_shrink_stably_across_reruns() {
    // Determinism of the whole loop: same seed, same failure, same
    // shrunk schedule.
    let run = || {
        let failures = explore(24, 11, Mutation::StaleCache);
        let (schedule, violation) = failures
            .iter()
            .find(|(_, v)| v.invariant == "stale-shadow-cache")
            .expect("mutation must be caught")
            .clone();
        shrink(&schedule, &violation, Mutation::StaleCache, 150).0
    };
    assert_eq!(run(), run());
}

#[test]
fn single_activation_schedule_matches_across_executors() {
    // The smallest interesting schedule: one activation per node, one
    // barrier. Differential agreement here is the base case everything
    // else builds on.
    let s = Schedule {
        seed: 5,
        nodes: 4,
        ops: (0..4)
            .map(|n| lt_conformance::Op::Activate { node: n })
            .collect(),
    };
    check_schedule(&s, Mutation::None).expect("base case must be clean");
}
