//! Poisoning-starvation conformance (§III-E): with 30% label-flipping
//! attackers and tip validation enabled, malicious transactions must be
//! starved of approvals. The property is checked in **both** executors of
//! the protocol semantics — the pure reference model ([`StubSim`]) and
//! the real [`Simulation`] — driven through the same activation schedule,
//! and the two must agree: no malicious transaction's tip-approval
//! fraction reaches the confirmation threshold in either.

use learning_tangle::{assign_malicious, AttackKind, SimConfig, Simulation, TangleHyperParams};
use lt_conformance::{Schedule, StructModel, StubSim};
use tangle_ledger::analysis::TangleAnalysis;
use tangle_ledger::walk::RandomWalk;
use tinynn::rng::seeded;
use tinynn::Sequential;

/// A malicious transaction approved by ≥90% of tips would be on the verge
/// of confirmation — starvation means staying clearly below that.
const THRESHOLD: f64 = 0.9;

const NODES: usize = 10;
const FLIP_SRC: u32 = 0;
const FLIP_DST: u32 = 1;

fn dataset() -> feddata::FederatedDataset {
    feddata::blobs::generate(
        &feddata::blobs::BlobsConfig {
            users: NODES,
            samples_per_user: (20, 28),
            noise_std: 0.6,
            ..feddata::blobs::BlobsConfig::default()
        },
        101,
    )
}

fn build() -> Sequential {
    tinynn::zoo::mlp(8, &[10], 4, &mut seeded(5))
}

fn cfg() -> SimConfig {
    SimConfig {
        nodes_per_round: 4,
        lr: 0.2,
        local_epochs: 1,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed: 13,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            sample_size: 4,
            tip_validation: true, // the §III-E defense under test
            ..TangleHyperParams::basic()
        },
        network: None,
    }
}

/// Max tip-approval fraction over malicious-issued transactions, computed
/// exactly by the reference model on an arbitrary ledger structure.
fn max_malicious_approval(views: &[tangle_ledger::TxView], malicious: &[usize]) -> f64 {
    let approval = StructModel::new(views)
        .expect("executor ledger well-formed")
        .tip_approval();
    views
        .iter()
        .zip(&approval)
        .filter(|(v, _)| v.issuer != u64::MAX && malicious.contains(&(v.issuer as usize)))
        .map(|(_, &a)| a)
        .fold(0.0, f64::max)
}

#[test]
fn label_flip_attackers_are_starved_in_model_and_simulation() {
    // One seeded schedule drives both executors.
    let rounds = Schedule::generate(29, NODES, 40).rounds();
    assert!(rounds.len() >= 4, "schedule must contain real work");

    // Real simulator under attack, defense on.
    let mut sim = Simulation::new(dataset(), cfg(), build);
    let malicious = assign_malicious(
        sim.nodes_mut(),
        0.3,
        0, // malicious from the first round: no benign pre-training grace
        AttackKind::LabelFlip {
            src: FLIP_SRC,
            dst: FLIP_DST,
        },
        77,
        learning_tangle::attack::default_flip_source(FLIP_SRC, FLIP_DST),
    );
    assert_eq!(malicious.len(), 3, "30% of 10 nodes");
    for r in &rounds {
        sim.round_with_nodes(r);
    }

    // Reference model under the same schedule and attacker set.
    let mut stub = StubSim::new(NODES, &malicious, cfg().hyper.num_tips);
    for r in &rounds {
        stub.round_with_nodes(r);
    }

    // The attack must actually be exercised, and honest progress made.
    let views = sim.tangle().structure();
    assert!(views.len() > 10, "honest learning must have progressed");
    let honest_published = views
        .iter()
        .any(|v| v.issuer != u64::MAX && !malicious.contains(&(v.issuer as usize)));
    assert!(honest_published);
    assert!(
        stub.views().len() > rounds.len(),
        "stub attackers always publish, so the model ledger must grow"
    );

    // Starvation, exactly, in both executors.
    let sim_max = max_malicious_approval(&views, &malicious);
    let stub_max = stub.max_malicious_approval();
    assert!(
        sim_max < THRESHOLD,
        "simulation: a malicious tx reached tip-approval {sim_max}"
    );
    assert!(
        stub_max < THRESHOLD,
        "reference model: a malicious tx reached tip-approval {stub_max}"
    );

    // And through the production estimator: the sampled approval
    // confidence the consensus layer actually uses must agree that no
    // malicious transaction approaches confirmation.
    let analysis = TangleAnalysis::compute(sim.tangle());
    let conf = analysis.approval_confidence(
        sim.tangle(),
        &RandomWalk::new(cfg().hyper.alpha),
        64,
        0xF00D,
    );
    let sampled_max = views
        .iter()
        .zip(&conf)
        .filter(|(v, _)| v.issuer != u64::MAX && malicious.contains(&(v.issuer as usize)))
        .map(|(_, &c)| c as f64)
        .fold(0.0, f64::max);
    assert!(
        sampled_max < THRESHOLD,
        "sampled approval confidence: malicious tx at {sampled_max}"
    );
}

/// Control: the starvation bound is not vacuous — in an all-honest run,
/// honest transactions gather broad exact tip approval and cross the
/// threshold under the confirmation-style (weight-greedy) estimator.
#[test]
fn honest_transactions_do_get_confirmed() {
    let rounds = Schedule::generate(29, NODES, 40).rounds();
    let mut sim = Simulation::new(dataset(), cfg(), build);
    for r in &rounds {
        sim.round_with_nodes(r);
    }
    let views = sim.tangle().structure();
    let approval = StructModel::new(&views).unwrap().tip_approval();
    let max_honest = views
        .iter()
        .zip(&approval)
        .filter(|(v, _)| v.issuer != u64::MAX)
        .map(|(_, &a)| a)
        .fold(0.0, f64::max);
    assert!(max_honest > 0.5, "honest txs must gather broad approval");
    // The confirmation-style estimate (weight-greedy walk, as used when
    // checking finality) does push honest transactions past the threshold
    // the attackers never reach.
    let analysis = TangleAnalysis::compute(sim.tangle());
    let conf = analysis.approval_confidence(sim.tangle(), &RandomWalk::new(0.5), 64, 0xF00D);
    let max_conf = views
        .iter()
        .zip(&conf)
        .filter(|(v, _)| v.issuer != u64::MAX)
        .map(|(_, &c)| c as f64)
        .fold(0.0, f64::max);
    assert!(
        max_conf >= THRESHOLD,
        "weight-greedy approval confidence only reached {max_conf}"
    );
}
