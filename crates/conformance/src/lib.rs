//! # lt-conformance — model-based conformance testing for the learning tangle
//!
//! The workspace has three executors of the same protocol: the round-based
//! [`Simulation`](learning_tangle::Simulation), the asynchronous simulator
//! ([`learning_tangle::async_sim`]), and the gossip network
//! ([`tangle_gossip::learn::GossipLearning`]). They share the node logic
//! but differ in everything around it — locking, snapshots, caches,
//! message delivery, churn. This crate checks that they still agree on
//! the *protocol*:
//!
//! * [`model`] — a pure in-memory **reference model**: naive,
//!   independently written implementations of the ledger semantics
//!   (weights, ratings, tips, depths, confirmation, reference selection)
//!   over payload-free [`TxView`](tangle_ledger::TxView) structure, plus a
//!   deterministic stub-trainer closed loop for protocol-level properties
//!   that must not depend on real gradients.
//! * [`schedule`] — seeded generation of arbitrary interleavings of node
//!   activations, message-delivery windows, and crash/restart churn.
//! * [`mod@explore`] — drives the real executors through equivalent schedules
//!   and checks differential agreement plus standalone invariants;
//!   [`explore::Mutation`] can inject a known bug (a stale-cache read) to
//!   prove the harness catches it.
//! * [`mod@shrink`] — delta-debugging minimization of failing schedules.
//! * [`artifact`] — JSON repro artifacts (seed + shrunk schedule),
//!   replayable via `lt-experiments conformance --replay <file>`.
//! * [`gen`] — small shared generators (script-driven tangles) reused by
//!   the property-test suites of `tangle-ledger` and the facade crate.

pub mod artifact;
pub mod explore;
pub mod gen;
pub mod model;
pub mod schedule;
pub mod shrink;

pub use artifact::Artifact;
pub use explore::{
    check_ledger_invariants, check_replica_caches, check_schedule, explore, GossipChecker,
    Mutation, Violation,
};
pub use model::{ShadowCache, StructModel, StubSim};
pub use schedule::{Op, Schedule};
pub use shrink::shrink;
