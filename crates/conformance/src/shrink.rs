//! Delta-debugging minimization of failing schedules.

use crate::explore::{check_schedule, Mutation, Violation};
use crate::schedule::Schedule;

/// Minimize a failing schedule: repeatedly remove chunks of ops (halves
/// down to single ops) while the *same invariant* keeps failing. The
/// interpretation of every op is state-tolerant (see
/// [`crate::schedule::Op`]), so any subsequence is a valid candidate.
///
/// `budget` bounds the number of candidate re-executions (each one runs
/// all three executors); the best schedule found within the budget is
/// returned together with the number of executions spent.
pub fn shrink(
    schedule: &Schedule,
    violation: &Violation,
    mutation: Mutation,
    budget: usize,
) -> (Schedule, usize) {
    let mut best = schedule.clone();
    let mut spent = 0usize;
    let fails_same = |candidate: &Schedule, spent: &mut usize| -> bool {
        *spent += 1;
        matches!(check_schedule(candidate, mutation),
                 Err(v) if v.invariant == violation.invariant)
    };
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.ops.len() && spent < budget {
            let end = (start + chunk).min(best.ops.len());
            let mut candidate = best.clone();
            candidate.ops.drain(start..end);
            if !candidate.ops.is_empty() && fails_same(&candidate, &mut spent) {
                best = candidate;
                progressed = true;
                // Same position now holds the next chunk; don't advance.
            } else {
                start = end;
            }
        }
        if spent >= budget {
            break;
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    (best, spent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Op;

    #[test]
    fn shrinking_never_invents_ops() {
        // With Mutation::None and a healthy protocol nothing fails, so
        // shrink must return the input untouched after one probe per
        // chunk pass — exercised cheaply with a tiny schedule.
        let s = Schedule {
            seed: 3,
            nodes: 2,
            ops: vec![Op::Activate { node: 0 }, Op::Deliver { ticks: 1 }],
        };
        let v = Violation {
            invariant: "never-fires".into(),
            detail: String::new(),
        };
        let (out, spent) = shrink(&s, &v, Mutation::None, 8);
        assert_eq!(out, s);
        assert!(spent <= 8);
    }
}
