//! Schedules: seeded interleavings of node activations, delivery windows,
//! and churn, interpreted by every executor in [`mod@crate::explore`].

use rand::RngExt;
use serde::{Deserialize, Serialize};
use tinynn::rng::seeded;

/// One scheduled event. The same op stream drives all executors; ops an
/// executor has no analogue for (e.g. churn on the round simulator) are
/// ignored by its interpretation, and ops that are invalid in the current
/// state (crashing a peer that is already down) are skipped — tolerance
/// that keeps every subsequence of a schedule a valid schedule, which is
/// what makes shrinking simple.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// One node runs Algorithm 2 against its current view and publishes.
    Activate {
        /// Node / peer index (reduced modulo the population).
        node: usize,
    },
    /// Let the network deliver in-flight messages for `ticks` time steps.
    /// Round-based executors treat this as a round barrier.
    Deliver {
        /// Simulated time steps.
        ticks: u64,
    },
    /// Crash a gossip peer (it stops receiving and cannot train).
    Crash {
        /// Peer index.
        peer: usize,
    },
    /// Restart a crashed peer, empty or from its latest checkpoint.
    Restart {
        /// Peer index.
        peer: usize,
        /// Recover from the last checkpoint instead of a blank replica.
        from_checkpoint: bool,
    },
}

/// A seeded schedule over a fixed population.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Seed for every derived RNG stream (executors, datasets, networks).
    pub seed: u64,
    /// Population size (nodes == gossip peers).
    pub nodes: usize,
    /// The event stream.
    pub ops: Vec<Op>,
}

impl Schedule {
    /// Generate a random schedule of `len` ops: mostly activations,
    /// interspersed delivery windows, and occasional crash/restart churn.
    /// Every crashed peer is restarted by the end and the schedule closes
    /// with a delivery window, so the network can always reconverge.
    pub fn generate(seed: u64, nodes: usize, len: usize) -> Self {
        assert!(nodes >= 2, "churn needs at least two peers");
        let mut rng = seeded(seed);
        let mut down: Vec<usize> = Vec::new();
        let mut ops = Vec::with_capacity(len + nodes + 1);
        for _ in 0..len {
            let roll = rng.random_range(0..10u32);
            let op = match roll {
                0..=5 => Op::Activate {
                    node: rng.random_range(0..nodes),
                },
                6..=7 => Op::Deliver {
                    ticks: rng.random_range(1..=3u64),
                },
                8 if down.len() + 2 <= nodes => {
                    // Keep at least two peers up so gossip stays alive.
                    let up: Vec<usize> = (0..nodes).filter(|p| !down.contains(p)).collect();
                    let peer = up[rng.random_range(0..up.len())];
                    down.push(peer);
                    Op::Crash { peer }
                }
                9 if !down.is_empty() => {
                    let peer = down.swap_remove(rng.random_range(0..down.len()));
                    Op::Restart {
                        peer,
                        from_checkpoint: rng.random_range(0..2u32) == 0,
                    }
                }
                _ => Op::Activate {
                    node: rng.random_range(0..nodes),
                },
            };
            ops.push(op);
        }
        for peer in down {
            ops.push(Op::Restart {
                peer,
                from_checkpoint: false,
            });
        }
        ops.push(Op::Deliver { ticks: 4 });
        Self { seed, nodes, ops }
    }

    /// The round-based interpretation: consecutive activations form one
    /// round, `Deliver` acts as the round barrier, churn ops are invisible
    /// (the round simulators have no network to crash). Empty rounds are
    /// dropped.
    pub fn rounds(&self) -> Vec<Vec<usize>> {
        let mut rounds = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        for op in &self.ops {
            match op {
                Op::Activate { node } => current.push(node % self.nodes),
                Op::Deliver { .. } => {
                    if !current.is_empty() {
                        rounds.push(std::mem::take(&mut current));
                    }
                }
                Op::Crash { .. } | Op::Restart { .. } => {}
            }
        }
        if !current.is_empty() {
            rounds.push(current);
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_closed() {
        let a = Schedule::generate(42, 5, 20);
        let b = Schedule::generate(42, 5, 20);
        assert_eq!(a, b);
        // Every crash has a later restart.
        let mut down: Vec<usize> = Vec::new();
        for op in &a.ops {
            match *op {
                Op::Crash { peer } => down.push(peer),
                Op::Restart { peer, .. } => down.retain(|&p| p != peer),
                _ => {}
            }
        }
        assert!(down.is_empty(), "generated schedules restart everyone");
    }

    #[test]
    fn rounds_group_at_delivery_barriers() {
        let s = Schedule {
            seed: 0,
            nodes: 3,
            ops: vec![
                Op::Activate { node: 0 },
                Op::Activate { node: 4 },
                Op::Deliver { ticks: 1 },
                Op::Crash { peer: 1 },
                Op::Activate { node: 2 },
            ],
        };
        assert_eq!(s.rounds(), vec![vec![0, 1], vec![2]]);
    }
}
