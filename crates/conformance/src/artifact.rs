//! Replayable repro artifacts: a failing (usually shrunk) schedule plus
//! the violation it triggered, as JSON.
//!
//! Artifacts serve two roles: a failing exploration writes one so the bug
//! can be replayed (`lt-experiments conformance --replay <file>`), and
//! once fixed the artifact is checked into `tests/artifacts/` as a
//! regression test — replaying it against the healthy protocol must find
//! no violation.

use crate::explore::{check_schedule, Mutation, Violation};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Artifact format version (bump on schema changes).
pub const ARTIFACT_VERSION: u32 = 1;

/// A serialized conformance failure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Artifact {
    /// Schema version.
    pub version: u32,
    /// The invariant that failed when the artifact was produced.
    pub invariant: String,
    /// Evidence captured at failure time.
    pub detail: String,
    /// The (shrunk) schedule to replay.
    pub schedule: Schedule,
}

impl Artifact {
    /// Bundle a failing schedule and its violation.
    pub fn new(schedule: Schedule, violation: &Violation) -> Self {
        Self {
            version: ARTIFACT_VERSION,
            invariant: violation.invariant.clone(),
            detail: violation.detail.clone(),
            schedule,
        }
    }

    /// Write as pretty-printed JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }

    /// Load from JSON, rejecting unknown schema versions.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let artifact: Self = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if artifact.version != ARTIFACT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported artifact version {}", artifact.version),
            ));
        }
        Ok(artifact)
    }

    /// Re-run the schedule. `Ok(())` means the protocol is healthy (the
    /// recorded bug no longer reproduces); `Err` returns the violation.
    pub fn replay(&self, mutation: Mutation) -> Result<(), Violation> {
        check_schedule(&self.schedule, mutation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Op;

    #[test]
    fn artifact_roundtrips_through_json() {
        let artifact = Artifact {
            version: ARTIFACT_VERSION,
            invariant: "stale-shadow-cache".into(),
            detail: "example".into(),
            schedule: Schedule {
                seed: 11,
                nodes: 4,
                ops: vec![
                    Op::Activate { node: 1 },
                    Op::Crash { peer: 2 },
                    Op::Deliver { ticks: 3 },
                    Op::Restart {
                        peer: 2,
                        from_checkpoint: true,
                    },
                ],
            },
        };
        let dir = std::env::temp_dir().join("lt_conformance_artifact_test.json");
        artifact.save(&dir).unwrap();
        let loaded = Artifact::load(&dir).unwrap();
        let _ = std::fs::remove_file(&dir);
        assert_eq!(loaded, artifact);
    }
}
