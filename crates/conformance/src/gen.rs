//! Shared test generators.
//!
//! The property suites of `tangle-ledger` and the facade crate both need
//! arbitrary-but-valid tangles; this is the one copy of that generator.

use tangle_ledger::{Tangle, TxId};

/// Build a tangle from a compact script: entry `i` (zero-based) appends
/// transaction `i + 1` whose two parents are `a` and `b` reduced modulo
/// the current length, so any byte pair is a valid edge choice. Duplicate
/// parents collapse (the ledger dedups), which deliberately also produces
/// single-parent transactions.
pub fn tangle_from_script(script: &[(u8, u8)]) -> Tangle<u32> {
    let mut t = Tangle::new(0);
    for (i, &(a, b)) in script.iter().enumerate() {
        let n = t.len() as u32;
        t.add(i as u32 + 1, vec![TxId(a as u32 % n), TxId(b as u32 % n)])
            .unwrap();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_respects_insertion_order() {
        let t = tangle_from_script(&[(0, 0), (0, 1), (7, 2)]);
        assert_eq!(t.len(), 4);
        for tx in t.transactions().iter().skip(1) {
            assert!(tx.parents.iter().all(|p| p.index() < tx.id.index()));
        }
    }
}
