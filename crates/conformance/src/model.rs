//! The abstract reference model.
//!
//! Everything here is deliberately *naive*: plain reachability sweeps over
//! the payload-free [`TxView`] structure instead of the bitset dynamic
//! programs and incremental caches the real crates use. A naive
//! implementation that is obviously faithful to the definitions is what
//! makes the differential comparison in [`mod@crate::explore`] an oracle
//! rather than a tautology.

use tangle_ledger::TxView;

/// Structural well-formedness failure of a ledger view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Malformed(pub String);

/// The reference model of one ledger snapshot: independent implementations
/// of every derived quantity the consensus layer computes.
pub struct StructModel<'a> {
    txs: &'a [TxView],
    /// `children[i]` = direct approvers of `i`, in insertion order.
    children: Vec<Vec<usize>>,
}

impl<'a> StructModel<'a> {
    /// Validate structural invariants (the acyclicity oracle) and build
    /// the model. Checks: contiguous ids in insertion order, a unique
    /// genesis with no parents, and every non-genesis transaction
    /// approving only *earlier* transactions through sorted, deduplicated
    /// parent lists — which together guarantee the graph is a DAG.
    pub fn new(txs: &'a [TxView]) -> Result<Self, Malformed> {
        let mut children = vec![Vec::new(); txs.len()];
        for (i, tx) in txs.iter().enumerate() {
            if tx.id as usize != i {
                return Err(Malformed(format!(
                    "tx at position {i} has id {} (ids must be the insertion order)",
                    tx.id
                )));
            }
            if i == 0 {
                if !tx.parents.is_empty() || tx.issuer != u64::MAX {
                    return Err(Malformed("genesis must be parentless and unissued".into()));
                }
                continue;
            }
            if tx.parents.is_empty() {
                return Err(Malformed(format!("tx {i} approves nothing")));
            }
            if !tx.parents.windows(2).all(|w| w[0] < w[1]) {
                return Err(Malformed(format!(
                    "tx {i} parents not sorted+deduped: {:?}",
                    tx.parents
                )));
            }
            for &p in &tx.parents {
                if p as usize >= i {
                    return Err(Malformed(format!(
                        "tx {i} approves {p}: not an earlier transaction (cycle or dangling edge)"
                    )));
                }
                children[p as usize].push(i);
            }
        }
        Ok(Self { txs, children })
    }

    /// The transactions under the model.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the view is empty (it never is for a valid ledger).
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Past cone of `i` (excluding `i`), as a membership mask.
    fn past_mask(&self, i: usize) -> Vec<bool> {
        let mut seen = vec![false; self.txs.len()];
        let mut stack: Vec<usize> = self.txs[i].parents.iter().map(|&p| p as usize).collect();
        while let Some(x) = stack.pop() {
            if !seen[x] {
                seen[x] = true;
                stack.extend(self.txs[x].parents.iter().map(|&p| p as usize));
            }
        }
        seen
    }

    /// Cumulative weights by definition: `w(t) = 1 + |{x : t ∈ past(x)}|`.
    pub fn weights(&self) -> Vec<u32> {
        let mut out = vec![1u32; self.txs.len()];
        for i in 0..self.txs.len() {
            for (a, &inside) in self.past_mask(i).iter().enumerate() {
                if inside {
                    out[a] += 1;
                }
            }
        }
        out
    }

    /// Ratings by definition: `r(t) = |past(t)|` (genesis 0).
    pub fn ratings(&self) -> Vec<u32> {
        (0..self.txs.len())
            .map(|i| self.past_mask(i).iter().filter(|&&x| x).count() as u32)
            .collect()
    }

    /// Tips: transactions nobody approves, in id order.
    pub fn tips(&self) -> Vec<u32> {
        (0..self.txs.len())
            .filter(|&i| self.children[i].is_empty())
            .map(|i| i as u32)
            .collect()
    }

    /// Depths: longest approval path from any tip down to each
    /// transaction (tips are 0).
    pub fn depths(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.txs.len()];
        for i in (0..self.txs.len()).rev() {
            out[i] = self.children[i]
                .iter()
                .map(|&c| out[c] + 1)
                .max()
                .unwrap_or(0);
        }
        out
    }

    /// Per-transaction fraction of current tips whose past cone (tip
    /// included) contains it — 1.0 means *confirmed* in the Fig. 2 sense.
    pub fn tip_approval(&self) -> Vec<f64> {
        let tips = self.tips();
        let mut hit = vec![0u32; self.txs.len()];
        for &t in &tips {
            hit[t as usize] += 1;
            for (a, &inside) in self.past_mask(t as usize).iter().enumerate() {
                if inside {
                    hit[a] += 1;
                }
            }
        }
        hit.iter()
            .map(|&h| h as f64 / tips.len().max(1) as f64)
            .collect()
    }

    /// Confirmed transactions: non-genesis, non-tip, approved by every
    /// current tip.
    pub fn confirmed(&self) -> Vec<u32> {
        let approval = self.tip_approval();
        (1..self.txs.len())
            .filter(|&i| !self.children[i].is_empty() && approval[i] == 1.0)
            .map(|i| i as u32)
            .collect()
    }

    /// Algorithm 1, reimplemented from the paper text: the `n` ids with
    /// the highest `confidence × rating`, ties toward higher (fresher)
    /// ids. A selection loop rather than a sort, so the tie-breaking logic
    /// is independent of the real implementation's comparator.
    pub fn choose_reference(&self, confidence: &[f32], ratings: &[u32], n: usize) -> Vec<u32> {
        let mut taken = vec![false; self.txs.len()];
        let mut out = Vec::new();
        for _ in 0..n.min(self.txs.len()) {
            let mut best: Option<(f64, u32)> = None;
            for i in 0..self.txs.len() {
                if taken[i] {
                    continue;
                }
                let score = confidence[i] as f64 * ratings[i] as f64;
                let better = match best {
                    None => true,
                    Some((s, id)) => score > s || (score == s && i as u32 > id),
                };
                if better {
                    best = Some((score, i as u32));
                }
            }
            let (_, id) = best.expect("n bounded by len");
            taken[id as usize] = true;
            out.push(id);
        }
        out
    }
}

/// The conformance harness's own incremental weights/ratings cache over a
/// replica's structure — a naive mirror of
/// [`tangle_ledger::AnalysisCache`], used as the differential counterpart
/// to the batch DPs when replaying gossip schedules.
///
/// `validate_history` selects the correct behaviour (compare the stored
/// prefix *content* before extending incrementally) or the deliberately
/// buggy one ([`crate::explore::Mutation::StaleCache`]: compare lengths
/// only), which silently extends on top of a diverged prefix after a peer
/// regrows its replica post-churn — exactly the class of bug the real
/// cache's history validation exists to prevent.
#[derive(Default)]
pub struct ShadowCache {
    prefix: Vec<TxView>,
    weights: Vec<u32>,
    ratings: Vec<u32>,
    /// Full recomputations performed.
    pub rebuilds: u64,
}

impl ShadowCache {
    /// An empty cache (first refresh is a rebuild).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached cumulative weights, aligned with the last refreshed view.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Cached ratings, aligned with the last refreshed view.
    pub fn ratings(&self) -> &[u32] {
        &self.ratings
    }

    fn rebuild(&mut self, view: &[TxView]) {
        let model = StructModel::new(view).expect("refresh requires a well-formed view");
        self.weights = model.weights();
        self.ratings = model.ratings();
        self.rebuilds += 1;
    }

    /// Bring the cache up to date with `view`. With `validate_history`
    /// the stored prefix is compared by content and any divergence forces
    /// a rebuild; without it only lengths are compared (the injected
    /// stale-cache bug).
    pub fn refresh(&mut self, view: &[TxView], validate_history: bool) {
        let shared_ok = if validate_history {
            view.len() >= self.prefix.len() && view[..self.prefix.len()] == self.prefix[..]
        } else {
            view.len() >= self.prefix.len()
        };
        if !shared_ok {
            self.rebuild(view);
        } else {
            // Incremental extension: appending `t` raises the weight of
            // exactly past(t) by one; the rating of `t` is |past(t)|.
            for i in self.prefix.len()..view.len() {
                let mut seen = vec![false; i];
                let mut stack: Vec<usize> = view[i].parents.iter().map(|&p| p as usize).collect();
                while let Some(x) = stack.pop() {
                    if x < seen.len() && !seen[x] {
                        seen[x] = true;
                        stack.extend(view[x].parents.iter().map(|&p| p as usize));
                    }
                }
                let past = seen.iter().filter(|&&s| s).count() as u32;
                self.weights.push(1);
                self.ratings.push(past);
                for (a, &inside) in seen.iter().enumerate() {
                    if inside {
                        self.weights[a] += 1;
                    }
                }
            }
        }
        self.prefix = view.to_vec();
    }
}

/// A deterministic stub-trainer closed loop: the protocol with the
/// machine learning replaced by a scalar "quality" per transaction.
///
/// Honest nodes pick the best current tips by quality (the stub analogue
/// of tip validation), average them, improve deterministically, and face
/// the same publish gate (`better than the reference`); malicious nodes
/// always publish quality-zero transactions approving the best tips they
/// can see. Protocol-level properties — like poisoning starvation
/// (§III-E) — must hold in this model *and* in the real executors.
pub struct StubSim {
    views: Vec<TxView>,
    quality: Vec<f64>,
    malicious: Vec<bool>,
    num_tips: usize,
    round: u64,
}

impl StubSim {
    /// A population of `nodes` stub trainers, the listed ones malicious,
    /// approving `num_tips` parents per publication.
    pub fn new(nodes: usize, malicious: &[usize], num_tips: usize) -> Self {
        let mut flags = vec![false; nodes];
        for &m in malicious {
            flags[m] = true;
        }
        Self {
            views: vec![TxView {
                id: 0,
                issuer: u64::MAX,
                round: 0,
                parents: vec![],
            }],
            quality: vec![0.5],
            malicious: flags,
            num_tips: num_tips.max(1),
            round: 0,
        }
    }

    /// The ledger structure grown so far.
    pub fn views(&self) -> &[TxView] {
        &self.views
    }

    fn tips(&self) -> Vec<u32> {
        StructModel::new(&self.views)
            .expect("stub ledger is well-formed by construction")
            .tips()
    }

    /// Best `num_tips` distinct tips by quality (descending), ties toward
    /// lower id — the stub's tip validation.
    fn select_parents(&self, tips: &[u32]) -> Vec<u32> {
        let mut ranked: Vec<u32> = tips.to_vec();
        ranked.sort_by(|&a, &b| {
            self.quality[b as usize]
                .partial_cmp(&self.quality[a as usize])
                .expect("qualities are finite")
                .then(a.cmp(&b))
        });
        ranked.truncate(self.num_tips);
        ranked.sort_unstable();
        ranked
    }

    /// Quality of the current reference transaction (top-1 by
    /// weight-proxy confidence × rating).
    fn reference_quality(&self) -> f64 {
        let model = StructModel::new(&self.views).expect("well-formed");
        let weights = model.weights();
        let n = self.views.len() as f32;
        let confidence: Vec<f32> = weights.iter().map(|&w| w as f32 / n).collect();
        let reference = model.choose_reference(&confidence, &model.ratings(), 1)[0];
        self.quality[reference as usize]
    }

    /// One round at the barrier: every node in `idx` sees the same
    /// snapshot, publishes are appended together. Returns how many
    /// published.
    pub fn round_with_nodes(&mut self, idx: &[usize]) -> usize {
        self.round += 1;
        let tips = self.tips();
        let q_ref = self.reference_quality();
        let mut staged: Vec<(usize, Vec<u32>, f64)> = Vec::new();
        for &ni in idx {
            let parents = self.select_parents(&tips);
            let base: f64 = parents
                .iter()
                .map(|&p| self.quality[p as usize])
                .sum::<f64>()
                / parents.len() as f64;
            if self.malicious[ni] {
                // Poisoners always publish; their models are worthless.
                staged.push((ni, parents, 0.0));
            } else {
                let improved = base + 0.05 * (1.0 - base);
                if improved > q_ref {
                    staged.push((ni, parents, improved));
                }
            }
        }
        let published = staged.len();
        for (ni, parents, q) in staged {
            self.views.push(TxView {
                id: self.views.len() as u32,
                issuer: ni as u64,
                round: self.round,
                parents,
            });
            self.quality.push(q);
        }
        published
    }

    /// Highest tip-approval fraction over all transactions issued by
    /// malicious nodes (0.0 if they never published).
    pub fn max_malicious_approval(&self) -> f64 {
        let approval = StructModel::new(&self.views)
            .expect("well-formed")
            .tip_approval();
        self.views
            .iter()
            .zip(&approval)
            .filter(|(v, _)| v.issuer != u64::MAX && self.malicious[v.issuer as usize])
            .map(|(_, &a)| a)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::tangle_from_script;

    #[test]
    fn naive_model_matches_real_dps_on_scripted_tangles() {
        let t = tangle_from_script(&[(0, 0), (0, 1), (1, 2), (0, 3), (2, 3)]);
        let views = t.structure();
        let model = StructModel::new(&views).unwrap();
        assert_eq!(
            model.weights(),
            tangle_ledger::analysis::cumulative_weights(&t)
        );
        assert_eq!(model.ratings(), tangle_ledger::analysis::ratings(&t));
        assert_eq!(model.depths(), tangle_ledger::analysis::depths(&t));
        let tips: Vec<u32> = t.tips().iter().map(|id| id.index() as u32).collect();
        assert_eq!(model.tips(), tips);
    }

    #[test]
    fn shadow_cache_tracks_appends_and_detects_divergence() {
        let t = tangle_from_script(&[(0, 0), (0, 1), (1, 2)]);
        let views = t.structure();
        let mut cache = ShadowCache::new();
        cache.refresh(&views[..2], true);
        cache.refresh(&views, true);
        assert_eq!(cache.rebuilds, 0, "appends extend incrementally");
        assert_eq!(
            cache.weights(),
            tangle_ledger::analysis::cumulative_weights(&t)
        );
        // Diverge the history: same length, different content.
        let mut forked = views.clone();
        forked[1].parents = vec![0];
        forked[1].issuer = 9;
        cache.refresh(&forked, true);
        assert_eq!(cache.rebuilds, 1, "history validation must force a rebuild");
    }

    #[test]
    fn stub_sim_starves_poisoners() {
        let mut sim = StubSim::new(6, &[4, 5], 2);
        for r in 0..12 {
            sim.round_with_nodes(&[r % 6, (r + 1) % 6, (r + 2) % 6]);
        }
        assert!(sim.views().len() > 10, "stub trainers must keep publishing");
        assert!(
            sim.max_malicious_approval() < 0.9,
            "quality-zero publications must never approach confirmation: {}",
            sim.max_malicious_approval()
        );
    }
}
