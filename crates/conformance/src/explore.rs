//! Schedule exploration: drive every executor through equivalent
//! schedules and check differential agreement plus standalone invariants.
//!
//! Three layers of checking per schedule:
//!
//! 1. **Cross-executor differential** — the round simulator and the
//!    (single-worker, scripted) asynchronous simulator run the same
//!    activation schedule and must agree *byte for byte*: per-round
//!    stats, ledger structure, telemetry events, and analysis-cache
//!    counters.
//! 2. **Model differential** — the naive [`StructModel`] recomputes
//!    weights, ratings, depths, tips, confirmation, and the reference
//!    pick from the definitions and must match the bitset DPs.
//! 3. **Gossip invariants** — the same schedule, reinterpreted as peer
//!    activations plus delivery windows and churn, runs on the gossip
//!    network; after every op each replica must stay acyclic and under
//!    the orphan cap, [`NetStats`](tangle_gossip::NetStats) must stay
//!    monotone with balanced eviction accounting, and both the real
//!    [`AnalysisCache`] and this crate's [`ShadowCache`] must agree with
//!    the from-scratch DPs on every replica they refresh against.

use crate::model::{ShadowCache, StructModel};
use crate::schedule::{Op, Schedule};
use feddata::blobs::{self, BlobsConfig};
use feddata::FederatedDataset;
use learning_tangle::async_sim::run_async_scripted;
use learning_tangle::{Node, RoundStats, SimConfig, Simulation, TangleHyperParams};
use lt_telemetry::{MemorySink, Telemetry};
use std::sync::Arc;
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::{CrashEvent, FaultPlan, Latency, Network, NetworkConfig, Recovery, Topology};
use tangle_ledger::analysis::{self, TangleAnalysis};
use tangle_ledger::walk::RandomWalk;
use tangle_ledger::{AnalysisCache, Tangle};
use tinynn::rng::{derive, seeded};
use tinynn::Sequential;

/// Orphan cap used for conformance networks — small enough that the
/// orphan-cap invariant actually bites.
const ORPHAN_CAP: usize = 16;

/// A deliberately injected bug, used to prove the harness detects the
/// class of defect it exists for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation: the real protocol, expected violation-free.
    None,
    /// The [`ShadowCache`] validates only the *length* of its cached
    /// prefix, not its content, before extending incrementally — so
    /// after a peer crashes, restarts empty, and regrows its replica in
    /// a different arrival order, the cache silently serves weights for
    /// a ledger that no longer exists.
    StaleCache,
}

/// One conformance failure: which invariant broke and how.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Stable invariant name (used to match failures while shrinking).
    pub invariant: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: String) -> Self {
        Self {
            invariant: invariant.into(),
            detail,
        }
    }
}

fn dataset(schedule: &Schedule) -> FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users: schedule.nodes,
            samples_per_user: (18, 24),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        derive(schedule.seed, 0xDA7A),
    )
}

fn build() -> Sequential {
    tinynn::zoo::mlp(8, &[10], 4, &mut seeded(5))
}

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        nodes_per_round: 3,
        lr: 0.2,
        local_epochs: 1,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed,
        hyper: TangleHyperParams {
            confidence_samples: 4,
            sample_size: 4,
            ..TangleHyperParams::basic()
        },
        network: None,
    }
}

/// Run every check over one schedule.
pub fn check_schedule(schedule: &Schedule, mutation: Mutation) -> Result<(), Violation> {
    check_differential(schedule)?;
    check_gossip(schedule, mutation)
}

/// Generate `schedules` seeded schedules over a 5-node population and
/// check each; returns the failures (schedule + first violation).
pub fn explore(schedules: usize, seed: u64, mutation: Mutation) -> Vec<(Schedule, Violation)> {
    let mut failures = Vec::new();
    for i in 0..schedules {
        let s = Schedule::generate(derive(seed, i as u64), 5, 14);
        if let Err(v) = check_schedule(&s, mutation) {
            failures.push((s, v));
        }
    }
    failures
}

// ---- cross-executor + model differential -----------------------------

fn check_differential(schedule: &Schedule) -> Result<(), Violation> {
    let rounds = schedule.rounds();
    let cfg = sim_cfg(schedule.seed);

    // Round simulator, scripted activation order.
    let sync_sink = Arc::new(MemorySink::new());
    let sync_tel = Telemetry::new(sync_sink.clone());
    let mut sim =
        Simulation::new(dataset(schedule), cfg.clone(), build).with_telemetry(sync_tel.clone());
    let sync_stats: Vec<RoundStats> = rounds.iter().map(|r| sim.round_with_nodes(r)).collect();

    // Asynchronous simulator, same schedule through the snapshot/lock path.
    let nodes: Vec<Node> = dataset(schedule)
        .clients
        .into_iter()
        .enumerate()
        .map(|(i, c)| Node::honest(i, c))
        .collect();
    let async_sink = Arc::new(MemorySink::new());
    let async_tel = Telemetry::new(async_sink.clone());
    let (run, async_stats) = run_async_scripted(&nodes, &cfg, build, &rounds, async_tel.clone());

    if sync_stats != async_stats {
        return Err(Violation::new(
            "sync-async-stats",
            format!("round stats diverge: {sync_stats:?} vs {async_stats:?}"),
        ));
    }
    let sync_structure = sim.tangle().structure();
    let async_structure = run.tangle.structure();
    if sync_structure != async_structure {
        return Err(Violation::new(
            "sync-async-structure",
            format!(
                "ledger structure diverges at len {} vs {}",
                sync_structure.len(),
                async_structure.len()
            ),
        ));
    }
    if sync_sink.events() != async_sink.events() {
        return Err(Violation::new(
            "sync-async-events",
            "telemetry event streams diverge".into(),
        ));
    }
    for counter in [
        "tangle.cache_hits",
        "tangle.cache_rebuilds",
        "tangle.cache_appends",
        "tangle.walks",
        "sim.published",
        "sim.rejected",
    ] {
        let (a, b) = (
            sync_tel.counter_value(counter),
            async_tel.counter_value(counter),
        );
        if a != b {
            return Err(Violation::new(
                "sync-async-counters",
                format!("counter {counter}: {a} vs {b}"),
            ));
        }
    }

    check_ledger_invariants(sim.tangle(), &cfg, schedule.seed)
}

/// Model-differential and standalone invariants over one final ledger:
/// acyclicity, weight/rating/depth/tip agreement with the naive
/// [`StructModel`], approval monotonicity, confidence bounds, and the
/// reference pick. Public so external differential harnesses (e.g. the
/// `lt-net` cross-process conformance test) can run the same pass over
/// a ledger reconstructed from daemon archives.
pub fn check_ledger_invariants(
    tangle: &Tangle<learning_tangle::node::ModelParams>,
    cfg: &SimConfig,
    seed: u64,
) -> Result<(), Violation> {
    let views = tangle.structure();
    let model = StructModel::new(&views)
        .map_err(|e| Violation::new("acyclicity", format!("round-sim ledger: {}", e.0)))?;
    let real = TangleAnalysis::compute(tangle);
    if model.weights() != real.cumulative_weight {
        return Err(Violation::new(
            "model-weights",
            format!(
                "naive {:?} vs DP {:?}",
                model.weights(),
                real.cumulative_weight
            ),
        ));
    }
    if model.ratings() != real.rating {
        return Err(Violation::new(
            "model-ratings",
            format!("naive {:?} vs DP {:?}", model.ratings(), real.rating),
        ));
    }
    if model.depths() != analysis::depths(tangle) {
        return Err(Violation::new(
            "model-depths",
            "depth sweep diverges".into(),
        ));
    }
    let real_tips: Vec<u32> = tangle.tips().iter().map(|id| id.index() as u32).collect();
    if model.tips() != real_tips {
        return Err(Violation::new(
            "model-tips",
            format!("naive {:?} vs real {real_tips:?}", model.tips()),
        ));
    }
    // Approval monotonicity: approving `c` adds at least `c` itself to the
    // parent's future cone, so weights strictly grow toward the genesis.
    for tx in &views {
        for &p in &tx.parents {
            if real.cumulative_weight[p as usize] < real.cumulative_weight[tx.id as usize] + 1 {
                return Err(Violation::new(
                    "weight-monotone",
                    format!("w({p}) < w({}) + 1", tx.id),
                ));
            }
        }
    }
    // Confidence invariants under both estimators.
    let walk = RandomWalk {
        alpha: cfg.hyper.alpha,
    };
    let samples = cfg.hyper.confidence_samples;
    let conf = real.walk_confidence(tangle, &walk, samples, derive(seed, 0xC0F1));
    let approval = real.approval_confidence(tangle, &walk, samples, derive(seed, 0xAC0F));
    for (name, values) in [("walk", &conf), ("approval", &approval)] {
        if !values.iter().all(|c| (0.0..=1.0).contains(c)) {
            return Err(Violation::new(
                "confidence-bounds",
                format!("{name} confidence out of [0,1]: {values:?}"),
            ));
        }
        if values[0] != 1.0 {
            return Err(Violation::new(
                "confidence-bounds",
                format!("{name} confidence of the genesis is {} != 1", values[0]),
            ));
        }
    }
    // Approval confidence is monotone along approval edges: any sampled
    // tip approving a child approves its parents too.
    for tx in &views {
        for &p in &tx.parents {
            if approval[p as usize] < approval[tx.id as usize] {
                return Err(Violation::new(
                    "confidence-monotone",
                    format!(
                        "approval({p}) = {} < approval({}) = {}",
                        approval[p as usize], tx.id, approval[tx.id as usize]
                    ),
                ));
            }
        }
    }
    // A confirmed transaction is in every tip's past cone, so every
    // sampled tip approves it: approval confidence exactly 1.
    for c in model.confirmed() {
        if approval[c as usize] != 1.0 {
            return Err(Violation::new(
                "confirmed-confidence",
                format!(
                    "confirmed tx {c} has approval confidence {}",
                    approval[c as usize]
                ),
            ));
        }
    }
    // Reference selection: naive selection loop vs the real comparator.
    let picks: Vec<u32> = real
        .choose_reference(&conf, cfg.hyper.reference_avg)
        .iter()
        .map(|id| id.index() as u32)
        .collect();
    let naive = model.choose_reference(&conf, &real.rating, cfg.hyper.reference_avg);
    if picks != naive {
        return Err(Violation::new(
            "reference-pick",
            format!("real {picks:?} vs naive {naive:?}"),
        ));
    }
    Ok(())
}

// ---- gossip interpretation -------------------------------------------

/// Translate the schedule's churn ops into a [`FaultPlan`] on the virtual
/// clock (one tick per activation, `Deliver` ticks verbatim). Returns the
/// plan and the clock horizon.
fn fault_plan(schedule: &Schedule) -> (FaultPlan, u64) {
    let n = schedule.nodes;
    let mut tick = 0u64;
    let mut open: Vec<Option<usize>> = vec![None; n];
    let mut crashes: Vec<CrashEvent> = Vec::new();
    for op in &schedule.ops {
        match *op {
            Op::Activate { .. } => tick += 1,
            Op::Deliver { ticks } => tick += ticks,
            Op::Crash { peer } => {
                let p = peer % n;
                if open[p].is_none() {
                    open[p] = Some(crashes.len());
                    crashes.push(CrashEvent {
                        peer: p,
                        at: tick + 1,
                        restart_at: None,
                        recovery: Recovery::Empty,
                    });
                }
            }
            Op::Restart {
                peer,
                from_checkpoint,
            } => {
                let p = peer % n;
                if let Some(i) = open[p].take() {
                    crashes[i].restart_at = Some((tick + 1).max(crashes[i].at + 1));
                    crashes[i].recovery = if from_checkpoint {
                        Recovery::FromCheckpoint
                    } else {
                        Recovery::Empty
                    };
                }
            }
        }
    }
    // A shrunk schedule may have dropped the restart: close dangling
    // crashes just past the horizon so the network can always recover.
    for c in &mut crashes {
        if c.restart_at.is_none() {
            c.restart_at = Some((tick + 1).max(c.at + 1));
        }
    }
    let plan = FaultPlan {
        seed: derive(schedule.seed, 0xFA17),
        drop: 0.01,
        duplicate: 0.03,
        corrupt: 0.01,
        reorder_jitter: 1,
        crashes,
    };
    (plan, tick)
}

/// Copy the [`tangle_gossip::NetStats`] counters into a fixed array for
/// monotonicity snapshots.
fn stats_array(net: &Network) -> [u64; 8] {
    let s = &net.stats;
    [
        s.delivered,
        s.dropped,
        s.duplicates,
        s.orphaned,
        s.rejected,
        s.discarded,
        s.rerequests,
        s.evicted,
    ]
}

const STAT_NAMES: [&str; 8] = [
    "delivered",
    "dropped",
    "duplicates",
    "orphaned",
    "rejected",
    "discarded",
    "rerequests",
    "evicted",
];

/// Per-replica differential between the cached analyses (the real
/// [`AnalysisCache`] and this crate's [`ShadowCache`]) and the
/// from-scratch DPs — the stale-cache oracle. Public so churn tests can
/// run the same pass over their own intermediate states.
pub fn check_replica_caches(
    replica: &Tangle<learning_tangle::node::ModelParams>,
    shadow: &mut ShadowCache,
    real: &mut AnalysisCache,
    mutation: Mutation,
    peer: usize,
) -> Result<(), Violation> {
    let views = replica.structure();
    let truth_w = analysis::cumulative_weights(replica);
    let truth_r = analysis::ratings(replica);
    shadow.refresh(&views, mutation != Mutation::StaleCache);
    if shadow.weights() != truth_w || shadow.ratings() != truth_r {
        return Err(Violation::new(
            "stale-shadow-cache",
            format!(
                "peer {peer}: cached weights {:?} vs recomputed {:?}",
                shadow.weights(),
                truth_w
            ),
        ));
    }
    real.refresh(replica);
    let cached = real.analysis();
    if cached.cumulative_weight != truth_w || cached.rating != truth_r {
        return Err(Violation::new(
            "stale-analysis-cache",
            format!("peer {peer}: AnalysisCache serves stale weights after refresh"),
        ));
    }
    Ok(())
}

/// Stateful invariant checker over a gossip network's observable state:
/// per-replica acyclicity, orphan-cap bounds, [`NetStats`]
/// monotonicity, and eviction accounting across peer lifetimes. Create
/// once, then [`check`](Self::check) after every state transition.
///
/// [`NetStats`]: tangle_gossip::NetStats
pub struct GossipChecker {
    orphan_cap: usize,
    prev: [u64; 8],
    evict_base: u64,
    evict_seen: Vec<u64>,
    was_up: Vec<bool>,
}

impl GossipChecker {
    /// Start tracking `net` (snapshots the current counters), enforcing
    /// `orphan_cap` as the per-peer orphan-buffer bound.
    pub fn new(net: &Network, orphan_cap: usize) -> Self {
        let n = net.peers().len();
        Self {
            orphan_cap,
            prev: stats_array(net),
            evict_base: 0,
            evict_seen: vec![0; n],
            was_up: vec![true; n],
        }
    }

    /// Structural + accounting invariants over the whole network, run
    /// after every op. `at_op` labels the violation.
    pub fn check(&mut self, net: &Network, at_op: usize) -> Result<(), Violation> {
        let now = stats_array(net);
        for i in 0..8 {
            if now[i] < self.prev[i] {
                return Err(Violation::new(
                    "netstats-monotone",
                    format!(
                        "op {at_op}: stats.{} went backwards: {} -> {}",
                        STAT_NAMES[i], self.prev[i], now[i]
                    ),
                ));
            }
        }
        self.prev = now;
        let mut restarted = false;
        for p in 0..self.was_up.len() {
            let peer = net.peer(p);
            StructModel::new(&peer.replica().structure()).map_err(|e| {
                Violation::new(
                    "acyclicity",
                    format!("op {at_op}, peer {p} replica: {}", e.0),
                )
            })?;
            if peer.orphan_count() > self.orphan_cap {
                return Err(Violation::new(
                    "orphan-cap",
                    format!(
                        "op {at_op}: peer {p} buffers {} orphans (cap {})",
                        peer.orphan_count(),
                        self.orphan_cap
                    ),
                ));
            }
            // Eviction accounting: peer restarts reset the per-peer
            // counter, so fold the finished lifetime into the base.
            let up = net.is_up(p);
            let e = peer.evictions();
            if (!self.was_up[p] && up) || e < self.evict_seen[p] {
                restarted = true;
                self.evict_base += self.evict_seen[p];
            }
            self.evict_seen[p] = e;
            self.was_up[p] = up;
        }
        // The balance is exact except across a restart boundary, where a
        // lifetime may end between two observation points.
        let balance = self.evict_base + self.evict_seen.iter().sum::<u64>();
        if !restarted && now[7] != balance {
            return Err(Violation::new(
                "eviction-balance",
                format!(
                    "op {at_op}: stats.evicted = {} but peer lifetimes account for {balance}",
                    now[7]
                ),
            ));
        }
        Ok(())
    }
}

fn check_gossip(schedule: &Schedule, mutation: Mutation) -> Result<(), Violation> {
    let n = schedule.nodes;
    let cfg = sim_cfg(schedule.seed);
    let net_cfg = NetworkConfig {
        topology: Topology::FullMesh,
        latency: Latency { min: 1, max: 2 },
        loss: 0.0,
        pow_difficulty: 0,
        seed: derive(schedule.seed, 0x6055),
        orphan_cap: ORPHAN_CAP,
    };
    let mut gl = GossipLearning::new(dataset(schedule), cfg, net_cfg, build);
    gl.network_mut().set_checkpointing(4, None);
    let (plan, horizon) = fault_plan(schedule);
    let max_restart = plan
        .crashes
        .iter()
        .filter_map(|c| c.restart_at)
        .max()
        .unwrap_or(0);
    gl.network_mut().install_faults(plan);

    let mut shadows: Vec<ShadowCache> = (0..n).map(|_| ShadowCache::new()).collect();
    let mut caches: Vec<AnalysisCache> = (0..n)
        .map(|p| AnalysisCache::new(gl.network().peer(p).replica()))
        .collect();
    let mut checker = GossipChecker::new(gl.network(), ORPHAN_CAP);

    for (at_op, op) in schedule.ops.iter().enumerate() {
        match *op {
            Op::Activate { node } => {
                let p = node % n;
                let trained = gl.network().is_up(p);
                gl.activate(p);
                if trained {
                    // The learner consulted its cache for this replica:
                    // mirror that read differentially.
                    check_replica_caches(
                        gl.network().peer(p).replica(),
                        &mut shadows[p],
                        &mut caches[p],
                        mutation,
                        p,
                    )?;
                }
            }
            Op::Deliver { ticks } => {
                gl.network_mut().advance(ticks);
            }
            // Churn is pre-installed as a fault plan on the same clock.
            Op::Crash { .. } | Op::Restart { .. } => {}
        }
        checker.check(gl.network(), at_op)?;
    }

    // Let trailing restarts fire, then require reconvergence.
    let extra = max_restart.saturating_sub(horizon) + 4;
    gl.network_mut().advance(extra);
    if !gl.network_mut().repair_to_quiescence(96) {
        return Err(Violation::new(
            "gossip-repair",
            "network failed to reach quiescence after the schedule".into(),
        ));
    }
    checker.check(gl.network(), schedule.ops.len())?;
    if !gl.network().replicas_consistent() {
        return Err(Violation::new(
            "gossip-consistency",
            "replicas disagree after repair".into(),
        ));
    }
    // Final differential pass over every replica (catches stale caches
    // even when the schedule ends without re-activating the victim).
    for p in 0..n {
        check_replica_caches(
            gl.network().peer(p).replica(),
            &mut shadows[p],
            &mut caches[p],
            mutation,
            p,
        )?;
    }
    Ok(())
}
