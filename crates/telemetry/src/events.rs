//! Structured simulator events, one JSON object per line on the wire.
//!
//! Each event is an externally tagged enum variant, so a JSONL line looks
//! like `{"Round":{...}}` and a consumer can dispatch on the single key.
//! All fields are plain values — no wall-clock timestamps — so that a
//! run with span timings disabled emits **byte-identical** JSONL for a
//! fixed seed (the deterministic-replay regression test relies on this).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One reference-model constituent: Algorithm 1 picks the transactions
/// maximizing `confidence × rating`; this records the factors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReferenceEntry {
    /// Transaction id within the snapshot.
    pub tx: u32,
    /// Monte-Carlo walk confidence at selection time.
    pub confidence: f32,
    /// Past-cone rating at selection time.
    pub rating: u32,
}

/// One node's Algorithm 2 execution within a round.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepEvent {
    /// Round (or activation slot) index.
    pub round: u64,
    /// Node id.
    pub node: u64,
    /// Did the publish gate accept the trained model?
    pub accepted: bool,
    /// The approved parent tips (empty when rejected or lost).
    pub parents: Vec<u32>,
    /// Local validation loss of the freshly trained model.
    pub new_loss: Option<f32>,
    /// Local validation loss of the consensus reference.
    pub reference_loss: Option<f32>,
}

/// End-of-round ledger health summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundEvent {
    /// Round index (1-based).
    pub round: u64,
    /// Nodes sampled this round.
    pub sampled: u64,
    /// Publications accepted into the ledger.
    pub published: u64,
    /// Steps whose publish gate rejected the trained model.
    pub rejected: u64,
    /// Publications issued by currently-malicious nodes.
    pub malicious_published: u64,
    /// Publications dropped by the lossy network so far (cumulative).
    pub lost_publications: u64,
    /// Tip count after the round barrier.
    pub tip_count: u64,
    /// Ledger size after the round barrier.
    pub tangle_len: u64,
    /// The reference set used this round (empty under per-node stale
    /// views, where no single shared reference exists).
    pub reference: Vec<ReferenceEntry>,
    /// Tip-selection walks taken so far (cumulative).
    pub walk_count: u64,
    /// Total hops over those walks (cumulative).
    pub walk_len_sum: u64,
    /// Wall time per phase in microseconds; `None` unless span timings
    /// are enabled (they are off by default to keep output deterministic).
    pub phase_us: Option<BTreeMap<String, u64>>,
}

/// One publication committed by the asynchronous (round-free) simulator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsyncPublishEvent {
    /// Worker thread that processed the step.
    pub worker: u64,
    /// Node that published.
    pub node: u64,
    /// Ledger size right after the publication.
    pub tangle_len: u64,
    /// Size of the snapshot the node acted on.
    pub snapshot_len: u64,
}

/// One fault-engine transition: a peer crash, restart, recovery, or a
/// worker kill/respawn in the asynchronous simulator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated tick (gossip network) or local step (async workers).
    pub at: u64,
    /// Affected peer / worker id.
    pub peer: u64,
    /// Transition kind: `"crash"`, `"restart"`, `"recovered"`,
    /// `"worker_kill"`, or `"worker_respawn"`.
    pub kind: String,
}

/// Every event the simulators emit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A node-level Algorithm 2 outcome.
    Step(StepEvent),
    /// A round-level ledger summary.
    Round(RoundEvent),
    /// An asynchronous-simulator publication.
    AsyncPublish(AsyncPublishEvent),
    /// A fault-engine lifecycle transition.
    Fault(FaultEvent),
}

impl Event {
    /// The round the event belongs to, when it has one.
    pub fn round(&self) -> Option<u64> {
        match self {
            Event::Step(e) => Some(e.round),
            Event::Round(e) => Some(e.round),
            Event::AsyncPublish(_) | Event::Fault(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_event_roundtrips_through_json() {
        let ev = Event::Round(RoundEvent {
            round: 3,
            sampled: 5,
            published: 4,
            rejected: 1,
            malicious_published: 0,
            lost_publications: 2,
            tip_count: 6,
            tangle_len: 40,
            reference: vec![ReferenceEntry {
                tx: 17,
                confidence: 0.75,
                rating: 12,
            }],
            walk_count: 90,
            walk_len_sum: 410,
            phase_us: None,
        });
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.starts_with("{\"Round\":{"));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn step_event_roundtrips_through_json() {
        let ev = Event::Step(StepEvent {
            round: 1,
            node: 9,
            accepted: true,
            parents: vec![3, 3],
            new_loss: Some(0.5),
            reference_loss: Some(0.9),
        });
        let back: Event = serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn fault_event_roundtrips_through_json() {
        let ev = Event::Fault(FaultEvent {
            at: 42,
            peer: 3,
            kind: "restart".to_string(),
        });
        let line = serde_json::to_string(&ev).unwrap();
        assert!(line.starts_with("{\"Fault\":{"));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
        assert_eq!(ev.round(), None);
    }

    #[test]
    fn phase_map_serializes_sorted() {
        let mut phase_us = BTreeMap::new();
        phase_us.insert("train".to_string(), 100u64);
        phase_us.insert("analysis".to_string(), 50u64);
        let ev = RoundEvent {
            round: 1,
            sampled: 0,
            published: 0,
            rejected: 0,
            malicious_published: 0,
            lost_publications: 0,
            tip_count: 1,
            tangle_len: 1,
            reference: vec![],
            walk_count: 0,
            walk_len_sum: 0,
            phase_us: Some(phase_us),
        };
        let line = serde_json::to_string(&ev).unwrap();
        let analysis = line.find("analysis").unwrap();
        let train = line.find("train").unwrap();
        assert!(analysis < train, "BTreeMap keys must serialize sorted");
    }
}
