//! Event sinks: where emitted [`Event`]s go.

use crate::events::Event;
use parking_lot::Mutex;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// A destination for structured events. Implementations must be
/// thread-safe: the parallel simulators emit from worker threads.
pub trait TelemetrySink: Send + Sync {
    /// Persist one event.
    fn record(&self, event: &Event);
}

/// Discards everything. Useful to measure instrumentation overhead
/// separately from serialization cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Writes one compact JSON object per line.
///
/// Lines are flushed as they are written, so the file is complete even
/// if the process exits without dropping the sink (the experiment CLI
/// keeps its telemetry handle in a process-wide static).
pub struct JsonlSink {
    out: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("events always serialize");
        let mut out = self.out.lock();
        // A failed telemetry write must not kill a simulation; drop it.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Collects events in memory, for tests and programmatic consumers.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

impl<S: TelemetrySink> TelemetrySink for Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{AsyncPublishEvent, Event};

    fn ev(n: u64) -> Event {
        Event::AsyncPublish(AsyncPublishEvent {
            worker: 0,
            node: n,
            tangle_len: n + 1,
            snapshot_len: n,
        })
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.record(&ev(1));
        sink.record(&ev(2));
        assert_eq!(sink.events(), vec![ev(1), ev(2)]);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("lt_telemetry_sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&ev(7));
        sink.record(&ev(8));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, n) in lines.iter().zip([7u64, 8]) {
            let back: Event = serde_json::from_str(line).unwrap();
            assert_eq!(back, ev(n));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn arc_sink_shares_storage() {
        let sink = Arc::new(MemorySink::new());
        let clone = sink.clone();
        TelemetrySink::record(&clone, &ev(1));
        assert_eq!(sink.len(), 1);
    }
}
