//! Monotonic counters and fixed-bucket histograms with lock-free
//! recording and mergeable snapshots.
//!
//! Recording is atomic (`Ordering::Relaxed` — counts need no ordering
//! with other memory), so workers in the parallel simulators can share
//! one registry without contention on a lock. Snapshots are plain data:
//! serializable, comparable, and mergeable across runs or shards.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, strictly increasing upper bucket bounds.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above the last bound land in an implicit
/// overflow bucket, so `buckets.len() == bounds.len() + 1`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with explicit upper bounds (must be strictly
    /// increasing and non-empty).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Exponential bounds `base, base*2, base*4, ...` (`levels` of them) —
    /// the default shape for durations and walk lengths, where relative
    /// resolution matters more than absolute.
    pub fn exponential(base: u64, levels: usize) -> Self {
        assert!(base >= 1 && levels >= 1, "need base >= 1 and levels >= 1");
        let bounds = (0..levels as u32)
            .map(|i| base.saturating_mul(1u64 << i.min(63)))
            .collect();
        Self::new(bounds)
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: serializable and mergeable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (exclusive of the overflow bucket).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the given bounds.
    pub fn empty(bounds: Vec<u64>) -> Self {
        let buckets = vec![0; bounds.len() + 1];
        Self {
            bounds,
            buckets,
            count: 0,
            sum: 0,
        }
    }

    /// Merge another snapshot in (bucket-wise addition).
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging histograms of
    /// different shape is a logic error, not data.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named registry of counters and histograms.
///
/// Lookup takes a short read lock; the returned `Arc` handles record
/// lock-free, so hot paths should hold on to them.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Default histogram shape: 24 exponential buckets from 1 — covers
/// microsecond spans up to ~16s and walk lengths up to ~8M hops.
fn default_histogram() -> Histogram {
    Histogram::exponential(1, 24)
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created at zero if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, created with the default
    /// exponential bounds if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(default_histogram()))
            .clone()
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Metrics`] registry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge another snapshot in: counters add, histograms merge
    /// bucket-wise, names union.
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(vec![1, 10, 100]);
        for v in [0, 1, 5, 10, 11, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 1, 1]); // <=1, <=10, <=100, overflow
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1027);
    }

    #[test]
    fn snapshot_merge_adds() {
        let h = Histogram::new(vec![2, 4]);
        h.record(1);
        h.record(3);
        let mut a = h.snapshot();
        h.record(100);
        let b = h.snapshot();
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.buckets, vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_shape_mismatch() {
        let mut a = HistogramSnapshot::empty(vec![1, 2]);
        let b = HistogramSnapshot::empty(vec![1, 3]);
        a.merge(&b);
    }

    #[test]
    fn registry_reuses_instruments() {
        let m = Metrics::new();
        m.counter("x").inc();
        m.counter("x").inc();
        assert_eq!(m.counter("x").get(), 2);
        m.histogram("h").record(7);
        let snap = m.snapshot();
        assert_eq!(snap.counters["x"], 2);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn exponential_bounds_double() {
        let h = Histogram::exponential(1, 5);
        assert_eq!(h.snapshot().bounds, vec![1, 2, 4, 8, 16]);
    }
}
