//! # lt-telemetry — tracing, counters, and ledger-health metrics
//!
//! Observability for the learning-tangle simulators, in three layers:
//!
//! 1. **Metrics** ([`Counter`], [`Histogram`], [`Metrics`]): monotonic
//!    counters and fixed-bucket histograms with atomic recording and
//!    plain-data, mergeable [`MetricsSnapshot`]s.
//! 2. **Span timers** ([`Telemetry::span`], [`PhaseRecorder`]): RAII
//!    wall-clock timers for hot paths (tip-selection walks, confidence
//!    sampling, local training, wire encode/decode), recorded into
//!    histograms in microseconds.
//! 3. **Structured events** ([`Event`], [`TelemetrySink`]): per-round
//!    and per-step JSONL records of ledger health — tip counts, approved
//!    tips, reference confidence × rating, publish accept/reject, lost
//!    publications, walk lengths, and per-phase wall time.
//!
//! Everything hangs off a cheaply clonable [`Telemetry`] handle. The
//! default handle is **disabled**: every operation is a single `Option`
//! check and no allocation, so instrumented code pays nothing when
//! nobody is listening. Span timings are additionally gated by a
//! `timings` flag (off by default) because wall-clock values are the one
//! non-deterministic output — with timings off, a fixed seed produces
//! byte-identical JSONL across runs.

pub mod events;
pub mod metrics;
pub mod sink;

pub use events::{AsyncPublishEvent, Event, FaultEvent, ReferenceEntry, RoundEvent, StepEvent};
pub use metrics::{Counter, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use sink::{JsonlSink, MemorySink, NoopSink, TelemetrySink};

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    sink: Box<dyn TelemetrySink>,
    metrics: Metrics,
    timings: bool,
}

/// The shared observability handle threaded through the simulators.
///
/// Cloning shares the sink and metrics registry. [`Telemetry::default`]
/// (= [`Telemetry::disabled`]) is the no-op handle.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("timings", &self.timings())
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle: every operation returns immediately.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An active handle over `sink`, with span timings off (deterministic
    /// output).
    pub fn new(sink: impl TelemetrySink + 'static) -> Self {
        Self::with_timings(sink, false)
    }

    /// An active handle with explicit span-timing behaviour. Timings are
    /// wall-clock and therefore non-deterministic; leave them off when
    /// output bytes must reproduce.
    pub fn with_timings(sink: impl TelemetrySink + 'static, timings: bool) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                metrics: Metrics::new(),
                timings,
            })),
        }
    }

    /// Is anything listening?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Are wall-clock span timings being recorded?
    pub fn timings(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.timings)
    }

    /// Emit a structured event. The closure only runs when a sink is
    /// attached, so callers can build events lazily.
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            inner.sink.record(&build());
        }
    }

    /// Add `n` to the counter registered under `name`.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Record `value` into the histogram registered under `name`.
    pub fn record(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).record(value);
        }
    }

    /// Start an RAII span timer; on drop it records the elapsed wall
    /// time in microseconds into the histogram `name`. Returns an inert
    /// guard unless the handle is enabled *and* timings are on.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let start = self.timings().then(Instant::now);
        Span {
            telemetry: self,
            name,
            start,
        }
    }

    /// A per-round phase-time collector feeding [`RoundEvent::phase_us`].
    /// Inert (and `finish()` returns `None`) unless timings are on.
    pub fn phases(&self) -> PhaseRecorder<'_> {
        PhaseRecorder {
            telemetry: self,
            active: self.timings(),
            times: BTreeMap::new(),
        }
    }

    /// Snapshot the metrics registry (`None` when disabled).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// The current value of a counter (0 when disabled or unregistered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.metrics.counter(name).get())
    }

    /// Cumulative `(count, sum)` of a histogram (zeros when disabled).
    pub fn histogram_totals(&self, name: &str) -> (u64, u64) {
        self.inner.as_ref().map_or((0, 0), |i| {
            let s = i.metrics.histogram(name).snapshot();
            (s.count, s.sum)
        })
    }
}

/// RAII wall-clock timer created by [`Telemetry::span`].
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.telemetry
                .record(self.name, start.elapsed().as_micros() as u64);
        }
    }
}

/// Collects named phase durations for one round (see
/// [`Telemetry::phases`]). Each phase is also recorded into the span
/// histogram `span.<name>`.
pub struct PhaseRecorder<'a> {
    telemetry: &'a Telemetry,
    active: bool,
    times: BTreeMap<String, u64>,
}

impl PhaseRecorder<'_> {
    /// Run `f`, attributing its wall time to phase `name`.
    pub fn measure<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.active {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let us = start.elapsed().as_micros() as u64;
        *self.times.entry(name.to_owned()).or_insert(0) += us;
        self.telemetry.record(&format!("span.{name}"), us);
        out
    }

    /// The collected phase map — `None` when timings are off, so the
    /// emitted event stays byte-stable across runs.
    pub fn finish(self) -> Option<BTreeMap<String, u64>> {
        self.active.then_some(self.times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        tel.count("x", 3);
        tel.record("h", 5);
        tel.emit(|| panic!("emit closure must not run when disabled"));
        let _span = tel.span("s");
        assert!(!tel.enabled());
        assert!(tel.metrics_snapshot().is_none());
        assert_eq!(tel.counter_value("x"), 0);
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let tel = Telemetry::new(NoopSink);
        tel.count("pubs", 2);
        tel.count("pubs", 1);
        tel.record("walk", 4);
        tel.record("walk", 6);
        assert_eq!(tel.counter_value("pubs"), 3);
        assert_eq!(tel.histogram_totals("walk"), (2, 10));
    }

    #[test]
    fn events_reach_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone());
        tel.emit(|| {
            Event::AsyncPublish(AsyncPublishEvent {
                worker: 1,
                node: 2,
                tangle_len: 3,
                snapshot_len: 2,
            })
        });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn spans_respect_the_timings_flag() {
        let off = Telemetry::new(NoopSink);
        {
            let _s = off.span("work");
        }
        assert_eq!(off.histogram_totals("work").0, 0);

        let on = Telemetry::with_timings(NoopSink, true);
        {
            let _s = on.span("work");
        }
        assert_eq!(on.histogram_totals("work").0, 1);
    }

    #[test]
    fn phase_recorder_only_reports_with_timings() {
        let off = Telemetry::new(NoopSink);
        let mut p = off.phases();
        assert_eq!(p.measure("a", || 41) + 1, 42);
        assert!(p.finish().is_none());

        let on = Telemetry::with_timings(NoopSink, true);
        let mut p = on.phases();
        p.measure("a", || ());
        p.measure("a", || ());
        let map = p.finish().expect("timings on");
        assert!(map.contains_key("a"));
        assert_eq!(on.histogram_totals("span.a").0, 2);
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new(NoopSink);
        let clone = tel.clone();
        clone.count("c", 1);
        assert_eq!(tel.counter_value("c"), 1);
    }
}
