//! Property-based tests of the telemetry primitives: histogram merges
//! behave like an abelian monoid, counter snapshots are monotone, and
//! structured events survive a JSON round trip.

use lt_telemetry::{
    Event, Histogram, HistogramSnapshot, Metrics, ReferenceEntry, RoundEvent, StepEvent,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Build a snapshot over doubling bounds from raw values.
fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::exponential(1, 12);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_merge_is_commutative(
        xs in prop::collection::vec(0u64..10_000, 0..40),
        ys in prop::collection::vec(0u64..10_000, 0..40),
    ) {
        let (a, b) = (snapshot_of(&xs), snapshot_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        xs in prop::collection::vec(0u64..10_000, 0..30),
        ys in prop::collection::vec(0u64..10_000, 0..30),
        zs in prop::collection::vec(0u64..10_000, 0..30),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_equals_recording_everything_at_once(
        xs in prop::collection::vec(0u64..100_000, 0..50),
        ys in prop::collection::vec(0u64..100_000, 0..50),
    ) {
        let mut merged = snapshot_of(&xs);
        merged.merge(&snapshot_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, snapshot_of(&all));
    }

    #[test]
    fn empty_snapshot_is_the_merge_identity(
        xs in prop::collection::vec(0u64..10_000, 0..40),
    ) {
        let a = snapshot_of(&xs);
        let mut merged = HistogramSnapshot::empty(a.bounds.clone());
        merged.merge(&a);
        prop_assert_eq!(merged, a);
    }

    #[test]
    fn histogram_totals_match_inputs(
        xs in prop::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let s = snapshot_of(&xs);
        prop_assert_eq!(s.count, xs.len() as u64);
        prop_assert_eq!(s.sum, xs.iter().sum::<u64>());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn counter_snapshots_are_monotone(
        increments in prop::collection::vec(0u64..1_000, 1..30),
    ) {
        let metrics = Metrics::new();
        let mut previous = 0u64;
        for (i, inc) in increments.iter().enumerate() {
            metrics.counter("events").add(*inc);
            let snap = metrics.snapshot();
            let now = snap.counters["events"];
            prop_assert!(now >= previous, "counter went backwards at step {}", i);
            prop_assert_eq!(now, increments[..=i].iter().sum::<u64>());
            previous = now;
        }
    }

    #[test]
    fn metrics_snapshot_merge_adds_counters(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let (ma, mb) = (Metrics::new(), Metrics::new());
        ma.counter("x").add(a);
        mb.counter("x").add(b);
        mb.counter("only_b").inc();
        let mut merged = ma.snapshot();
        merged.merge(&mb.snapshot());
        prop_assert_eq!(merged.counters["x"], a + b);
        prop_assert_eq!(merged.counters["only_b"], 1);
    }

    #[test]
    fn step_events_roundtrip_through_json(
        round in any::<u64>(),
        node in 0u64..10_000,
        accepted in any::<bool>(),
        parents in prop::collection::vec(0u32..100_000, 0..6),
        new_loss in prop::option::of(0.0f64..100.0),
        reference_loss in prop::option::of(0.0f64..100.0),
    ) {
        let ev = Event::Step(StepEvent {
            round,
            node,
            accepted,
            parents,
            new_loss: new_loss.map(|v| v as f32),
            reference_loss: reference_loss.map(|v| v as f32),
        });
        let line = serde_json::to_string(&ev).unwrap();
        prop_assert!(!line.contains('\n'), "JSONL events must be single-line");
        let back: Event = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn round_events_roundtrip_through_json(
        round in any::<u64>(),
        sampled in 0u64..1_000,
        published in 0u64..1_000,
        tip_count in 0u64..1_000,
        tangle_len in 0u64..1_000_000,
        confs in prop::collection::vec(0.0f64..1.0, 0..5),
        with_phases in any::<bool>(),
    ) {
        let reference: Vec<ReferenceEntry> = confs
            .iter()
            .enumerate()
            .map(|(i, &c)| ReferenceEntry {
                tx: i as u32,
                confidence: c as f32,
                rating: (i * 3) as u32,
            })
            .collect();
        let phase_us = with_phases.then(|| {
            let mut m = BTreeMap::new();
            m.insert("analysis".to_string(), round % 977);
            m.insert("step".to_string(), round % 1009);
            m
        });
        let ev = Event::Round(RoundEvent {
            round,
            sampled,
            published,
            rejected: sampled.saturating_sub(published),
            malicious_published: 0,
            lost_publications: round % 7,
            tip_count,
            tangle_len,
            reference,
            walk_count: sampled * 2,
            walk_len_sum: sampled * 11,
            phase_us,
        });
        let line = serde_json::to_string(&ev).unwrap();
        prop_assert!(!line.contains('\n'), "JSONL events must be single-line");
        let back: Event = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, ev);
    }
}
