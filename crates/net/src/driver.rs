//! Spawn and drive a cluster of local `lt-node` daemons.
//!
//! The driver is the control plane of a multi-process run: it launches
//! one daemon per peer, wires them into a full mesh via `Connect`, and
//! then drives activations over the control connections. Two modes:
//!
//! * [`Cluster::lockstep`] — one activation at a time, waiting for full
//!   convergence (equal replica lengths, no orphans, nothing missing)
//!   after each publish. Under lockstep, every replica inserts every
//!   transaction in publish order, so the run is byte-comparable with
//!   the in-process executors on the same schedule.
//! * [`Cluster::throughput`] — sustained publish traffic on a scripted
//!   slot-striped schedule, one driver thread per daemon, reporting
//!   wall-clock throughput plus the daemons' socket-level frame/byte
//!   counters and RTT histograms.

use crate::frame::{read_frame, write_frame, StatusReport, WireMsg, CONTROL_PEER};
use crate::preset::Preset;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tangle_gossip::TxMessage;

/// One synchronous request/response control connection to a daemon.
pub struct ControlConn {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl ControlConn {
    /// Connect to a daemon's control plane and identify as the harness.
    pub fn connect(addr: &str, genesis_id: u64) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut conn = Self {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
        };
        conn.send(&WireMsg::Hello {
            peer: CONTROL_PEER,
            genesis: genesis_id,
        })?;
        Ok(conn)
    }

    /// Fire-and-forget (used for `Connect` and `Shutdown`).
    pub fn send(&mut self, msg: &WireMsg) -> io::Result<()> {
        write_frame(&mut self.writer, msg)?;
        self.writer.flush()
    }

    /// Send a request and block for the daemon's next reply frame.
    pub fn request(&mut self, msg: &WireMsg) -> io::Result<WireMsg> {
        self.send(msg)?;
        match read_frame(&mut self.reader)? {
            Some((reply, _)) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the control connection",
            )),
        }
    }

    /// Round-trip a ping; returns the measured RTT.
    pub fn ping(&mut self, nonce: u64) -> io::Result<Duration> {
        let t0 = Instant::now();
        match self.request(&WireMsg::Ping { nonce, sent_us: 0 })? {
            WireMsg::Pong { nonce: n, .. } if n == nonce => Ok(t0.elapsed()),
            other => Err(bad_reply("Pong", &other)),
        }
    }
}

fn bad_reply(expected: &str, got: &WireMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected {expected} reply, got {got:?}"),
    )
}

/// Locate the `lt-node` binary: `$LT_NODE_BIN` if set, else a sibling of
/// the current executable (the cargo target directory).
pub fn default_node_bin() -> PathBuf {
    if let Ok(p) = std::env::var("LT_NODE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("lt-node"));
    p.pop();
    // integration tests live in target/debug/deps; the binary one up
    for candidate in [
        p.join("lt-node"),
        p.parent().map(|d| d.join("lt-node")).unwrap_or_default(),
    ] {
        if candidate.is_file() {
            return candidate;
        }
    }
    PathBuf::from("lt-node")
}

/// Summary of a lockstep run.
#[derive(Clone, Copy, Debug)]
pub struct LockstepReport {
    /// Activations driven.
    pub activations: usize,
    /// Activations that published.
    pub published: u64,
    /// Final replica length on every daemon (genesis included).
    pub final_len: usize,
}

/// Summary of a throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Activations driven (all daemons).
    pub activations: usize,
    /// Activations that published.
    pub published: u64,
    /// Driving wall-clock.
    pub wall: Duration,
    /// Extra wall-clock spent waiting for replica convergence afterwards.
    pub drain: Duration,
    /// Final replica length on every daemon.
    pub final_len: usize,
    /// Sum of `net.frames_sent` over all daemons.
    pub frames_sent: u64,
    /// Sum of `net.bytes_sent` over all daemons.
    pub bytes_sent: u64,
    /// Sum of `net.frames_recv` over all daemons.
    pub frames_recv: u64,
    /// Sum of `net.bytes_recv` over all daemons.
    pub bytes_recv: u64,
    /// Pooled `net.rtt_us` histogram totals `(count, sum_us)`.
    pub rtt: (u64, u64),
    /// Sum of `net.dropped` (queue overflow) over all daemons.
    pub dropped: u64,
    /// Sum of `net.rejected` (peer down) over all daemons.
    pub rejected: u64,
}

impl ThroughputReport {
    /// Activations per second of driving wall-clock.
    pub fn activations_per_sec(&self) -> f64 {
        self.activations as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Mean measured peer-to-peer RTT, if any pings flowed.
    pub fn mean_rtt_us(&self) -> Option<f64> {
        (self.rtt.0 > 0).then(|| self.rtt.1 as f64 / self.rtt.0 as f64)
    }
}

/// A running cluster of `lt-node` daemons plus control connections.
pub struct Cluster {
    procs: Vec<Child>,
    controls: Vec<ControlConn>,
    preset: Preset,
}

impl Cluster {
    /// Spawn `nodes` daemons of the `(nodes, seed)` preset from `bin`,
    /// wire them into a full mesh, and wait until every daemon reports
    /// all its data connections up.
    pub fn spawn(bin: &Path, nodes: usize, seed: u64, ping_interval_ms: u64) -> io::Result<Self> {
        let preset = Preset { nodes, seed };
        let genesis_id = preset.genesis().content_id().0;
        let mut procs = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for id in 0..nodes {
            let mut child = Command::new(bin)
                .args([
                    "--id",
                    &id.to_string(),
                    "--nodes",
                    &nodes.to_string(),
                    "--seed",
                    &seed.to_string(),
                    "--listen",
                    "127.0.0.1:0",
                    "--ping-ms",
                    &ping_interval_ms.to_string(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()?;
            let stdout = child.stdout.take().expect("stdout piped");
            let addr = read_listen_line(stdout)?;
            procs.push(child);
            addrs.push(addr);
        }
        let mut controls = Vec::with_capacity(nodes);
        for addr in &addrs {
            controls.push(ControlConn::connect(addr, genesis_id)?);
        }
        let peers: Vec<(u64, String)> = addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u64, a.clone()))
            .collect();
        let mut cluster = Self {
            procs,
            controls,
            preset,
        };
        for c in &mut cluster.controls {
            c.send(&WireMsg::Connect {
                peers: peers.clone(),
            })?;
        }
        cluster.wait_mesh(Duration::from_secs(10))?;
        Ok(cluster)
    }

    /// The preset the cluster runs.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// Daemon count.
    pub fn len(&self) -> usize {
        self.controls.len()
    }

    /// Clusters are never empty.
    pub fn is_empty(&self) -> bool {
        self.controls.is_empty()
    }

    fn wait_mesh(&mut self, timeout: Duration) -> io::Result<()> {
        let want = (self.controls.len() - 1) as u32;
        let deadline = Instant::now() + timeout;
        loop {
            let st = self.status()?;
            if st.iter().all(|s| s.connected >= want) {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("mesh not up: {st:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Poll each daemon's status once.
    pub fn status(&mut self) -> io::Result<Vec<StatusReport>> {
        self.controls
            .iter_mut()
            .map(|c| match c.request(&WireMsg::StatusReq)? {
                WireMsg::Status(s) => Ok(s),
                other => Err(bad_reply("Status", &other)),
            })
            .collect()
    }

    /// Wait until every replica reports length `len` with no orphans and
    /// nothing missing.
    pub fn wait_converged(&mut self, len: usize, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let st = self.status()?;
            if st
                .iter()
                .all(|s| s.len as usize == len && s.orphans == 0 && s.missing == 0)
            {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no convergence to len {len}: {st:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Drive `schedule` in lockstep: activation `k` runs at global slot
    /// `k + 1` on daemon `schedule[k]`, and the cluster must fully
    /// converge before the next activation fires.
    pub fn lockstep(&mut self, schedule: &[usize]) -> io::Result<LockstepReport> {
        let mut expected_len = 1usize; // genesis
        let mut published = 0u64;
        for (k, &peer) in schedule.iter().enumerate() {
            let slot = (k + 1) as u64;
            match self.controls[peer].request(&WireMsg::Activate { slot })? {
                WireMsg::Activated { published: did, .. } => {
                    if did {
                        expected_len += 1;
                        published += 1;
                    }
                }
                other => return Err(bad_reply("Activated", &other)),
            }
            self.wait_converged(expected_len, Duration::from_secs(20))?;
        }
        Ok(LockstepReport {
            activations: schedule.len(),
            published,
            final_len: expected_len,
        })
    }

    /// Drive sustained publish traffic: `per_node` activations on every
    /// daemon concurrently (one driver thread each), slots striped so
    /// daemon `i`'s `k`-th activation runs at global slot
    /// `k * nodes + i + 1`. Returns throughput plus the daemons' own
    /// socket-level accounting.
    pub fn throughput(&mut self, per_node: usize) -> io::Result<ThroughputReport> {
        let n = self.controls.len();
        let t0 = Instant::now();
        let published: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .controls
                .iter_mut()
                .enumerate()
                .map(|(i, conn)| {
                    scope.spawn(move || -> io::Result<u64> {
                        let mut published = 0;
                        for k in 0..per_node {
                            let slot = (k * n + i + 1) as u64;
                            match conn.request(&WireMsg::Activate { slot })? {
                                WireMsg::Activated { published: did, .. } => {
                                    published += u64::from(did)
                                }
                                other => return Err(bad_reply("Activated", &other)),
                            }
                        }
                        Ok(published)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver thread panicked"))
                .sum::<io::Result<u64>>()
        })?;
        let wall = t0.elapsed();
        // drain: converge on the common final length
        let final_len = 1 + published as usize;
        let t1 = Instant::now();
        self.wait_converged(final_len, Duration::from_secs(60))?;
        let drain = t1.elapsed();
        let metrics = self.metrics()?;
        let counter = |name: &str| -> u64 {
            metrics
                .iter()
                .flat_map(|(c, _)| c.iter())
                .filter(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .sum()
        };
        let rtt = metrics
            .iter()
            .flat_map(|(_, h)| h.iter())
            .filter(|(n, _, _)| n == "net.rtt_us")
            .fold((0, 0), |acc, (_, c, s)| (acc.0 + c, acc.1 + s));
        Ok(ThroughputReport {
            activations: per_node * n,
            published,
            wall,
            drain,
            final_len,
            frames_sent: counter("net.frames_sent"),
            bytes_sent: counter("net.bytes_sent"),
            frames_recv: counter("net.frames_recv"),
            bytes_recv: counter("net.bytes_recv"),
            rtt,
            dropped: counter("net.dropped"),
            rejected: counter("net.rejected"),
        })
    }

    /// Fetch every daemon's replica archive (insertion order, genesis
    /// excluded).
    pub fn archives(&mut self) -> io::Result<Vec<Vec<TxMessage>>> {
        self.controls
            .iter_mut()
            .map(|c| match c.request(&WireMsg::ArchiveReq)? {
                WireMsg::Archive(msgs) => Ok(msgs),
                other => Err(bad_reply("Archive", &other)),
            })
            .collect()
    }

    /// Ask every daemon for its consensus evaluation at `slot`.
    pub fn evaluate(&mut self, slot: u64, eval_seed: u64) -> io::Result<Vec<(u32, u32)>> {
        self.controls
            .iter_mut()
            .map(
                |c| match c.request(&WireMsg::EvalReq { slot, eval_seed })? {
                    WireMsg::Eval {
                        loss_bits,
                        acc_bits,
                    } => Ok((loss_bits, acc_bits)),
                    other => Err(bad_reply("Eval", &other)),
                },
            )
            .collect()
    }

    /// Fetch every daemon's telemetry counters and histogram totals.
    #[allow(clippy::type_complexity)]
    pub fn metrics(&mut self) -> io::Result<Vec<(Vec<(String, u64)>, Vec<(String, u64, u64)>)>> {
        self.controls
            .iter_mut()
            .map(|c| match c.request(&WireMsg::MetricsReq)? {
                WireMsg::Metrics {
                    counters,
                    histograms,
                } => Ok((counters, histograms)),
                other => Err(bad_reply("Metrics", &other)),
            })
            .collect()
    }

    /// Shut every daemon down and reap the processes.
    pub fn shutdown(mut self) -> io::Result<()> {
        for c in &mut self.controls {
            let _ = c.send(&WireMsg::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for child in &mut self.procs {
            loop {
                match child.try_wait()? {
                    Some(_) => break,
                    None if Instant::now() > deadline => {
                        child.kill()?;
                        child.wait()?;
                        break;
                    }
                    None => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        Ok(())
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.controls {
            let _ = c.send(&WireMsg::Shutdown);
        }
        for child in &mut self.procs {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Parse the daemon's `LISTEN <addr>` startup line.
fn read_listen_line(stdout: impl Read) -> io::Result<String> {
    let mut r = BufReader::new(stdout);
    let mut line = String::new();
    // std's read_line
    std::io::BufRead::read_line(&mut r, &mut line)?;
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("daemon did not announce its port: {line:?}"),
            )
        })?
        .to_string();
    Ok(addr)
}
